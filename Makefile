PYTHON ?= python

.PHONY: lint lint-cold test coverage smoke

# Static-analysis gate (see docs/STATIC_ANALYSIS.md).  Warm runs reuse
# the content-hash fact cache (.reprolint_cache.json); mypy is optional
# locally — CI always runs it; here it is skipped when not installed.
lint:
	$(PYTHON) -m compileall -q src tools
	$(PYTHON) -m tools.reprolint src tests benchmarks
	PYTHONPATH=src $(PYTHON) -m tools.apicheck
	@if $(PYTHON) -m mypy --version >/dev/null 2>&1; then \
		$(PYTHON) -m mypy; \
	else \
		echo "mypy not installed; skipping strict type check (CI runs it)"; \
	fi

# The same gate from a cold cache — what CI pays on every run.
lint-cold:
	rm -f .reprolint_cache.json
	$(MAKE) lint

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Local, dependency-free mirror of CI's pytest-cov gate (slower: every
# line event is traced).  CI enforces the same floor via pytest-cov.
coverage:
	PYTHONPATH=src $(PYTHON) -m tools.checkcov --fail-under 93

smoke:
	PYTHONPATH=src $(PYTHON) -m repro run --smoke
