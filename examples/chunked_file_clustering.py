"""The chunked file's multidimensional clustering effect (Section 4.2).

Stores the *same* 2-D fact data twice — once in random (arrival) order,
once clustered by chunk number — builds a bitmap index on each, and runs
identical selections against both.  The chunked file confines qualifying
tuples to a few chunks, so the bitmap fetch touches far fewer data pages;
the script also prints Feller's occupancy model next to the measurements.

Run:
    python examples/chunked_file_clustering.py
"""

import numpy as np

from repro.analysis.probability import (
    expected_pages_chunked,
    expected_pages_random,
)
from repro.experiments.fig14 import build_bitmap_setup
from repro.experiments.reporting import format_table
from repro.query.model import StarQuery


def main() -> None:
    setup = build_bitmap_setup(
        distinct_values=200, density=0.5, tuples_per_cell=4
    )
    total_pages = setup.random_engine.num_data_pages
    print(
        f"{len(setup.records):,} tuples over {total_pages} data pages, "
        f"two dimensions of {setup.schema.dimensions[0].leaf_cardinality} "
        "values each\n"
    )

    rng = np.random.default_rng(5)
    rows = []
    for width in (1, 2, 4, 8, 16, 32):
        start = int(rng.integers(0, 200 - width))
        query = StarQuery.build(
            setup.schema, (1, 1), {"A": (start, start + width)}
        )
        measured = {}
        tuples = 0
        for label, engine in (
            ("random", setup.random_engine),
            ("chunked", setup.chunked_engine),
        ):
            engine.buffer_pool.flush()
            result, report = engine.answer(query, "bitmap")
            measured[label] = report.pages_read
            tuples = report.tuples_scanned
        chunks_a = setup.chunked_engine.space.base_grid.shape[0]
        selected = (width / 200 * chunks_a + 1) * (
            setup.chunked_engine.space.base_grid.shape[1]
        )
        rows.append(
            {
                "A-range": f"{width} values",
                "tuples": tuples,
                "random file": measured["random"],
                "chunked file": measured["chunked"],
                "model f(n,P)": round(
                    expected_pages_random(tuples, total_pages), 1
                ),
                "model chunked": round(
                    expected_pages_chunked(
                        tuples,
                        total_pages,
                        selected_chunks=selected,
                        pages_per_chunk=total_pages
                        / setup.chunked_engine.space.base_grid.num_chunks,
                    ),
                    1,
                ),
            }
        )

    print(
        format_table(
            ["A-range", "tuples", "random file", "chunked file",
             "model f(n,P)", "model chunked"],
            rows,
        )
    )
    print(
        "\npage I/O per selection (bitmap index pages included). "
        "Clustering keeps the chunked file's absolute I/O gap growing "
        "with the range width — Figure 14's effect."
    )


if __name__ == "__main__":
    main()
