"""Quickstart: build a star schema, load data, answer queries through the
chunk cache.

Run:
    python examples/quickstart.py

This walks the full public API in ~60 lines of code:

1. define a star schema with dimension hierarchies,
2. generate synthetic fact data and bulk-load a chunked backend,
3. put a chunk-caching middle tier in front of it, and
4. answer queries — first through the typed API, then via SQL —
   watching the second, overlapping query reuse cached chunks.
"""

from repro import (
    BackendEngine,
    ChunkCache,
    ChunkCacheManager,
    ChunkSpace,
    StarQuery,
    build_star_schema,
    generate_fact_table,
    parse_query,
)


def main() -> None:
    # 1. A 3-dimensional sales schema.  Cardinalities are listed from the
    #    most aggregated hierarchy level to the leaf level: the product
    #    dimension rolls 60 products into 12 groups into 3 categories.
    schema = build_star_schema(
        [[3, 12, 60], [5, 25], [4, 16]],
        measure_names=("dollar_sales",),
        dimension_names=("product", "store", "date"),
        name="sales",
    )

    # 2. Chunk geometry shared by backend and cache (ranges cover ~20% of
    #    each level), synthetic data, and a loaded chunked backend with
    #    bitmap indexes.
    space = ChunkSpace(schema, 0.2)
    records = generate_fact_table(schema, 200_000, seed=42)
    backend = BackendEngine.build(schema, space, records)
    print(
        f"loaded {backend.num_records:,} tuples on "
        f"{backend.num_data_pages:,} pages, "
        f"{backend.chunked_file.num_nonempty_chunks} non-empty chunks"
    )

    # 3. The middle tier: a 2 MB chunk cache with the paper's
    #    benefit-weighted CLOCK replacement.
    manager = ChunkCacheManager(
        schema, space, backend, ChunkCache(2_000_000, "benefit")
    )

    # 4a. A typed query: monthly sales per product group for stores 5..14
    #     (group-by levels: product=2, store=2, date=1).
    query = StarQuery.build(
        schema,
        groupby=(2, 2, 1),
        selections={"store": (5, 15)},
    )
    answer = manager.answer(query)
    print(
        f"\nquery 1: {len(answer.rows)} result rows, "
        f"{answer.record.chunks_total} chunks, "
        f"{answer.record.chunks_hit} from cache, "
        f"simulated time {answer.record.time:.1f}"
    )

    # 4b. An overlapping query: stores 10..19.  Half of its chunks are
    #     already cached — only the new half touches the backend.
    overlapping = StarQuery.build(
        schema,
        groupby=(2, 2, 1),
        selections={"store": (10, 20)},
    )
    answer = manager.answer(overlapping)
    print(
        f"query 2 (overlaps): {answer.record.chunks_hit}/"
        f"{answer.record.chunks_total} chunks from cache, "
        f"simulated time {answer.record.time:.1f}"
    )

    # 4c. The same region once more, via SQL this time: a full cache hit.
    sql = """
        SELECT product.L2, store.L2, date.L1, SUM(dollar_sales)
        FROM sales, product, store, date
        WHERE store.L2 >= 'store/L2/10' AND store.L2 <= 'store/L2/19'
        GROUP BY product.L2, store.L2, date.L1
    """
    answer = manager.answer(parse_query(schema, sql))
    print(
        f"query 3 (SQL, repeat): {answer.record.chunks_hit}/"
        f"{answer.record.chunks_total} chunks from cache, "
        f"simulated time {answer.record.time:.1f}"
    )

    # 5. Every answer carries a per-stage execution trace: which resolver
    #    (cache / derive / prefetch / backend) served which chunks, and
    #    what each pipeline stage cost.
    print("\nquery 3 trace:")
    print(f"  resolved by: {answer.trace.resolved_by}")
    for stage in answer.trace.stages:
        print(
            f"  {stage.name:<16} {stage.wall_seconds * 1e6:8.1f} us  "
            f"partitions={stage.partitions}  pages={stage.pages_read}"
        )
    print(f"stream totals by resolver: {manager.metrics.resolver_summary()}")

    stats = manager.cache.stats
    print(
        f"\ncache: {len(manager.cache)} chunks resident, "
        f"{manager.cache.used_bytes:,} bytes, "
        f"hit ratio {stats.hit_ratio:.2f}"
    )
    print(f"stream CSR so far: {manager.metrics.cost_saving_ratio():.3f}")


if __name__ == "__main__":
    main()
