"""Compare caching schemes and replacement policies on one workload.

Replays the same EQPR query stream (Table 2's half-proximity mix) through
four middle-tier configurations over an identical backend:

- chunk caching with benefit-weighted CLOCK (the paper's scheme),
- chunk caching with plain CLOCK ("simple LRU"),
- chunk caching with exact LRU, and
- query-level caching with containment (the paper's baseline),

then prints the paper's two metrics for each.  This is Figure 9 + Figure
13 condensed into one runnable script.

Run:
    python examples/cache_policy_comparison.py [num_queries]
"""

import sys

from repro.experiments.configs import DEFAULT_SCALE
from repro.experiments.harness import (
    get_system,
    make_chunk_manager,
    make_mix_stream,
    make_query_manager,
    run_stream,
)
from repro.experiments.reporting import format_table
from repro.workload.generator import EQPR


def main(num_queries: int | None = None) -> None:
    scale = DEFAULT_SCALE
    if num_queries is not None:
        scale = scale.with_overrides(num_queries=num_queries)
    print(
        f"building the Table 1 system: {scale.num_tuples:,} tuples, "
        f"chunk ratio {scale.chunk_ratio} ..."
    )
    system = get_system(scale)
    stream = make_mix_stream(system, EQPR)
    # Tighten the budget so replacement actually churns.
    cache_bytes = int(system.cube_bytes * 0.05)
    print(
        f"stream: {len(stream)} EQPR queries; cache budget "
        f"{cache_bytes / 1e6:.1f} MB\n"
    )

    rows = []
    for label, policy in (
        ("chunk + benefit-CLOCK", "benefit"),
        ("chunk + CLOCK", "clock"),
        ("chunk + exact LRU", "lru"),
    ):
        manager = make_chunk_manager(
            system, cache_bytes=cache_bytes, policy=policy
        )
        metrics = run_stream(manager, stream)
        rows.append(
            {
                "configuration": label,
                "csr": metrics.cost_saving_ratio(),
                "mean_time_last_100": metrics.mean_time_last(100),
                "hit_ratio": metrics.chunk_hit_ratio(),
                "evictions": manager.cache.stats.evictions,
            }
        )

    query_manager = make_query_manager(system, cache_bytes=cache_bytes)
    metrics = run_stream(query_manager, stream)
    rows.append(
        {
            "configuration": "query-level (containment)",
            "csr": metrics.cost_saving_ratio(),
            "mean_time_last_100": metrics.mean_time_last(100),
            "hit_ratio": metrics.full_hit_ratio(),
            "evictions": "-",
        }
    )

    print(
        format_table(
            ["configuration", "csr", "mean_time_last_100", "hit_ratio",
             "evictions"],
            rows,
        )
    )
    print(
        "\nExpected shape (paper Figures 9 & 13): every chunk "
        "configuration beats query-level caching, and benefit-CLOCK "
        "leads the chunk configurations."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else None)
