"""Regenerate every table and figure of the paper's evaluation section.

Run:
    python examples/run_experiments.py                # default scale
    python examples/run_experiments.py --smoke        # tiny (seconds)
    python examples/run_experiments.py --paper        # full paper scale
    python examples/run_experiments.py fig9 fig13     # a subset

Prints each reproduced artifact as a table with its expected shape, and
(at the end) which experiments matched the paper's qualitative claims.
See EXPERIMENTS.md for the recorded paper-vs-measured comparison.
"""

import sys
import time

from repro.experiments.configs import DEFAULT_SCALE, PAPER_SCALE, SMOKE_SCALE
from repro.experiments.registry import EXPERIMENTS, run_experiment


def main(argv: list[str]) -> None:
    scale = DEFAULT_SCALE
    if "--smoke" in argv:
        scale = SMOKE_SCALE
        argv = [a for a in argv if a != "--smoke"]
    if "--paper" in argv:
        scale = PAPER_SCALE
        argv = [a for a in argv if a != "--paper"]
    selected = argv or list(EXPERIMENTS)

    print(
        f"scale: {scale.num_tuples:,} tuples, {scale.num_queries} "
        f"queries/stream, chunk ratio {scale.chunk_ratio}\n"
    )
    for experiment_id in selected:
        started = time.perf_counter()
        result = run_experiment(experiment_id, scale)
        elapsed = time.perf_counter() - started
        print(result.render())
        print(f"({elapsed:.1f}s)\n")


if __name__ == "__main__":
    main(sys.argv[1:])
