"""Live updates: delta appends, cache invalidation, reorganization.

The paper notes that updates can be supported by keeping extra space in
each chunk (Section 5.3).  This library implements the functional
equivalent for a bulk-clustered file: appended tuples land in an
unclustered *delta region* that every access path folds in, the affected
base-chunk numbers drive precise cache invalidation in the middle tier,
and ``reorganize()`` periodically merges the delta back into a freshly
clustered file.

Run:
    python examples/updates_and_invalidation.py
"""

from repro import (
    BackendEngine,
    ChunkCache,
    ChunkCacheManager,
    ChunkSpace,
    StarQuery,
    build_star_schema,
    generate_fact_table,
)


def main() -> None:
    schema = build_star_schema(
        [[3, 12, 60], [5, 25]],
        measure_names=("dollar_sales",),
        dimension_names=("product", "store"),
    )
    space = ChunkSpace(schema, 0.2)
    records = generate_fact_table(schema, 150_000, seed=1)
    backend = BackendEngine.build(schema, space, records)
    manager = ChunkCacheManager(
        schema, space, backend, ChunkCache(2_000_000)
    )

    query = StarQuery.build(
        schema, (2, 1), aggregates=[("dollar_sales", "sum"),
                                    ("dollar_sales", "count")],
    )
    answer = manager.answer(query)
    total = int(answer.rows["count_dollar_sales"].sum())
    print(f"initial load: {total:,} facts aggregated; "
          f"{len(manager.cache)} chunks cached")

    repeat = manager.answer(query)
    print(f"repeat query: {repeat.record.chunks_hit}/"
          f"{repeat.record.chunks_total} chunks from cache")

    # A day of new sales arrives.
    fresh = generate_fact_table(schema, 5_000, seed=2)
    affected = backend.append_records(fresh)
    removed = manager.invalidate_base_chunks(affected)
    print(f"\nappended {len(fresh):,} tuples touching "
          f"{len(affected)} base chunks; invalidated {removed} cached chunks")

    answer = manager.answer(query)
    total = int(answer.rows["count_dollar_sales"].sum())
    print(f"after append: {total:,} facts aggregated "
          f"(delta region folded in, "
          f"{answer.record.chunks_hit}/{answer.record.chunks_total} "
          "chunks still served from cache)")

    # Nightly maintenance: restore pure clustered access.
    backend.reorganize()
    answer = manager.answer(query)
    total = int(answer.rows["count_dollar_sales"].sum())
    print(f"after reorganize: {total:,} facts aggregated; "
          f"delta region empty: {backend.delta_file is None}")


if __name__ == "__main__":
    main()
