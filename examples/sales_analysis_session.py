"""An analyst session: the paper's motivating drill-down/roll-up scenario.

Section 2.2 of the paper describes a typical OLAP session: an analyst
looks at Wisconsin sales per city, drills down into Madison's stores,
rolls back up, and moves on to Milwaukee.  Such sessions exhibit
*hierarchical locality* — consecutive queries touch parent/child/sibling
members — which is exactly what chunk-based caching exploits.

This example builds a store dimension with real place names, replays that
session through the chunk cache manager using SQL, and prints how much of
each step was served from cache.

Run:
    python examples/sales_analysis_session.py
"""

from repro import (
    BackendEngine,
    ChunkCache,
    ChunkCacheManager,
    ChunkSpace,
    Measure,
    StarSchema,
    generate_fact_table,
    parse_query,
)
from repro.schema.dimension import Dimension
from repro.schema.hierarchy import Hierarchy, Level


def build_sales_schema() -> StarSchema:
    """Product (category -> pname) x Store (state -> city -> store)."""
    store = Dimension(
        "store",
        Hierarchy(
            [
                Level(1, "state", 2),
                Level(2, "city", 4),
                Level(3, "sname", 12),
            ],
            child_starts=[
                (0, 2, 4),  # WI -> {Madison, Milwaukee}; IL -> {Chicago, Evanston}
                (0, 4, 7, 10, 12),
            ],
        ),
        members={
            1: ["WI", "IL"],
            2: ["Madison", "Milwaukee", "Chicago", "Evanston"],
            3: [
                "Madison-State-St", "Madison-Campus", "Madison-East",
                "Madison-West",
                "Milwaukee-Downtown", "Milwaukee-North", "Milwaukee-South",
                "Chicago-Loop", "Chicago-OHare", "Chicago-Hyde-Park",
                "Evanston-Main", "Evanston-Campus",
            ],
        },
    )
    product = Dimension(
        "product",
        Hierarchy(
            [Level(1, "pcategory", 2), Level(2, "pname", 6)],
            child_starts=[(0, 3, 6)],
        ),
        members={
            1: ["clothes", "electronics"],
            2: ["shirt", "pants", "dress", "phone", "laptop", "tablet"],
        },
    )
    return StarSchema(
        [product, store], [Measure("dollar_sales")], name="sales"
    )


#: The analyst's session, in order.  Each step is (description, SQL).
SESSION = [
    (
        "Wisconsin sales per product and city",
        """SELECT pname, city, SUM(dollar_sales)
           FROM sales, product, store
           WHERE state = 'WI'
           GROUP BY pname, city""",
    ),
    (
        "Drill down: Madison per store",
        """SELECT pname, sname, SUM(dollar_sales)
           FROM sales, product, store
           WHERE city = 'Madison'
           GROUP BY pname, sname""",
    ),
    (
        "Roll up: back to the city level (cache hit expected)",
        """SELECT pname, city, SUM(dollar_sales)
           FROM sales, product, store
           WHERE state = 'WI'
           GROUP BY pname, city""",
    ),
    (
        "Sibling: Milwaukee per store (partially adjacent)",
        """SELECT pname, sname, SUM(dollar_sales)
           FROM sales, product, store
           WHERE city = 'Milwaukee'
           GROUP BY pname, sname""",
    ),
    (
        "Broaden: both states per city, clothes only",
        """SELECT city, SUM(dollar_sales)
           FROM sales, product, store
           WHERE pcategory = 'clothes'
           GROUP BY city""",
    ),
    (
        "Repeat broadened view (exact repeat)",
        """SELECT city, SUM(dollar_sales)
           FROM sales, product, store
           WHERE pcategory = 'clothes'
           GROUP BY city""",
    ),
]


def main() -> None:
    schema = build_sales_schema()
    space = ChunkSpace(schema, 0.34)
    records = generate_fact_table(schema, 120_000, seed=7)
    backend = BackendEngine.build(schema, space, records, page_size=2048)
    manager = ChunkCacheManager(
        schema, space, backend, ChunkCache(1_000_000)
    )

    print(f"{len(records):,} sales facts loaded; replaying the session:\n")
    for step, (description, sql) in enumerate(SESSION, start=1):
        query = parse_query(schema, sql)
        answer = manager.answer(query)
        record = answer.record
        print(f"step {step}: {description}")
        print(
            f"    {len(answer.rows):>4} rows | "
            f"chunks {record.chunks_hit}/{record.chunks_total} cached | "
            f"backend pages {record.pages_read:>3} | "
            f"simulated time {record.time:8.2f}"
        )
        # Show a couple of result rows with member names resolved.
        for row in answer.rows[:2]:
            labels = []
            for dim, level in zip(schema.dimensions, query.groupby):
                if level > 0:
                    labels.append(
                        str(dim.value_of(level, int(row[dim.name])))
                    )
            value = float(row[f"{query.aggregates[0][1]}_dollar_sales"])
            print(f"      {' / '.join(labels)}: ${value:,.0f}")
        print()

    metrics = manager.metrics
    print(
        f"session CSR: {metrics.cost_saving_ratio():.3f}; "
        f"chunk hit ratio: {metrics.chunk_hit_ratio():.3f}; "
        f"total simulated time: {metrics.total_time():.1f}"
    )


if __name__ == "__main__":
    main()
