"""Deterministic, seeded fault schedules.

A :class:`FaultPlan` is a *pure function* from ``(seed, kind, site,
sequence-number)`` to a fault decision: no wall clock, no hidden RNG
state, no ordering dependence beyond the sequence numbers the injector
hands in.  Two runs that present the same sequence of decision points
therefore fault at exactly the same points — the determinism contract
the chaos-soak digest and the Hypothesis property suite pin down (see
``docs/FAULTS.md``).

The decision function hashes the tuple with SHA-256 and compares the
leading 64 bits, scaled to ``[0, 1)``, against the configured rate.
This keeps the schedule resumable (decision ``n`` never depends on
decision ``n - 1``) and platform-independent (no ``random`` module
state, no float accumulation).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.exceptions import FaultError

__all__ = [
    "BACKEND_QUERY",
    "CACHE_POISON",
    "CACHE_PRESSURE",
    "DISK_PERMANENT",
    "DISK_SLOW",
    "DISK_TRANSIENT",
    "FAULT_KINDS",
    "LOG_COMPACT",
    "LOG_PERMANENT",
    "LOG_TORN",
    "PROMOTE_READ",
    "SPILL_WRITE",
    "FaultPlan",
    "FaultSpec",
    "standard_specs",
    "tiered_specs",
]

#: A page read fails once; a retry may succeed.
DISK_TRANSIENT = "disk-transient"
#: A specific page is dead forever (keyed by page id, not by sequence).
DISK_PERMANENT = "disk-permanent"
#: A page read succeeds but charges extra simulated latency.
DISK_SLOW = "disk-slow"
#: A backend entry point fails at query level before doing any I/O.
BACKEND_QUERY = "backend-query"
#: A cache put is rejected as poisoned (cache state unchanged).
CACHE_POISON = "cache-poison"
#: A cache put first sheds entries under forced eviction pressure.
CACHE_PRESSURE = "cache-pressure"
#: An eviction-spill write to the persistent chunk log fails once.
SPILL_WRITE = "spill-write"
#: A promotion read from the persistent chunk log fails once.
PROMOTE_READ = "promote-read"
#: A specific chunk-log page is dead forever (keyed by page id).
LOG_PERMANENT = "log-permanent"
#: A spill write tears: stored bytes no longer match the stored CRC.
LOG_TORN = "log-torn"
#: A log compaction aborts at one record-copy write boundary.
LOG_COMPACT = "log-compact"

FAULT_KINDS = (
    DISK_TRANSIENT,
    DISK_PERMANENT,
    DISK_SLOW,
    BACKEND_QUERY,
    CACHE_POISON,
    CACHE_PRESSURE,
    SPILL_WRITE,
    PROMOTE_READ,
    LOG_PERMANENT,
    LOG_TORN,
    LOG_COMPACT,
)

_SCALE = float(2**64)


@dataclass(frozen=True)
class FaultSpec:
    """One fault kind armed at a given rate.

    Attributes:
        kind: One of :data:`FAULT_KINDS`.
        rate: Probability in ``[0, 1]`` that a decision point faults.
        latency: Simulated seconds a :data:`DISK_SLOW` fault charges.
        pressure: Entries a :data:`CACHE_PRESSURE` fault forcibly evicts
            before the put proceeds.
    """

    kind: str
    rate: float
    latency: float = 0.0
    pressure: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {FAULT_KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise FaultError(
                f"fault rate must be in [0, 1], got {self.rate!r}"
            )
        if self.latency < 0.0:
            raise FaultError(
                f"fault latency must be >= 0, got {self.latency!r}"
            )
        if self.pressure < 1:
            raise FaultError(
                f"eviction pressure must be >= 1, got {self.pressure!r}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, pure-function fault schedule over a set of specs."""

    seed: int
    specs: tuple[FaultSpec, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        kinds = [spec.kind for spec in self.specs]
        if len(kinds) != len(set(kinds)):
            raise FaultError(f"duplicate fault kinds in plan: {kinds}")

    def spec(self, kind: str) -> FaultSpec | None:
        """The armed spec for ``kind``, or None when the kind is off."""
        for candidate in self.specs:
            if candidate.kind == kind:
                return candidate
        return None

    def roll(self, kind: str, site: str, sequence: int) -> bool:
        """Decide whether decision point ``(site, sequence)`` faults.

        Pure: the answer depends only on the plan's seed and the
        arguments, never on prior calls.
        """
        spec = self.spec(kind)
        if spec is None or spec.rate <= 0.0:
            return False
        token = f"{self.seed}:{kind}:{site}:{sequence}".encode()
        digest = hashlib.sha256(token).digest()
        value = int.from_bytes(digest[:8], "big") / _SCALE
        return value < spec.rate


#: Base per-decision rates of the named presets.
_PRESET_RATES = {"low": 0.01, "mid": 0.05, "high": 0.15}


def standard_specs(rate: str = "mid") -> tuple[FaultSpec, ...]:
    """The standard chaos mix at a named intensity.

    ``"low"``, ``"mid"`` and ``"high"`` arm five fault kinds at scaled
    rates; ``"high"`` additionally arms a small population of
    permanently dead pages.  The mix always has at least three distinct
    kinds active, which is what the tier-1 chaos smoke requires.
    """
    try:
        base = _PRESET_RATES[rate]
    except KeyError:
        raise FaultError(
            f"unknown fault rate preset {rate!r}; "
            f"expected one of {sorted(_PRESET_RATES)}"
        ) from None
    specs = [
        FaultSpec(DISK_TRANSIENT, base),
        FaultSpec(DISK_SLOW, base, latency=2.0),
        FaultSpec(BACKEND_QUERY, base / 4.0),
        FaultSpec(CACHE_POISON, base),
        FaultSpec(CACHE_PRESSURE, base / 2.0, pressure=2),
    ]
    if rate == "high":
        specs.append(FaultSpec(DISK_PERMANENT, base / 100.0))
    return tuple(specs)


def tiered_specs(rate: str = "mid") -> tuple[FaultSpec, ...]:
    """The standard chaos mix plus the 2-tier write-path fault kinds.

    Extends :func:`standard_specs` (whose presets stay byte-identical —
    existing pinned digests never move) with spill-write and
    promote-read faults at the base rate, torn writes and compaction
    aborts at half of it; ``"high"`` additionally arms permanently dead
    chunk-log pages.  Because :meth:`FaultPlan.roll` hashes per kind and
    site, arming ``log-compact`` does not perturb any other kind's
    decisions — stacks that never compact keep their digests.
    """
    base = _PRESET_RATES.get(rate)
    if base is None:
        raise FaultError(
            f"unknown fault rate preset {rate!r}; "
            f"expected one of {sorted(_PRESET_RATES)}"
        )
    specs = list(standard_specs(rate))
    specs.append(FaultSpec(SPILL_WRITE, base))
    specs.append(FaultSpec(PROMOTE_READ, base))
    specs.append(FaultSpec(LOG_TORN, base / 2.0))
    specs.append(FaultSpec(LOG_COMPACT, base / 2.0))
    if rate == "high":
        specs.append(FaultSpec(LOG_PERMANENT, base / 100.0))
    return tuple(specs)
