"""The runtime fault injector: plan decisions wired into the stack.

:class:`FaultInjector` turns a :class:`~repro.faults.plan.FaultPlan`
into the three hooks the production layers expose (and never install
themselves — reprolint R006 gates that):

- ``SimulatedDisk.read_hook`` — raises
  :class:`~repro.exceptions.DiskFault` or returns injected latency;
- ``BackendEngine.fault_hook`` — raises
  :class:`~repro.exceptions.BackendFault` at query level;
- the chunk cache's put hook — poisons or pressures an insertion.

Sequence numbers are per decision *site* and advance under one injector
lock, so under the serving layer's fair schedule (which fully
serializes query execution in canonical order) the same workload rolls
the same decisions regardless of worker count.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

from repro.exceptions import BackendFault, DiskFault, FaultError
from repro.faults.plan import (
    BACKEND_QUERY,
    CACHE_POISON,
    CACHE_PRESSURE,
    DISK_PERMANENT,
    DISK_SLOW,
    DISK_TRANSIENT,
    LOG_COMPACT,
    LOG_PERMANENT,
    LOG_TORN,
    PROMOTE_READ,
    SPILL_WRITE,
    FaultPlan,
)

__all__ = ["FaultInjector"]


class FaultInjector:
    """Stateful driver of one :class:`FaultPlan`.

    The only mutable state is the per-site sequence counters and the
    fired-fault counters, both behind one lock; all fault *decisions*
    are pure plan rolls.  ``reset()`` returns the injector to its
    initial state, making back-to-back runs byte-for-byte identical.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._sequences: dict[str, int] = {}
        self._counters: dict[str, int] = {}

    def _next(self, site: str) -> int:
        with self._lock:
            sequence = self._sequences.get(site, 0)
            self._sequences[site] = sequence + 1
            return sequence

    def _count(self, kind: str) -> None:
        with self._lock:
            self._counters[kind] = self._counters.get(kind, 0) + 1

    def reset(self) -> None:
        """Forget all sequence and fault counters."""
        with self._lock:
            self._sequences.clear()
            self._counters.clear()

    def counters(self) -> dict[str, int]:
        """Fired faults by kind (sorted copy)."""
        with self._lock:
            return {k: self._counters[k] for k in sorted(self._counters)}

    # ------------------------------------------------------------------
    # The three hooks
    # ------------------------------------------------------------------
    def disk_read(self, page_id: int) -> float:
        """``SimulatedDisk.read_hook``: fault or delay one page read.

        Permanent faults are keyed by page id (a dead page stays dead on
        every retry); transient and slow faults are keyed by the
        read-sequence number at this site.
        """
        if self.plan.roll(DISK_PERMANENT, f"page:{page_id}", 0):
            self._count(DISK_PERMANENT)
            raise DiskFault(
                f"injected permanent fault reading page {page_id}",
                page_id=page_id,
                transient=False,
                site="disk.read",
            )
        sequence = self._next("disk.read")
        if self.plan.roll(DISK_TRANSIENT, "disk.read", sequence):
            self._count(DISK_TRANSIENT)
            raise DiskFault(
                f"injected transient fault reading page {page_id}",
                page_id=page_id,
                transient=True,
                site="disk.read",
            )
        if self.plan.roll(DISK_SLOW, "disk.read", sequence):
            spec = self.plan.spec(DISK_SLOW)
            assert spec is not None
            self._count(DISK_SLOW)
            return spec.latency
        return 0.0

    def backend_op(self, operation: str) -> None:
        """``BackendEngine.fault_hook``: fail one entry point outright."""
        site = f"backend.{operation}"
        sequence = self._next(site)
        if self.plan.roll(BACKEND_QUERY, site, sequence):
            self._count(BACKEND_QUERY)
            raise BackendFault(
                f"injected backend fault in {operation}",
                operation=operation,
                transient=True,
                site=site,
            )

    def spill_write(self, page_id: int) -> float:
        """Chunk-log ``write_hook``: fault one eviction-spill page write.

        Permanent faults are keyed by log page id (the page stays dead
        on every retry); transient spill faults are keyed by the write
        sequence at the ``spill_write`` site.
        """
        if self.plan.roll(LOG_PERMANENT, f"chunklog.page:{page_id}", 0):
            self._count(LOG_PERMANENT)
            raise DiskFault(
                f"injected permanent fault writing chunk-log page {page_id}",
                page_id=page_id,
                transient=False,
                site="spill_write",
            )
        sequence = self._next("spill_write")
        if self.plan.roll(SPILL_WRITE, "spill_write", sequence):
            self._count(SPILL_WRITE)
            raise DiskFault(
                f"injected transient fault writing chunk-log page {page_id}",
                page_id=page_id,
                transient=True,
                site="spill_write",
            )
        return 0.0

    def promote_read(self, page_id: int) -> float:
        """Chunk-log ``read_hook``: fault one promotion page read."""
        if self.plan.roll(LOG_PERMANENT, f"chunklog.page:{page_id}", 0):
            self._count(LOG_PERMANENT)
            raise DiskFault(
                f"injected permanent fault reading chunk-log page {page_id}",
                page_id=page_id,
                transient=False,
                site="promote_read",
            )
        sequence = self._next("promote_read")
        if self.plan.roll(PROMOTE_READ, "promote_read", sequence):
            self._count(PROMOTE_READ)
            raise DiskFault(
                f"injected transient fault reading chunk-log page {page_id}",
                page_id=page_id,
                transient=True,
                site="promote_read",
            )
        return 0.0

    def torn_write(self, token: str) -> bool:
        """Chunk-log ``torn_hook``: corrupt one spill's stored bytes.

        A torn record keeps its original CRC, so the corruption is
        *detected* (and quarantined) at the next promotion attempt —
        exercising the checksum path, never producing a wrong answer.
        """
        sequence = self._next("chunklog.torn")
        if self.plan.roll(LOG_TORN, "chunklog.torn", sequence):
            self._count(LOG_TORN)
            return True
        return False

    def compact_abort(self, record_index: int) -> bool:
        """Backend ``compact_hook``: abort one compaction record copy.

        A fired decision aborts the compaction at that record's write
        boundary with the log untouched (the backend's crash-safety
        contract); the tiered cache counts the fault and retries at the
        next trigger.
        """
        sequence = self._next("chunklog.compact")
        if self.plan.roll(LOG_COMPACT, "chunklog.compact", sequence):
            self._count(LOG_COMPACT)
            return True
        return False

    def cache_put(self, entry: object) -> tuple[str, int] | None:
        """Cache put hook: ``("poison", 0)``, ``("pressure", n)`` or None."""
        sequence = self._next("cache.put")
        if self.plan.roll(CACHE_POISON, "cache.put", sequence):
            self._count(CACHE_POISON)
            return ("poison", 0)
        if self.plan.roll(CACHE_PRESSURE, "cache.put", sequence):
            spec = self.plan.spec(CACHE_PRESSURE)
            assert spec is not None
            self._count(CACHE_PRESSURE)
            return ("pressure", spec.pressure)
        return None

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    @contextmanager
    def activate(self, manager: object) -> Iterator["FaultInjector"]:
        """Install the hooks on a chunk-cache manager's stack.

        Duck-typed on purpose: ``manager`` needs ``.backend`` (with
        ``.disk``) and ``.cache``; the cache is reached through
        ``set_fault_hook`` when it has one (the sharded cache
        distributes the hook to every shard) or a plain ``fault_hook``
        attribute otherwise.  A cache exposing a ``.log`` (the tiered
        cache's persistent tier — any L2 backend) additionally gets the
        write-path hooks: spill-write and promote-read faults through
        the backend's ``write_hook``/``read_hook`` fault points, the
        torn-write hook, and the compaction-abort hook.  Previous hooks
        are restored on exit even when the body raises.
        """
        backend = getattr(manager, "backend", None)
        cache = getattr(manager, "cache", None)
        if backend is None or cache is None:
            raise FaultError(
                "activate() needs a manager exposing .backend and .cache"
            )
        disk = backend.disk
        previous_read = disk.read_hook
        previous_backend = backend.fault_hook
        set_hook = getattr(cache, "set_fault_hook", None)
        previous_cache = None
        if not callable(set_hook):
            previous_cache = getattr(cache, "fault_hook", None)
        log = getattr(cache, "log", None)
        previous_log_hooks: (
            tuple[object, object, object, object] | None
        ) = None
        disk.read_hook = self.disk_read
        backend.fault_hook = self.backend_op
        if callable(set_hook):
            set_hook(self.cache_put)
        else:
            cache.fault_hook = self.cache_put
        if log is not None:
            previous_log_hooks = (
                log.write_hook,
                log.read_hook,
                log.torn_hook,
                log.compact_hook,
            )
            log.write_hook = self.spill_write
            log.read_hook = self.promote_read
            log.torn_hook = self.torn_write
            log.compact_hook = self.compact_abort
        try:
            yield self
        finally:
            disk.read_hook = previous_read
            backend.fault_hook = previous_backend
            if callable(set_hook):
                set_hook(None)
            else:
                cache.fault_hook = previous_cache
            if log is not None and previous_log_hooks is not None:
                log.write_hook = previous_log_hooks[0]
                log.read_hook = previous_log_hooks[1]
                log.torn_hook = previous_log_hooks[2]
                log.compact_hook = previous_log_hooks[3]
