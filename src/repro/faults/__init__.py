"""Deterministic fault injection for the chunk-cache stack.

This package is the *only* place fault plans are constructed and hooks
are installed (reprolint rule R006 enforces the boundary).  Production
modules merely expose hook points that stay ``None`` — and therefore
behave bit-identically to a tree without this package — until a test or
chaos harness activates a :class:`FaultInjector` around a manager.

See ``docs/FAULTS.md`` for the fault taxonomy, the determinism
contract, and how to write a chaos test.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    BACKEND_QUERY,
    CACHE_POISON,
    CACHE_PRESSURE,
    DISK_PERMANENT,
    DISK_SLOW,
    DISK_TRANSIENT,
    FAULT_KINDS,
    LOG_COMPACT,
    LOG_PERMANENT,
    LOG_TORN,
    PROMOTE_READ,
    SPILL_WRITE,
    FaultPlan,
    FaultSpec,
    standard_specs,
    tiered_specs,
)

__all__ = [
    "BACKEND_QUERY",
    "CACHE_POISON",
    "CACHE_PRESSURE",
    "DISK_PERMANENT",
    "DISK_SLOW",
    "DISK_TRANSIENT",
    "FAULT_KINDS",
    "LOG_COMPACT",
    "LOG_PERMANENT",
    "LOG_TORN",
    "PROMOTE_READ",
    "SPILL_WRITE",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "standard_specs",
    "tiered_specs",
]
