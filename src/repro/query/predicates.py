"""Predicate algebra over ordinal intervals.

Selections on group-by dimensions are range or point predicates (Section
5.2.2).  After the domain index converts member values to ordinals, every
selection is a half-open interval ``[lo, hi)`` over a dimension level's
ordinals, with ``None`` meaning "no restriction" (the full domain).

A query's full selection is one such optional interval per dimension.  This
module provides the interval and selection operations the cache layers
need: intersection, containment, emptiness, and cardinality.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import QueryError

__all__ = [
    "Interval",
    "Selection",
    "normalize_interval",
    "interval_intersect",
    "interval_contains",
    "interval_length",
    "selection_intersect",
    "selection_contains",
    "selection_is_empty",
    "selection_cardinality",
]

#: A half-open ordinal interval, or None for "the whole domain".
Interval = tuple[int, int] | None

#: One optional interval per dimension.
Selection = tuple[Interval, ...]


def normalize_interval(interval: Interval, domain_size: int) -> Interval:
    """Clamp an interval to ``[0, domain_size)``; full coverage becomes None.

    Raises:
        QueryError: If the interval is malformed or entirely outside the
            domain.
    """
    if interval is None:
        return None
    lo, hi = interval
    if hi <= lo:
        raise QueryError(f"empty interval [{lo}, {hi})")
    lo, hi = max(lo, 0), min(hi, domain_size)
    if hi <= lo:
        raise QueryError(
            f"interval [{interval[0]}, {interval[1]}) lies outside the "
            f"domain of size {domain_size}"
        )
    if (lo, hi) == (0, domain_size):
        return None
    return (lo, hi)


def interval_intersect(a: Interval, b: Interval) -> Interval | str:
    """Intersection of two intervals; ``"empty"`` when disjoint.

    ``None`` (full domain) is the identity.  The sentinel string is used
    instead of ``None`` because ``None`` already means "everything".
    """
    if a is None:
        return b
    if b is None:
        return a
    lo, hi = max(a[0], b[0]), min(a[1], b[1])
    if hi <= lo:
        return "empty"
    return (lo, hi)


def interval_contains(outer: Interval, inner: Interval) -> bool:
    """Whether ``outer`` covers every ordinal of ``inner``.

    ``None`` as outer covers everything; ``None`` as inner is only covered
    by ``None`` (callers normalize full-domain intervals to None first, so
    a concrete outer interval never needs to cover a full domain).
    """
    if outer is None:
        return True
    if inner is None:
        return False
    return outer[0] <= inner[0] and inner[1] <= outer[1]


def interval_length(interval: Interval, domain_size: int) -> int:
    """Number of ordinals an interval selects within a domain."""
    if interval is None:
        return domain_size
    return interval[1] - interval[0]


def selection_intersect(a: Selection, b: Selection) -> Selection | None:
    """Per-dimension intersection; None when any dimension is disjoint."""
    if len(a) != len(b):
        raise QueryError(
            f"selection arity mismatch: {len(a)} vs {len(b)}"
        )
    result: list[Interval] = []
    for ia, ib in zip(a, b):
        merged = interval_intersect(ia, ib)
        if merged == "empty":
            return None
        result.append(merged)  # type: ignore[arg-type]
    return tuple(result)


def selection_contains(outer: Selection, inner: Selection) -> bool:
    """Whether ``outer`` covers ``inner`` on every dimension."""
    if len(outer) != len(inner):
        raise QueryError(
            f"selection arity mismatch: {len(outer)} vs {len(inner)}"
        )
    return all(interval_contains(o, i) for o, i in zip(outer, inner))


def selection_is_empty(selection: Selection | None) -> bool:
    """Whether a (possibly already-folded) selection selects nothing."""
    return selection is None


def selection_cardinality(
    selection: Selection, domain_sizes: Sequence[int]
) -> int:
    """Number of cells a selection covers (product of interval lengths)."""
    if len(selection) != len(domain_sizes):
        raise QueryError(
            f"selection arity {len(selection)} vs "
            f"{len(domain_sizes)} domains"
        )
    result = 1
    for interval, size in zip(selection, domain_sizes):
        result *= interval_length(interval, size)
    return result
