"""Query containment — the reuse test of query-level caching.

The baseline the paper compares against (Section 6.1.4) caches whole query
results and can answer a new query from the cache only when it is
*contained* in a cached query.  For the star-join template, containment of
``inner`` in ``outer`` requires:

1. same level of aggregation (aggregation stays in the backend, so cached
   results at other levels are not reusable — Section 5.2.1 condition 1);
2. the aggregate list of ``inner`` is a subset of ``outer``'s (condition 2,
   the "project list" condition);
3. identical non-group-by selections (condition 3); and
4. ``outer``'s group-by selections cover ``inner``'s on every dimension.
"""

from __future__ import annotations

from repro.query.model import StarQuery
from repro.query.predicates import selection_contains, selection_intersect

__all__ = ["query_contains", "queries_overlap", "compatible"]


def compatible(a: StarQuery, b: StarQuery) -> bool:
    """Whether two queries could share cached data at all.

    Same group-by and identical non-group-by predicates; the aggregate
    lists must be comparable (one a subset of the other is checked by the
    callers that care about direction).
    """
    return (
        a.groupby == b.groupby
        and a.fixed_predicates == b.fixed_predicates
    )


def query_contains(outer: StarQuery, inner: StarQuery) -> bool:
    """Whether ``inner`` can be answered entirely from ``outer``'s result."""
    if not compatible(outer, inner):
        return False
    if not set(inner.aggregates) <= set(outer.aggregates):
        return False
    return selection_contains(outer.selections, inner.selections)


def queries_overlap(a: StarQuery, b: StarQuery) -> bool:
    """Whether two compatible queries select intersecting regions.

    Used to quantify the redundant storage of query-level caching: two
    overlapping cached queries store the shared region twice.
    """
    if not compatible(a, b):
        return False
    return selection_intersect(a.selections, b.selections) is not None
