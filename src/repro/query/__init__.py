"""Star-join query model, predicate algebra and containment."""

from repro.query.containment import compatible, queries_overlap, query_contains
from repro.query.model import StarQuery
from repro.query.predicates import (
    Interval,
    Selection,
    interval_contains,
    interval_intersect,
    interval_length,
    normalize_interval,
    selection_cardinality,
    selection_contains,
    selection_intersect,
)

__all__ = [
    "StarQuery",
    "Interval",
    "Selection",
    "normalize_interval",
    "interval_intersect",
    "interval_contains",
    "interval_length",
    "selection_intersect",
    "selection_contains",
    "selection_cardinality",
    "query_contains",
    "queries_overlap",
    "compatible",
]
