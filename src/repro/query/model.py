"""The star-join query model.

The paper assumes a star-join template (Section 5.2.1)::

    SELECT   <proj-list> <aggregate-list>
    FROM     <FactName> <dimension-list>
    WHERE    <select-list>
    GROUP BY <dimension-list>

After query analysis, such a query is fully described by:

- its **group-by**: one hierarchy level per dimension (0 == aggregated
  away) — which levels appear in the GROUP BY clause;
- its **selections on group-by attributes**: one optional ordinal interval
  per dimension, at that dimension's group-by level (post-aggregation
  filters that may be relaxed against the cache);
- its **selections on non-group-by attributes**: opaque predicates that are
  folded in *before* aggregation and must match a cached entry exactly
  (condition 3 of Section 5.2.1); and
- its **aggregate list**: ``(measure, aggregate)`` pairs.

:class:`StarQuery` is an immutable value object shared by the cache
managers, the backend engine and the workload generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.exceptions import QueryError
from repro.query.predicates import Interval, Selection, normalize_interval
from repro.schema.star import GroupBy, StarSchema
from repro.storage.record import RecordFormat, groupby_record_format

__all__ = ["QueryKey", "StarQuery"]

#: Hashable identity tuple derived from a query; contents are
#: heterogeneous (group-by, selections, aggregate list, predicate tags).
QueryKey = tuple[object, ...]


@dataclass(frozen=True)
class StarQuery:
    """An analyzed OLAP star-join query.

    Attributes:
        groupby: Level per dimension (0 == ALL).
        selections: Optional half-open ordinal interval per dimension, at
            the dimension's group-by level; None selects all members.
            Aggregated-away dimensions must carry None.  These are
            post-aggregation filters that the cache may relax (a cached
            chunk covering more is still reusable).
        aggregates: ``(measure_name, aggregate)`` pairs.
        dim_filters: Optional half-open *leaf-level* ordinal interval per
            dimension, applied to base tuples **before** aggregation —
            the paper's "selections on non-group-by attributes".  They
            are baked into every result tuple, so cached data is only
            reusable when they match exactly; each filter therefore also
            contributes a canonical tag to :attr:`fixed_predicates`.
        fixed_predicates: Canonical tags of the pre-aggregation
            predicates (dimension filters plus any caller-supplied opaque
            tags); cached results require an exact match (condition 3 of
            Section 5.2.1).

    Use :meth:`build` (ordinals) or :meth:`from_values` (member values) to
    construct validated instances.
    """

    groupby: GroupBy
    selections: Selection
    aggregates: tuple[tuple[str, str], ...]
    dim_filters: Selection = ()
    fixed_predicates: frozenset[str] = field(default_factory=frozenset)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        schema: StarSchema,
        groupby: Sequence[int],
        selections: Sequence[Interval] | Mapping[str, Interval] | None = None,
        aggregates: Sequence[tuple[str, str]] | None = None,
        fixed_predicates: Sequence[str] = (),
        dim_filters: Sequence[Interval] | Mapping[str, Interval] | None = None,
    ) -> "StarQuery":
        """Validated construction from ordinal-space arguments.

        Args:
            schema: The star schema the query runs against.
            groupby: Level per dimension, in schema dimension order.
            selections: Either a sequence aligned with the dimensions or a
                mapping from dimension name to interval; omitted dimensions
                are unrestricted.  Intervals are clamped to the level's
                domain and full-domain intervals normalize to None.
            aggregates: Defaults to every measure with its default
                aggregate.
            fixed_predicates: Non-group-by predicate tags.

        Raises:
            QueryError: On arity mismatches, selections on aggregated-away
                dimensions, unknown measures, or empty intervals.
        """
        groupby = schema.validate_groupby(groupby)
        if selections is None:
            raw: list[Interval] = [None] * schema.num_dimensions
        elif isinstance(selections, Mapping):
            raw = [None] * schema.num_dimensions
            for name, interval in selections.items():
                raw[schema.dimension_position(name)] = interval
        else:
            raw = list(selections)
            if len(raw) != schema.num_dimensions:
                raise QueryError(
                    f"{len(raw)} selections for {schema.num_dimensions} "
                    "dimensions"
                )
        normalized: list[Interval] = []
        for dim, level, interval in zip(schema.dimensions, groupby, raw):
            if level == 0:
                if interval is not None:
                    raise QueryError(
                        f"selection on aggregated-away dimension {dim.name!r}"
                    )
                normalized.append(None)
            else:
                normalized.append(
                    normalize_interval(interval, dim.cardinality(level))
                )
        if aggregates is None:
            aggregates = [
                (m.name, m.default_aggregate) for m in schema.measures
            ]
        aggregates = tuple((str(m), str(a)) for m, a in aggregates)
        if not aggregates:
            raise QueryError("a star query needs at least one aggregate")
        for measure_name, aggregate in aggregates:
            if not schema.has_measure(measure_name):
                raise QueryError(f"unknown measure {measure_name!r}")
            if aggregate not in ("sum", "count", "min", "max", "avg"):
                raise QueryError(f"unknown aggregate {aggregate!r}")

        if dim_filters is None:
            raw_filters: list[Interval] = [None] * schema.num_dimensions
        elif isinstance(dim_filters, Mapping):
            raw_filters = [None] * schema.num_dimensions
            for name, interval in dim_filters.items():
                raw_filters[schema.dimension_position(name)] = interval
        else:
            raw_filters = list(dim_filters)
            if len(raw_filters) != schema.num_dimensions:
                raise QueryError(
                    f"{len(raw_filters)} dimension filters for "
                    f"{schema.num_dimensions} dimensions"
                )
        filters: list[Interval] = []
        tags = set(fixed_predicates)
        for dim, interval in zip(schema.dimensions, raw_filters):
            normalized_filter = normalize_interval(
                interval, dim.leaf_cardinality
            )
            filters.append(normalized_filter)
            if normalized_filter is not None:
                tags.add(
                    f"{dim.name}.leaf in "
                    f"[{normalized_filter[0]},{normalized_filter[1]})"
                )
        return cls(
            groupby=groupby,
            selections=tuple(normalized),
            aggregates=aggregates,
            dim_filters=tuple(filters),
            fixed_predicates=frozenset(tags),
        )

    @classmethod
    def from_values(
        cls,
        schema: StarSchema,
        groupby_levels: Mapping[str, int],
        value_selections: Mapping[str, tuple[object, object]] | None = None,
        aggregates: Sequence[tuple[str, str]] | None = None,
        fixed_predicates: Sequence[str] = (),
        value_filters: Mapping[str, tuple[int, object, object]] | None = None,
    ) -> "StarQuery":
        """Construction from dimension member *values*.

        Args:
            schema: The star schema.
            groupby_levels: Level per dimension *name*; omitted dimensions
                are aggregated away (level 0).
            value_selections: Per dimension name, an inclusive ``(low_value,
                high_value)`` pair of members at that dimension's group-by
                level; converted to ordinals via the domain index.
            value_filters: Per dimension name, ``(level, low_value,
                high_value)`` — an inclusive member-value range at *any*
                level of that dimension, applied before aggregation (a
                non-group-by selection).  Converted to a leaf-level
                interval via the hierarchy.

        This is the entry point the mini-SQL layer uses.
        """
        groupby = [0] * schema.num_dimensions
        for name, level in groupby_levels.items():
            groupby[schema.dimension_position(name)] = level
        selections: list[Interval] = [None] * schema.num_dimensions
        for name, (low, high) in (value_selections or {}).items():
            pos = schema.dimension_position(name)
            level = groupby[pos]
            if level == 0:
                raise QueryError(
                    f"selection on dimension {name!r} which is not grouped"
                )
            dim = schema.dimensions[pos]
            lo = dim.ordinal_of(level, low)
            hi = dim.ordinal_of(level, high)
            if hi < lo:
                raise QueryError(
                    f"selection bounds on {name!r} are reversed: "
                    f"{low!r} > {high!r}"
                )
            selections[pos] = (lo, hi + 1)  # inclusive values -> half-open
        filters: list[Interval] = [None] * schema.num_dimensions
        for name, (level, low, high) in (value_filters or {}).items():
            pos = schema.dimension_position(name)
            dim = schema.dimensions[pos]
            lo = dim.ordinal_of(level, low)
            hi = dim.ordinal_of(level, high)
            if hi < lo:
                raise QueryError(
                    f"filter bounds on {name!r} are reversed: "
                    f"{low!r} > {high!r}"
                )
            filters[pos] = dim.map_range(
                level, (lo, hi + 1), dim.leaf_level
            )
        return cls.build(
            schema, groupby, selections, aggregates, fixed_predicates,
            dim_filters=filters,
        )

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------
    def cache_compatible_key(self) -> QueryKey:
        """Key under which cached results of this *shape* are reusable.

        Two queries can share cached data iff group-by, aggregate list and
        non-group-by predicates all agree (conditions 1–3 of Section
        5.2.1); only the group-by selections may differ.
        """
        return (self.groupby, self.aggregates, self.fixed_predicates)

    def exact_key(self) -> QueryKey:
        """Full identity key (used by the query-level cache)."""
        return (
            self.groupby,
            self.selections,
            self.aggregates,
            self.dim_filters,
            self.fixed_predicates,
        )

    def effective_dim_filters(self, schema: StarSchema) -> Selection:
        """Per-dimension leaf filters, padded to the schema's arity.

        Directly constructed instances may carry an empty ``dim_filters``
        tuple; this normalizes it to one entry per dimension.
        """
        if len(self.dim_filters) == schema.num_dimensions:
            return self.dim_filters
        if not self.dim_filters:
            return (None,) * schema.num_dimensions
        raise QueryError(
            f"dim_filters arity {len(self.dim_filters)} does not match "
            f"schema arity {schema.num_dimensions}"
        )

    def has_dim_filters(self) -> bool:
        """Whether any pre-aggregation dimension filter is set."""
        return any(f is not None for f in self.dim_filters)

    def result_format(self, schema: StarSchema) -> RecordFormat:
        """Record format of this query's result rows."""
        return groupby_record_format(schema, self.groupby, self.aggregates)

    def result_cardinality(self, schema: StarSchema) -> int:
        """Upper bound on result rows (product of selected extents)."""
        total = 1
        for dim, level, interval in zip(
            schema.dimensions, self.groupby, self.selections
        ):
            if level == 0:
                continue
            if interval is None:
                total *= dim.cardinality(level)
            else:
                total *= interval[1] - interval[0]
        return total

    def leaf_selection(self, schema: StarSchema) -> Selection:
        """All base-tuple restrictions as leaf-level ordinal intervals.

        Combines the group-by selections (mapped down the hierarchy) with
        the pre-aggregation dimension filters, intersected per dimension.
        Used by the bitmap access path, which selects base tuples before
        aggregating.

        Raises:
            QueryError: If a dimension's selection and filter are
                disjoint (the query provably selects nothing at that
                dimension — callers should treat the result as empty, so
                this is surfaced loudly rather than silently).
        """
        from repro.query.predicates import interval_intersect

        result: list[Interval] = []
        filters = self.effective_dim_filters(schema)
        for dim, level, interval, leaf_filter in zip(
            schema.dimensions, self.groupby, self.selections, filters
        ):
            if level == 0 or interval is None:
                mapped: Interval = None
            else:
                mapped = dim.map_range(level, interval, dim.leaf_level)
            merged = interval_intersect(mapped, leaf_filter)
            if merged == "empty":
                raise QueryError(
                    f"selection and filter on {dim.name!r} are disjoint"
                )
            result.append(merged)  # type: ignore[arg-type]
        return tuple(result)

    def __str__(self) -> str:
        parts = []
        for level, interval in zip(self.groupby, self.selections):
            if level == 0:
                parts.append("ALL")
            elif interval is None:
                parts.append(f"L{level}[*]")
            else:
                parts.append(f"L{level}[{interval[0]}:{interval[1]})")
        aggs = ",".join(f"{a}({m})" for m, a in self.aggregates)
        return f"StarQuery({' x '.join(parts)}; {aggs})"
