"""Command-line entry point: ``python -m repro``.

Subcommands:

- ``list`` — show the reproducible experiments;
- ``run [ids...] [--smoke|--paper]`` — regenerate tables/figures
  (all of them when no ids are given);
- ``soak`` — the concurrency soak; with ``--chaos`` the fault-injected
  chaos soak (the nightly job's entry point);
- ``front`` — the async admission front door over a duplicate-heavy
  workload; with ``--chaos`` under fault injection (also nightly);
- ``info`` — print version and the configured default scale.
"""

from __future__ import annotations

import json
import sys

from repro import __version__
from repro.experiments.configs import DEFAULT_SCALE, PAPER_SCALE, SMOKE_SCALE
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.reporting import ExperimentResult

USAGE = """\
usage: python -m repro <command> [options]

commands:
  list                 list reproducible experiments
  run [ids...]         run experiments (default: all); --smoke / --paper
  report [path]        run everything and write a Markdown report
  soak                 concurrency soak; --chaos for fault injection,
                       --rate low|mid|high, --seed N, --users N,
                       --per-user N, --shards N, --workers N,
                       --exec threads|processes, --tiers 1|2,
                       --persist PATH (2-tier chunk log),
                       --cache-bytes N (override the L1 budget),
                       --l2-backend chunklog|sqlite,
                       --l2-budget N (L2 live-byte budget),
                       --compact-threshold R (dead-space ratio),
                       --report PATH (JSON), --smoke / --paper
  front                async admission front door with single-flight
                       coalescing; --chaos for fault injection,
                       --rate low|mid|high, --seed N, --users N,
                       --per-user N, --window N, --workers N,
                       --exec threads|processes, --no-coalesce,
                       --tiers 1|2, --persist PATH (2-tier chunk log),
                       --l2-backend chunklog|sqlite,
                       --l2-budget N, --compact-threshold R,
                       --report PATH (JSON), --smoke / --paper
  info                 version and default scale
"""


def _cmd_list() -> int:
    width = max(len(eid) for eid in EXPERIMENTS)
    for eid, (description, _takes_scale, _runner) in EXPERIMENTS.items():
        print(f"  {eid.ljust(width)}  {description}")
    return 0


def _cmd_run(argv: list[str]) -> int:
    scale = DEFAULT_SCALE
    if "--smoke" in argv:
        scale = SMOKE_SCALE
        argv = [a for a in argv if a != "--smoke"]
    if "--paper" in argv:
        scale = PAPER_SCALE
        argv = [a for a in argv if a != "--paper"]
    ids = argv or list(EXPERIMENTS)
    unknown = [eid for eid in ids if eid not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        return 2
    for eid in ids:
        print(run_experiment(eid, scale).render())
        print()
    return 0


def _cmd_report(argv: list[str]) -> int:
    scale = DEFAULT_SCALE
    if "--smoke" in argv:
        scale = SMOKE_SCALE
        argv = [a for a in argv if a != "--smoke"]
    if "--paper" in argv:
        scale = PAPER_SCALE
        argv = [a for a in argv if a != "--paper"]
    path = argv[0] if argv else "experiment-report.md"
    sections = [
        "# Reproduced evaluation — Caching Multidimensional Queries "
        "Using Chunks (SIGMOD 1998)",
        "",
        f"Scale: {scale.num_tuples:,} tuples, {scale.num_queries} "
        f"queries/stream, chunk ratio {scale.chunk_ratio}.",
        "",
    ]
    for eid in EXPERIMENTS:
        result = run_experiment(eid, scale)
        sections.append(f"## {result.title}")
        if result.expectation:
            sections.append(f"*Expected shape*: {result.expectation}")
            sections.append("")
        sections.append(_markdown_body(result))
        if result.notes:
            sections.append(f"\n*Notes*: {result.notes}")
        sections.append("")
        print(f"  {eid}: done")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(sections) + "\n")
    print(f"report written to {path}")
    return 0


def _markdown_body(result: ExperimentResult) -> str:
    from repro.experiments.reporting import format_markdown

    return format_markdown(result.columns, result.rows)


def _flag_value(argv: list[str], name: str) -> tuple[list[str], str | None]:
    """Pop ``name VALUE`` from the argument list, if present."""
    if name not in argv:
        return argv, None
    index = argv.index(name)
    if index + 1 >= len(argv):
        raise SystemExit(f"{name} needs a value")
    value = argv[index + 1]
    return argv[:index] + argv[index + 2 :], value


def _cmd_soak(argv: list[str]) -> int:
    # The composition root for fault plans lives in the experiments
    # layer (R006); import it lazily so `python -m repro list` stays
    # cheap.
    from repro.experiments.soakjob import run_chaos_job, run_soak_job
    from repro.serve import THREADS, ChaosConfig, SoakConfig

    scale = DEFAULT_SCALE
    if "--smoke" in argv:
        scale = SMOKE_SCALE
        argv = [a for a in argv if a != "--smoke"]
    if "--paper" in argv:
        scale = PAPER_SCALE
        argv = [a for a in argv if a != "--paper"]
    chaos = "--chaos" in argv
    argv = [a for a in argv if a != "--chaos"]
    argv, rate = _flag_value(argv, "--rate")
    argv, seed = _flag_value(argv, "--seed")
    argv, users = _flag_value(argv, "--users")
    argv, per_user = _flag_value(argv, "--per-user")
    argv, shards = _flag_value(argv, "--shards")
    argv, workers = _flag_value(argv, "--workers")
    argv, exec_mode = _flag_value(argv, "--exec")
    argv, tiers = _flag_value(argv, "--tiers")
    argv, persist = _flag_value(argv, "--persist")
    argv, cache_bytes = _flag_value(argv, "--cache-bytes")
    argv, l2_backend = _flag_value(argv, "--l2-backend")
    argv, l2_budget = _flag_value(argv, "--l2-budget")
    argv, compact_threshold = _flag_value(argv, "--compact-threshold")
    argv, report_path = _flag_value(argv, "--report")
    if argv:
        print(f"unknown soak arguments: {argv}", file=sys.stderr)
        return 2
    max_workers = int(workers) if workers is not None else None
    mode = exec_mode if exec_mode is not None else THREADS
    kwargs: dict[str, object] = {"scale": scale}
    if users is not None:
        kwargs["num_users"] = int(users)
    if per_user is not None:
        kwargs["per_user"] = int(per_user)
    if shards is not None:
        kwargs["num_shards"] = int(shards)
    if tiers is not None:
        kwargs["cache_tiers"] = int(tiers)
    if persist is not None:
        kwargs["persist_path"] = persist
    if cache_bytes is not None:
        kwargs["cache_bytes"] = int(cache_bytes)
    if l2_backend is not None:
        kwargs["l2_backend"] = l2_backend
    if l2_budget is not None:
        kwargs["l2_budget_bytes"] = int(l2_budget)
    if compact_threshold is not None:
        kwargs["compact_threshold"] = float(compact_threshold)
    if chaos:
        if rate is not None:
            kwargs["rate"] = rate
        if seed is not None:
            kwargs["seed"] = int(seed)
        kwargs["config"] = ChaosConfig(
            max_workers=max_workers, exec_mode=mode
        )
        summary = run_chaos_job(**kwargs)  # type: ignore[arg-type]
    else:
        kwargs["config"] = SoakConfig(
            max_workers=max_workers, exec_mode=mode
        )
        summary = run_soak_job(**kwargs)  # type: ignore[arg-type]
    for key in sorted(summary):
        if key != "contention":
            print(f"  {key}: {summary[key]}")
    if report_path is not None:
        with open(report_path, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"soak report written to {report_path}")
    return 0


def _cmd_front(argv: list[str]) -> int:
    # Like soak, the composition root (workload, cache, fault plan)
    # lives in the experiments layer (R006/R007); import it lazily so
    # `python -m repro list` stays cheap.
    from repro.experiments.frontjob import (
        run_front_chaos_job,
        run_front_job,
    )
    from repro.serve import THREADS, FrontConfig

    scale = DEFAULT_SCALE
    if "--smoke" in argv:
        scale = SMOKE_SCALE
        argv = [a for a in argv if a != "--smoke"]
    if "--paper" in argv:
        scale = PAPER_SCALE
        argv = [a for a in argv if a != "--paper"]
    chaos = "--chaos" in argv
    argv = [a for a in argv if a != "--chaos"]
    coalesce = "--no-coalesce" not in argv
    argv = [a for a in argv if a != "--no-coalesce"]
    argv, rate = _flag_value(argv, "--rate")
    argv, seed = _flag_value(argv, "--seed")
    argv, users = _flag_value(argv, "--users")
    argv, per_user = _flag_value(argv, "--per-user")
    argv, window = _flag_value(argv, "--window")
    argv, workers = _flag_value(argv, "--workers")
    argv, exec_mode = _flag_value(argv, "--exec")
    argv, tiers = _flag_value(argv, "--tiers")
    argv, persist = _flag_value(argv, "--persist")
    argv, l2_backend = _flag_value(argv, "--l2-backend")
    argv, l2_budget = _flag_value(argv, "--l2-budget")
    argv, compact_threshold = _flag_value(argv, "--compact-threshold")
    argv, report_path = _flag_value(argv, "--report")
    if argv:
        print(f"unknown front arguments: {argv}", file=sys.stderr)
        return 2
    config = FrontConfig(
        window=int(window) if window is not None else 8,
        max_workers=int(workers) if workers is not None else None,
        coalesce=coalesce,
    )
    kwargs: dict[str, object] = {
        "scale": scale,
        "config": config,
        "exec_mode": exec_mode if exec_mode is not None else THREADS,
    }
    if users is not None:
        kwargs["num_users"] = int(users)
    if per_user is not None:
        kwargs["per_user"] = int(per_user)
    if tiers is not None:
        kwargs["cache_tiers"] = int(tiers)
    if persist is not None:
        kwargs["persist_path"] = persist
    if l2_backend is not None:
        kwargs["l2_backend"] = l2_backend
    if l2_budget is not None:
        kwargs["l2_budget_bytes"] = int(l2_budget)
    if compact_threshold is not None:
        kwargs["compact_threshold"] = float(compact_threshold)
    if chaos:
        if rate is not None:
            kwargs["rate"] = rate
        if seed is not None:
            kwargs["seed"] = int(seed)
        summary = run_front_chaos_job(**kwargs)  # type: ignore[arg-type]
    else:
        summary = run_front_job(**kwargs)  # type: ignore[arg-type]
    for key in sorted(summary):
        if key != "fault_counters":
            print(f"  {key}: {summary[key]}")
    if report_path is not None:
        with open(report_path, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"front report written to {report_path}")
    return 0


def _cmd_info() -> int:
    print(f"repro {__version__}")
    print(
        f"default scale: {DEFAULT_SCALE.num_tuples:,} tuples, "
        f"{DEFAULT_SCALE.num_queries} queries/stream, "
        f"chunk ratio {DEFAULT_SCALE.chunk_ratio}"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(USAGE)
        return 0
    command, rest = argv[0], argv[1:]
    if command == "list":
        return _cmd_list()
    if command == "run":
        return _cmd_run(rest)
    if command == "report":
        return _cmd_report(rest)
    if command == "soak":
        return _cmd_soak(rest)
    if command == "front":
        return _cmd_front(rest)
    if command == "info":
        return _cmd_info()
    print(USAGE, file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
