"""Command-line entry point: ``python -m repro``.

Subcommands:

- ``list`` — show the reproducible experiments;
- ``run [ids...] [--smoke|--paper]`` — regenerate tables/figures
  (all of them when no ids are given);
- ``info`` — print version and the configured default scale.
"""

from __future__ import annotations

import sys

from repro import __version__
from repro.experiments.configs import DEFAULT_SCALE, PAPER_SCALE, SMOKE_SCALE
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.reporting import ExperimentResult

USAGE = """\
usage: python -m repro <command> [options]

commands:
  list                 list reproducible experiments
  run [ids...]         run experiments (default: all); --smoke / --paper
  report [path]        run everything and write a Markdown report
  info                 version and default scale
"""


def _cmd_list() -> int:
    width = max(len(eid) for eid in EXPERIMENTS)
    for eid, (description, _takes_scale, _runner) in EXPERIMENTS.items():
        print(f"  {eid.ljust(width)}  {description}")
    return 0


def _cmd_run(argv: list[str]) -> int:
    scale = DEFAULT_SCALE
    if "--smoke" in argv:
        scale = SMOKE_SCALE
        argv = [a for a in argv if a != "--smoke"]
    if "--paper" in argv:
        scale = PAPER_SCALE
        argv = [a for a in argv if a != "--paper"]
    ids = argv or list(EXPERIMENTS)
    unknown = [eid for eid in ids if eid not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        return 2
    for eid in ids:
        print(run_experiment(eid, scale).render())
        print()
    return 0


def _cmd_report(argv: list[str]) -> int:
    scale = DEFAULT_SCALE
    if "--smoke" in argv:
        scale = SMOKE_SCALE
        argv = [a for a in argv if a != "--smoke"]
    if "--paper" in argv:
        scale = PAPER_SCALE
        argv = [a for a in argv if a != "--paper"]
    path = argv[0] if argv else "experiment-report.md"
    sections = [
        "# Reproduced evaluation — Caching Multidimensional Queries "
        "Using Chunks (SIGMOD 1998)",
        "",
        f"Scale: {scale.num_tuples:,} tuples, {scale.num_queries} "
        f"queries/stream, chunk ratio {scale.chunk_ratio}.",
        "",
    ]
    for eid in EXPERIMENTS:
        result = run_experiment(eid, scale)
        sections.append(f"## {result.title}")
        if result.expectation:
            sections.append(f"*Expected shape*: {result.expectation}")
            sections.append("")
        sections.append(_markdown_body(result))
        if result.notes:
            sections.append(f"\n*Notes*: {result.notes}")
        sections.append("")
        print(f"  {eid}: done")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(sections) + "\n")
    print(f"report written to {path}")
    return 0


def _markdown_body(result: ExperimentResult) -> str:
    from repro.experiments.reporting import format_markdown

    return format_markdown(result.columns, result.rows)


def _cmd_info() -> int:
    print(f"repro {__version__}")
    print(
        f"default scale: {DEFAULT_SCALE.num_tuples:,} tuples, "
        f"{DEFAULT_SCALE.num_queries} queries/stream, "
        f"chunk ratio {DEFAULT_SCALE.chunk_ratio}"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(USAGE)
        return 0
    command, rest = argv[0], argv[1:]
    if command == "list":
        return _cmd_list()
    if command == "run":
        return _cmd_run(rest)
    if command == "report":
        return _cmd_report(rest)
    if command == "info":
        return _cmd_info()
    print(USAGE, file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
