"""repro — Caching Multidimensional Queries Using Chunks (SIGMOD 1998).

A full reproduction of Deshpande, Ramasamy, Shukla and Naughton's
chunk-based OLAP caching system:

- :mod:`repro.schema` — star schemas, hierarchies, domain indexes;
- :mod:`repro.core` — chunk ranges/grids/closure, the chunk cache with
  benefit-weighted CLOCK replacement, the middle-tier cache manager, and
  the query-level caching baseline;
- :mod:`repro.storage` — a simulated page-based storage engine: disk with
  I/O accounting, buffer pool, fact files, B+-tree, bitmap indexes, and
  the chunked file organization;
- :mod:`repro.backend` — the relational engine (chunk interface, bitmap
  and scan access paths, aggregation);
- :mod:`repro.pipeline` — the staged query-execution pipeline (analysis,
  resolver chain, assembly, accounting) both caching schemes run on,
  with per-stage execution traces;
- :mod:`repro.query` — the star-join query model and containment;
- :mod:`repro.workload` — synthetic data and locality-tunable streams;
- :mod:`repro.analysis` — the cost model and Feller occupancy math;
- :mod:`repro.experiments` — one module per reproduced table/figure.

Quickstart::

    from repro import (
        build_star_schema, ChunkSpace, BackendEngine, ChunkCache,
        ChunkCacheManager, StarQuery, generate_fact_table,
    )

    schema = build_star_schema([[5, 25, 50], [10, 50]])
    space = ChunkSpace(schema, 0.1)
    records = generate_fact_table(schema, 100_000, seed=1)
    backend = BackendEngine.build(schema, space, records)
    manager = ChunkCacheManager(
        schema, space, backend, ChunkCache(1 << 20)
    )
    query = StarQuery.build(schema, (1, 1), {"D0": (0, 3)})
    answer = manager.answer(query)
"""

from repro.analysis import CostModel
from repro.backend import BackendEngine, parse_query
from repro.core import (
    Answer,
    ChunkCache,
    ChunkCacheManager,
    ChunkKey,
    ChunkSpace,
    QueryCacheManager,
    StreamMetrics,
)
from repro.exceptions import ReproError
from repro.pipeline import (
    ExecutionTrace,
    QueryAnswerer,
    StagedPipeline,
)
from repro.query import StarQuery
from repro.schema import (
    Dimension,
    Hierarchy,
    Level,
    Measure,
    StarSchema,
    build_dimension,
    build_star_schema,
)
from repro.storage import ChunkedFile, SimulatedDisk
from repro.workload import (
    EQPR,
    PROXIMITY,
    RANDOM,
    LocalityMix,
    QueryGenerator,
    generate_fact_table,
    make_stream,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "Level",
    "Hierarchy",
    "Dimension",
    "Measure",
    "StarSchema",
    "build_dimension",
    "build_star_schema",
    "ChunkSpace",
    "ChunkKey",
    "ChunkCache",
    "ChunkCacheManager",
    "QueryCacheManager",
    "Answer",
    "StreamMetrics",
    "ExecutionTrace",
    "QueryAnswerer",
    "StagedPipeline",
    "BackendEngine",
    "parse_query",
    "SimulatedDisk",
    "ChunkedFile",
    "StarQuery",
    "CostModel",
    "LocalityMix",
    "QueryGenerator",
    "RANDOM",
    "EQPR",
    "PROXIMITY",
    "generate_fact_table",
    "make_stream",
    "__version__",
]
