"""Runtime lock-order witness for the static/dynamic cross-check.

``tools/reprolint`` derives a **static** lock-order graph over the
serving stack (rule R009) and pins it as a golden artifact
(``tests/tools/lockorder.txt``).  This module is the dynamic half of
that contract: instrumented acquisition sites wrap their critical
sections in :func:`witness`, and while a :func:`capture` block is
active every nested pair of levels held by one thread is recorded as an
``(outer, inner)`` edge.  The tier-1 soak asserts the recorded edges
are a **subset** of the static graph — an acquisition order the
analyzer did not predict fails the build before it can deadlock.

Design constraints:

- **Leaf module.**  Imports nothing from the package, so every layer
  (backend, serve) may use it without bending the R001 layering DAG.
- **Near-zero cost when idle.**  Outside a ``capture()`` block,
  :func:`witness` checks one module global and yields; no per-thread
  state is touched.  Production paths pay one branch.
- **No locks of its own.**  Edge recording appends to a plain list
  (atomic under the GIL) and deduplicates at read time, so the witness
  cannot introduce ordering edges of its own into the graph it checks.

Only one ``capture()`` may be active at a time (module-global slot);
the soak harness is the only intended user.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

__all__ = ["WitnessLog", "capture", "witness"]


class WitnessLog:
    """Accumulates the (outer, inner) level pairs observed at runtime."""

    def __init__(self) -> None:
        self._pairs: list[tuple[str, str]] = []

    def record(self, outer: str, inner: str) -> None:
        # list.append is atomic under the GIL; duplicates are collapsed
        # by edges().
        self._pairs.append((outer, inner))

    def edges(self) -> frozenset[tuple[str, str]]:
        return frozenset(self._pairs)

    def edge_lines(self) -> tuple[str, ...]:
        """Sorted ``"outer -> inner"`` lines, matching the golden-file
        format of the static graph."""
        return tuple(f"{a} -> {b}" for a, b in sorted(self.edges()))


_tls = threading.local()
_active: WitnessLog | None = None


@contextmanager
def capture() -> Iterator[WitnessLog]:
    """Record lock-order witnesses for the dynamic extent of the block."""
    global _active
    log = WitnessLog()
    _active = log
    try:
        yield log
    finally:
        _active = None


@contextmanager
def witness(level: str) -> Iterator[None]:
    """Note that the calling thread holds lock level ``level``.

    Wrap the critical section *after* the lock is acquired.  While a
    :func:`capture` is active, holding level ``A`` and entering
    ``witness("B")`` records the edge ``A -> B`` (including ``A == B``
    for re-entrant or multi-instance acquisitions).
    """
    log = _active
    if log is None:
        yield
        return
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = []
        _tls.stack = stack
    for outer in stack:
        log.record(outer, level)
    stack.append(level)
    try:
        yield
    finally:
        stack.pop()
