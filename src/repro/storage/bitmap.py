"""Bitmap indexes on fact-table dimension columns.

OLAP backends speed up star-join selections with bitmap indexes (Section
4.2): one bitmap per distinct dimension value, AND/OR-combined into a
result bitmap whose set bits are the qualifying record positions.  The
paper's Figure 14 measures how the *file organization* (random vs chunked)
changes the number of data pages those positions touch.

:class:`BitmapIndex` stores one packed bitmap per distinct value of one
column, laid out on simulated-disk pages so that reading bitmaps costs
(simulated) I/O just like reading data pages does.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import IndexError_
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk

__all__ = ["BitmapIndex"]


class BitmapIndex:
    """One bitmap per distinct value of an integer column.

    Args:
        disk: Disk the bitmap pages live on.
        num_records: Length of every bitmap in bits.
        cardinality: Number of distinct values (``0 .. cardinality - 1``).
        buffer_pool: Optional pool bitmap reads go through.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        num_records: int,
        cardinality: int,
        buffer_pool: BufferPool | None = None,
    ) -> None:
        if num_records < 1:
            raise IndexError_("bitmap index needs at least one record")
        if cardinality < 1:
            raise IndexError_("bitmap index needs at least one value")
        self.disk = disk
        self.buffer_pool = buffer_pool
        self.num_records = num_records
        self.cardinality = cardinality
        self.bytes_per_bitmap = math.ceil(num_records / 8)
        self.pages_per_bitmap = math.ceil(self.bytes_per_bitmap / disk.page_size)
        self._page_ids: list[list[int]] | None = None

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        disk: SimulatedDisk,
        column: np.ndarray,
        cardinality: int,
        buffer_pool: BufferPool | None = None,
    ) -> "BitmapIndex":
        """Build an index from a full column of values in record order."""
        column = np.asarray(column)
        index = cls(disk, len(column), cardinality, buffer_pool)
        page_ids: list[list[int]] = []
        for value in range(cardinality):
            bits = np.packbits(column == value)
            ids = []
            for start in range(0, index.bytes_per_bitmap, disk.page_size):
                page_id = disk.allocate()
                disk.write_page(
                    page_id, bits[start:start + disk.page_size].tobytes()
                )
                ids.append(page_id)
            page_ids.append(ids)
        index._page_ids = page_ids
        return index

    @property
    def num_pages(self) -> int:
        """Total pages occupied by all bitmaps."""
        self._require_built()
        assert self._page_ids is not None
        return sum(len(ids) for ids in self._page_ids)

    def _require_built(self) -> None:
        if self._page_ids is None:
            raise IndexError_("bitmap index has not been built")

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def _read(self, page_id: int) -> bytes:
        if self.buffer_pool is not None:
            return self.buffer_pool.get_page(page_id)
        return self.disk.read_page(page_id)

    def read_bitmap(self, value: int) -> np.ndarray:
        """The boolean bitmap of one value (reads its pages)."""
        self._require_built()
        assert self._page_ids is not None
        if not 0 <= value < self.cardinality:
            raise IndexError_(
                f"value {value} out of range 0..{self.cardinality - 1}"
            )
        raw = b"".join(self._read(pid) for pid in self._page_ids[value])
        packed = np.frombuffer(raw[: self.bytes_per_bitmap], dtype=np.uint8)
        return np.unpackbits(packed)[: self.num_records].astype(bool)

    def select_values(self, values: Iterable[int]) -> np.ndarray:
        """OR of the bitmaps of several values (a range/IN predicate)."""
        result = np.zeros(self.num_records, dtype=bool)
        seen = False
        for value in values:
            result |= self.read_bitmap(value)
            seen = True
        if not seen:
            raise IndexError_("select_values needs at least one value")
        return result

    def select_range(self, lo: int, hi: int) -> np.ndarray:
        """OR of the bitmaps of values in ``[lo, hi)``."""
        if hi <= lo:
            raise IndexError_(f"empty value range [{lo}, {hi})")
        return self.select_values(range(lo, hi))

    @staticmethod
    def positions(mask: np.ndarray) -> np.ndarray:
        """Ascending record positions of the set bits of a result bitmap."""
        return np.flatnonzero(mask)

    def pages_for_selection(self, num_values: int) -> int:
        """Index pages read to evaluate a selection of ``num_values`` values."""
        return num_values * self.pages_per_bitmap


def combine_and(masks: Sequence[np.ndarray]) -> np.ndarray:
    """AND several per-dimension result bitmaps (conjunctive selection)."""
    if not masks:
        raise IndexError_("combine_and needs at least one mask")
    result = masks[0].copy()
    for mask in masks[1:]:
        result &= mask
    return result
