"""Unordered heap files of fixed-length records.

:class:`HeapFile` is the baseline "randomly ordered file" of the paper's
bitmap experiment (Figure 14): records are stored in arrival order with no
clustering.  It shares the :class:`~repro.storage.page.PackedPage` layout
with :class:`~repro.storage.factfile.FactFile` so that the *only* difference
between the two organizations in the experiments is record order — exactly
the variable the paper isolates.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.exceptions import FileFormatError
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.page import PackedPage
from repro.storage.record import RecordFormat

__all__ = ["HeapFile"]


class HeapFile:
    """An append-only unordered file of fixed-length records.

    Args:
        disk: Backing disk (pages are allocated from it).
        record_format: Layout of every record.
        buffer_pool: Optional pool reads go through; when None, reads hit
            the disk directly.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        record_format: RecordFormat,
        buffer_pool: BufferPool | None = None,
    ) -> None:
        self.disk = disk
        self.record_format = record_format
        self.buffer_pool = buffer_pool
        self.codec = PackedPage(record_format, disk.page_size)
        self._page_ids: list[int] = []
        self._num_records = 0
        # Decoded-page cache: pages are immutable after bulk load, so the
        # structured-array image of each page is parsed once.  I/O
        # accounting is unaffected — the raw page is still requested from
        # the buffer pool / disk on every logical access.
        self._decoded: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def num_records(self) -> int:
        """Total records in the file."""
        return self._num_records

    @property
    def num_pages(self) -> int:
        """Pages occupied by the file."""
        return len(self._page_ids)

    @property
    def records_per_page(self) -> int:
        """Page capacity in records (all pages but the last are full)."""
        return self.codec.capacity

    @property
    def page_ids(self) -> tuple[int, ...]:
        """Disk page ids in file order."""
        return tuple(self._page_ids)

    def page_of_record(self, position: int) -> int:
        """File-relative page index holding global record ``position``."""
        if not 0 <= position < self._num_records:
            raise FileFormatError(
                f"record position {position} out of range "
                f"0..{self._num_records - 1}"
            )
        return position // self.codec.capacity

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def bulk_load(self, records: np.ndarray) -> None:
        """Append a structured array of records, filling pages densely."""
        if records.dtype != self.record_format.dtype:
            raise FileFormatError(
                f"array dtype {records.dtype} does not match file format "
                f"{self.record_format.dtype}"
            )
        capacity = self.codec.capacity
        for start in range(0, len(records), capacity):
            batch = records[start:start + capacity]
            page_id = self.disk.allocate()
            self.disk.write_page(page_id, self.codec.encode(batch))
            self._page_ids.append(page_id)
        self._num_records += len(records)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def _read(self, page_id: int) -> bytes:
        if self.buffer_pool is not None:
            return self.buffer_pool.get_page(page_id)
        return self.disk.read_page(page_id)

    def read_file_page(self, index: int) -> np.ndarray:
        """Decode the ``index``-th page of the file.

        The returned array is a shared read-only image; callers must copy
        before mutating.
        """
        if not 0 <= index < len(self._page_ids):
            raise FileFormatError(
                f"file page {index} out of range 0..{len(self._page_ids) - 1}"
            )
        payload = self._read(self._page_ids[index])
        records = self._decoded.get(index)
        if records is None:
            records = self.codec.decode(payload)
            records.flags.writeable = False
            self._decoded[index] = records
        return records

    def scan(self) -> Iterator[np.ndarray]:
        """Full scan, one structured array per page."""
        for index in range(len(self._page_ids)):
            yield self.read_file_page(index)

    def read_all(self) -> np.ndarray:
        """The whole file as one structured array."""
        pages = list(self.scan())
        if not pages:
            return self.record_format.empty()
        return np.concatenate(pages)

    def read_positions(self, positions: np.ndarray) -> np.ndarray:
        """Fetch records by global position (ascending order required).

        Reads each distinct page exactly once — the *skipped sequential
        access* pattern of the paper's fact file.  The number of physical
        I/Os therefore equals the number of distinct pages touched, which
        is the quantity the bitmap experiment measures.
        """
        positions = np.asarray(positions, dtype=np.int64)
        if len(positions) == 0:
            return self.record_format.empty()
        if np.any(positions[1:] < positions[:-1]):
            raise FileFormatError("positions must be sorted ascending")
        if positions[0] < 0 or positions[-1] >= self._num_records:
            raise FileFormatError(
                f"positions out of range 0..{self._num_records - 1}"
            )
        capacity = self.codec.capacity
        page_indexes = positions // capacity
        offsets = positions % capacity
        chunks: list[np.ndarray] = []
        for page_index in np.unique(page_indexes):
            page_records = self.read_file_page(int(page_index))
            mask = page_indexes == page_index
            chunks.append(page_records[offsets[mask]])
        return np.concatenate(chunks)

    def count_pages_for_positions(self, positions: np.ndarray) -> int:
        """Distinct pages a position set would touch, without reading."""
        positions = np.asarray(positions, dtype=np.int64)
        if len(positions) == 0:
            return 0
        return int(len(np.unique(positions // self.codec.capacity)))
