"""Fixed-length record formats with a numpy bridge.

The fact table of a star schema has a rigid layout: one integer foreign key
per dimension plus one numeric column per measure.  :class:`RecordFormat`
describes such a layout once and converts between three representations:

- Python tuples (convenient in tests and examples),
- packed bytes (what pages store), and
- numpy structured arrays (what the aggregation operators consume).

Packing many records is a single ``ndarray.tobytes`` call and unpacking is
a single ``np.frombuffer`` call, so the simulated backend stays fast enough
to run the paper's full 500 000-tuple experiments in pure Python.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import FileFormatError
from repro.schema.star import StarSchema

__all__ = ["RecordFormat", "fact_record_format", "groupby_record_format"]


class RecordFormat:
    """A fixed-length record layout.

    Args:
        fields: ``(name, dtype)`` pairs; dtypes are numpy scalar dtype
            strings such as ``"i4"`` or ``"f8"``.  Field names must be
            unique and non-empty.
    """

    def __init__(self, fields: Sequence[tuple[str, str]]) -> None:
        if not fields:
            raise FileFormatError("a record format needs at least one field")
        names = [name for name, _ in fields]
        if len(set(names)) != len(names) or not all(names):
            raise FileFormatError(f"field names must be unique and non-empty: {names}")
        self.fields: tuple[tuple[str, str], ...] = tuple(fields)
        self.dtype = np.dtype([(name, dt) for name, dt in self.fields])
        self.record_size: int = self.dtype.itemsize

    @property
    def field_names(self) -> tuple[str, ...]:
        """Field names in layout order."""
        return self.dtype.names  # type: ignore[return-value]

    def records_per_page(self, page_size: int, header_size: int = 0) -> int:
        """How many records fit in one page after ``header_size`` bytes."""
        usable = page_size - header_size
        count = usable // self.record_size
        if count < 1:
            raise FileFormatError(
                f"record of {self.record_size} bytes does not fit in a "
                f"{page_size}-byte page with a {header_size}-byte header"
            )
        return count

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def empty(self, count: int = 0) -> np.ndarray:
        """An empty (or zeroed) structured array of this format."""
        return np.zeros(count, dtype=self.dtype)

    def from_tuples(self, rows: Sequence[tuple[object, ...]]) -> np.ndarray:
        """Build a structured array from Python tuples."""
        return np.array([tuple(row) for row in rows], dtype=self.dtype)

    def to_tuples(self, records: np.ndarray) -> list[tuple[object, ...]]:
        """Convert a structured array back to plain Python tuples."""
        return [tuple(rec.item()) for rec in records]

    def pack(self, records: np.ndarray) -> bytes:
        """Serialize a structured array to packed bytes."""
        if records.dtype != self.dtype:
            raise FileFormatError(
                f"array dtype {records.dtype} does not match format "
                f"{self.dtype}"
            )
        return records.tobytes()

    def unpack(self, payload: bytes, count: int | None = None) -> np.ndarray:
        """Deserialize packed bytes into a structured array.

        Args:
            payload: Bytes produced by :meth:`pack`, possibly followed by
                padding.
            count: Number of records to read; defaults to as many whole
                records as the payload holds.
        """
        if count is None:
            count = len(payload) // self.record_size
        needed = count * self.record_size
        if needed > len(payload):
            raise FileFormatError(
                f"payload of {len(payload)} bytes holds fewer than "
                f"{count} records of {self.record_size} bytes"
            )
        array = np.frombuffer(payload[:needed], dtype=self.dtype)
        # Copy so the result does not alias the (immutable) page buffer.
        return array.copy()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RecordFormat) and self.fields == other.fields

    def __hash__(self) -> int:
        return hash(self.fields)

    def __repr__(self) -> str:
        parts = ", ".join(f"{n}:{d}" for n, d in self.fields)
        return f"RecordFormat({parts})"


def fact_record_format(schema: StarSchema, key_dtype: str = "i4") -> RecordFormat:
    """The record format of a schema's base fact table.

    One ``key_dtype`` foreign-key column per dimension (holding the
    leaf-level ordinal) followed by one column per measure.
    """
    fields = [(dim.name, key_dtype) for dim in schema.dimensions]
    fields.extend((m.name, m.dtype) for m in schema.measures)
    return RecordFormat(fields)


def groupby_record_format(
    schema: StarSchema,
    groupby: Sequence[int],
    aggregates: Sequence[tuple[str, str]] | None = None,
    key_dtype: str = "i4",
) -> RecordFormat:
    """The record format of an aggregated (group-by) result.

    One ordinal column per *retained* dimension (level > 0), named after the
    dimension, followed by one column per aggregate output.

    Args:
        schema: The star schema.
        groupby: Level per dimension; level 0 dimensions are dropped.
        aggregates: ``(measure_name, aggregate)`` pairs; defaults to each
            measure with its default aggregate.  Output columns are named
            ``"<agg>_<measure>"``; ``avg`` additionally implies a hidden
            ``count`` column is NOT added here — averages are finalized by
            the aggregation operator (see :mod:`repro.backend.aggregate`).
    """
    groupby = schema.validate_groupby(groupby)
    fields = [
        (dim.name, key_dtype)
        for dim, level in zip(schema.dimensions, groupby)
        if level > 0
    ]
    if aggregates is None:
        aggregates = [(m.name, m.default_aggregate) for m in schema.measures]
    for measure_name, aggregate in aggregates:
        measure = schema.measure(measure_name)
        dtype = "i8" if aggregate == "count" else measure.dtype
        if aggregate == "avg":
            dtype = "f8"
        fields.append((f"{aggregate}_{measure_name}", dtype))
    return RecordFormat(fields)
