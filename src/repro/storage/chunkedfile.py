"""The chunked file organization (Section 4 of the paper).

A chunked file stores relational tuples *clustered by base-level chunk
number*: all tuples of chunk 0 first, then chunk 1, and so on.  A B+-tree
*chunk index* maps each (non-empty) chunk number to its position and length
in the underlying fact file, so one chunk can be fetched with cost
proportional to the chunk's size rather than the table's.

The file keeps both of the paper's interfaces:

- the **relational interface** (:meth:`scan`, :meth:`read_all`) — it is
  still an ordinary table of tuples; and
- the **chunk interface** (:meth:`read_chunk`, :meth:`read_chunks`) — direct
  access to one chunk through the chunk index.

Clustering is achieved at bulk-load time, exactly as in the paper's
PARADISE implementation: tuples are sorted by chunk number and loaded into
a :class:`~repro.storage.factfile.FactFile`, then the B-tree is bulk-built
with one entry per non-empty chunk.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.chunks.grid import ChunkGrid, ChunkSpace
from repro.exceptions import FileFormatError
from repro.storage.btree import BTree
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.factfile import FactFile
from repro.storage.record import RecordFormat

__all__ = ["tuple_chunk_numbers", "ChunkedFile"]


def tuple_chunk_numbers(
    grid: ChunkGrid, records: np.ndarray, field_names: Sequence[str]
) -> np.ndarray:
    """Vectorized chunk number of every record under ``grid``.

    Args:
        grid: The chunk grid the records belong to (dimension levels must
            match the ordinals stored in the records).
        records: Structured array with one ordinal column per dimension.
        field_names: Column name per grid dimension, in grid order.

    Returns:
        ``int64`` array of row-major chunk numbers, one per record.
    """
    if len(field_names) != len(grid.shape):
        raise FileFormatError(
            f"{len(field_names)} field names for a grid of arity "
            f"{len(grid.shape)}"
        )
    numbers = np.zeros(len(records), dtype=np.int64)
    for chunking, level, stride, name in zip(
        grid.chunkings, grid.groupby, grid.strides, field_names
    ):
        if level == 0:
            continue
        starts = np.asarray(chunking.range_starts(level), dtype=np.int64)
        ordinals = records[name].astype(np.int64, copy=False)
        if len(ordinals) and (
            ordinals.min() < 0
            or ordinals.max() >= chunking.dimension.cardinality(level)
        ):
            raise FileFormatError(
                f"ordinals in column {name!r} out of range for level {level}"
            )
        indices = np.searchsorted(starts, ordinals, side="right") - 1
        numbers += indices * stride
    return numbers


class ChunkedFile:
    """A relation clustered by chunk number with a B-tree chunk index.

    Usually holds the base fact table (clustered by the base grid), but
    the paper notes that "even statically precomputed aggregate tables
    can be organized on a chunk basis" — pass ``groupby`` to cluster an
    aggregate table by its own group-by's grid instead.

    Args:
        disk: Backing disk.
        record_format: Record layout — dimension ordinal columns (named
            after the dimensions retained by ``groupby``) plus value
            columns.
        space: Shared chunk geometry.
        buffer_pool: Optional pool all reads (data and index) go through.
        groupby: Level of aggregation the stored rows are at; defaults to
            the base group-by (leaf level everywhere).
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        record_format: RecordFormat,
        space: ChunkSpace,
        buffer_pool: BufferPool | None = None,
        groupby: Sequence[int] | None = None,
    ) -> None:
        self.disk = disk
        self.space = space
        self.record_format = record_format
        self.buffer_pool = buffer_pool
        self.groupby = space.schema.validate_groupby(
            groupby if groupby is not None else space.schema.base_groupby
        )
        self.fact_file = FactFile(disk, record_format, buffer_pool)
        self.chunk_index = BTree(
            disk, value_arity=2, buffer_pool=buffer_pool
        )
        # Shadow copy of the chunk index used by cost *estimators* so they
        # can consult extents without incurring (or rolling back) B-tree
        # I/O; the data path always goes through the real index.
        self._extents: dict[int, tuple[int, int]] = {}
        self._loaded = False

    @property
    def grid(self) -> ChunkGrid:
        """The chunk grid that defines this file's clustering."""
        return self.space.grid(self.groupby)

    @property
    def dimension_fields(self) -> tuple[str, ...]:
        """Record columns holding the dimension ordinals, in grid order."""
        return tuple(dim.name for dim in self.space.schema.dimensions)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def bulk_load(self, records: np.ndarray) -> None:
        """Sort records by chunk number, load them, build the chunk index."""
        if self._loaded:
            raise FileFormatError("chunked file is already loaded")
        if records.dtype != self.record_format.dtype:
            raise FileFormatError(
                f"array dtype {records.dtype} does not match file format "
                f"{self.record_format.dtype}"
            )
        numbers = tuple_chunk_numbers(
            self.grid, records, self.dimension_fields
        )
        order = np.argsort(numbers, kind="stable")
        sorted_records = records[order]
        sorted_numbers = numbers[order]
        self.fact_file.bulk_load(sorted_records)
        # One chunk-index entry per non-empty chunk: (start, count).
        present, starts = np.unique(sorted_numbers, return_index=True)
        counts = np.diff(np.append(starts, len(sorted_numbers)))
        items = [
            (int(number), (int(start), int(count)))
            for number, start, count in zip(present, starts, counts)
        ]
        self.chunk_index.bulk_load(items)
        self._extents = dict(items)
        self._loaded = True

    @property
    def num_records(self) -> int:
        """Total records in the file."""
        return self.fact_file.num_records

    @property
    def num_pages(self) -> int:
        """Data pages (excluding chunk-index pages)."""
        return self.fact_file.num_pages

    @property
    def num_nonempty_chunks(self) -> int:
        """Chunks that hold at least one tuple."""
        return len(self.chunk_index)

    # ------------------------------------------------------------------
    # Chunk interface
    # ------------------------------------------------------------------
    def chunk_extent(self, number: int) -> tuple[int, int] | None:
        """``(start_position, count)`` of a chunk, or None if it is empty.

        Goes through the chunk index, costing (simulated) I/O per node on
        the root-to-leaf path.
        """
        self._require_loaded()
        return self.chunk_index.search(number)

    def chunk_extent_estimate(self, number: int) -> tuple[int, int] | None:
        """Like :meth:`chunk_extent` but free of simulated I/O.

        For cost estimation only — uses the in-memory shadow of the chunk
        index instead of traversing the B-tree.
        """
        self._require_loaded()
        return self._extents.get(number)

    def read_chunk(self, number: int) -> np.ndarray:
        """All tuples of one chunk (empty array for an empty chunk)."""
        extent = self.chunk_extent(number)
        if extent is None:
            return self.record_format.empty()
        start, count = extent
        return self.fact_file.read_range(start, count)

    def read_chunks(self, numbers: Sequence[int]) -> np.ndarray:
        """Tuples of several chunks, concatenated in chunk-number order.

        ``numbers`` must be sorted ascending (the order every chunk
        enumeration in this library produces).  The chunk index is probed
        with one batched traversal and extents that are adjacent in the
        file are merged into single range reads, so boundary pages shared
        by adjacent chunks are read once.
        """
        self._require_loaded()
        if not len(numbers):
            return self.record_format.empty()
        extents = self.chunk_index.search_many(list(numbers))
        if not extents:
            return self.record_format.empty()
        # Extents arrive keyed by chunk number; chunk order == file order,
        # so sorting by start and merging adjacency is safe.
        runs: list[list[int]] = []
        for start, count in sorted(extents.values()):
            if runs and runs[-1][0] + runs[-1][1] == start:
                runs[-1][1] += count
            else:
                runs.append([start, count])
        parts = [
            self.fact_file.read_range(start, count) for start, count in runs
        ]
        return np.concatenate(parts) if parts else self.record_format.empty()

    def touch_chunks(self, numbers: Sequence[int]) -> int:
        """Charge exactly the I/O of :meth:`read_chunks` without decoding.

        Probes the chunk index with the same batched traversal, merges
        adjacent extents into the same runs, and touches each run's
        pages through :meth:`FactFile.touch_range` — so disk counters,
        buffer-pool state and read hooks see the identical page
        sequence :meth:`read_chunks` produces — but never decodes or
        concatenates the records.

        Returns:
            The number of tuples the equivalent :meth:`read_chunks`
            would have returned.
        """
        self._require_loaded()
        if not len(numbers):
            return 0
        extents = self.chunk_index.search_many(list(numbers))
        if not extents:
            return 0
        runs: list[list[int]] = []
        for start, count in sorted(extents.values()):
            if runs and runs[-1][0] + runs[-1][1] == start:
                runs[-1][1] += count
            else:
                runs.append([start, count])
        return sum(
            self.fact_file.touch_range(start, count)
            for start, count in runs
        )

    def pages_for_chunk(self, number: int) -> int:
        """Data pages one chunk spans (0 for an empty chunk)."""
        extent = self.chunk_extent(number)
        if extent is None:
            return 0
        return self.fact_file.pages_for_range(*extent)

    # ------------------------------------------------------------------
    # Relational interface
    # ------------------------------------------------------------------
    def scan(self) -> Iterator[np.ndarray]:
        """Full relational scan, one structured array per page."""
        self._require_loaded()
        return self.fact_file.scan()

    def read_all(self) -> np.ndarray:
        """The whole table as one structured array (chunk order)."""
        self._require_loaded()
        return self.fact_file.read_all()

    def read_positions(self, positions: np.ndarray) -> np.ndarray:
        """Positional fetch (used by bitmap-driven selections)."""
        self._require_loaded()
        return self.fact_file.read_positions(positions)

    def _require_loaded(self) -> None:
        if not self._loaded:
            raise FileFormatError("chunked file has not been loaded")
