"""A simulated disk: page-addressed storage with exact I/O accounting.

The paper's performance results are driven by *which pages get read* (chunk
miss cost proportional to chunk size; multidimensional clustering cutting
bitmap-driven I/O).  :class:`SimulatedDisk` reproduces exactly that: a flat
array of fixed-size pages with counters for every read, write and
allocation.  Experiments measure cost as a function of these counters via
:class:`~repro.analysis.cost.CostModel` instead of wall-clock time, which
makes runs deterministic and hardware-independent (see DESIGN.md §2).

All file types (:mod:`repro.storage.heapfile`, :mod:`repro.storage.factfile`,
:mod:`repro.storage.chunkedfile`) and indexes (:mod:`repro.storage.btree`,
:mod:`repro.storage.bitmap`) allocate their pages from one shared disk, so a
single counter captures the whole backend's I/O.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.exceptions import PageError

__all__ = ["DiskStats", "SimulatedDisk", "IOTracker"]

DEFAULT_PAGE_SIZE = 4096


@dataclass
class DiskStats:
    """Cumulative I/O counters of a :class:`SimulatedDisk`.

    ``fault_latency`` is extra *simulated* seconds charged by an injected
    slow-read fault (see :mod:`repro.faults`); it stays exactly ``0.0``
    unless a fault hook is installed, so fault-free accounting is
    bit-identical with or without the fault layer present.
    """

    reads: int = 0
    writes: int = 0
    allocations: int = 0
    fault_latency: float = 0.0

    def copy(self) -> "DiskStats":
        """An independent snapshot of the counters."""
        return DiskStats(
            self.reads, self.writes, self.allocations, self.fault_latency
        )

    def delta(self, earlier: "DiskStats") -> "DiskStats":
        """Counter increments since an ``earlier`` snapshot."""
        return DiskStats(
            reads=self.reads - earlier.reads,
            writes=self.writes - earlier.writes,
            allocations=self.allocations - earlier.allocations,
            fault_latency=self.fault_latency - earlier.fault_latency,
        )


class SimulatedDisk:
    """Fixed-size pages addressed by integer page id.

    Args:
        page_size: Bytes per page (default 4096).

    Pages are allocated in order and never freed (the experiments build
    files once and then only read).  Reading an unwritten page returns a
    zero-filled page, like a freshly formatted device.
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if page_size < 64:
            raise PageError(f"page size must be >= 64 bytes, got {page_size}")
        self.page_size = page_size
        self._pages: list[bytes | None] = []
        self.stats = DiskStats()
        # Fault-injection hooks (repro.faults installs them; production
        # code never does).  Called before a read/write is counted; may
        # raise a DiskFault, or return extra simulated latency in seconds.
        self.read_hook: Callable[[int], float] | None = None
        self.write_hook: Callable[[int], float] | None = None

    @property
    def num_pages(self) -> int:
        """Number of allocated pages."""
        return len(self._pages)

    def allocate(self, count: int = 1) -> int:
        """Allocate ``count`` consecutive pages; returns the first page id."""
        if count < 1:
            raise PageError(f"cannot allocate {count} pages")
        first = len(self._pages)
        self._pages.extend([None] * count)
        self.stats.allocations += count
        return first

    def read_page(self, page_id: int) -> bytes:
        """Read one page (counted as one I/O).

        An installed ``read_hook`` runs first: a hook that raises aborts
        the read before any counter moves (a faulted read served no
        page); a hook that returns a positive latency charges that many
        simulated seconds to ``stats.fault_latency`` on top of the
        normal read count.
        """
        self._check(page_id)
        extra = 0.0
        if self.read_hook is not None:
            extra = self.read_hook(page_id)
        self.stats.reads += 1
        if extra > 0.0:
            self.stats.fault_latency += extra
        data = self._pages[page_id]
        if data is None:
            return bytes(self.page_size)
        return data

    def write_page(self, page_id: int, data: bytes) -> None:
        """Write one page (counted as one I/O).

        ``data`` may be shorter than the page size (it is implicitly
        zero-padded) but never longer.

        An installed ``write_hook`` runs first, symmetric with
        ``read_hook``: a hook that raises aborts the write before any
        counter moves and before the page content changes (a faulted
        write stored nothing); a hook that returns a positive latency
        charges that many simulated seconds to ``stats.fault_latency``
        on top of the normal write count.
        """
        self._check(page_id)
        if len(data) > self.page_size:
            raise PageError(
                f"payload of {len(data)} bytes exceeds page size "
                f"{self.page_size}"
            )
        extra = 0.0
        if self.write_hook is not None:
            extra = self.write_hook(page_id)
        self.stats.writes += 1
        if extra > 0.0:
            self.stats.fault_latency += extra
        self._pages[page_id] = bytes(data)

    def reset_stats(self) -> None:
        """Zero all I/O counters (allocation history is kept)."""
        self.stats = DiskStats()

    def _check(self, page_id: int) -> None:
        if not 0 <= page_id < len(self._pages):
            raise PageError(
                f"page id {page_id} out of range 0..{len(self._pages) - 1}"
            )


class IOTracker:
    """Context manager measuring disk I/O across a code block.

    Example:
        >>> disk = SimulatedDisk()
        >>> disk.allocate(1)
        0
        >>> with IOTracker(disk) as io:
        ...     _ = disk.read_page(0)
        >>> io.reads
        1
    """

    def __init__(self, disk: SimulatedDisk) -> None:
        self._disk = disk
        self._before: DiskStats | None = None
        self.reads = 0
        self.writes = 0
        self.allocations = 0

    def __enter__(self) -> "IOTracker":
        self._before = self._disk.stats.copy()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._before is not None
        delta = self._disk.stats.delta(self._before)
        self.reads = delta.reads
        self.writes = delta.writes
        self.allocations = delta.allocations
