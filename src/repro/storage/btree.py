"""A page-based B+-tree over the simulated disk.

The paper's chunked file uses a B-tree as its *chunk index*: one entry per
chunk mapping the chunk number to the chunk's position in the fact file
(Section 5.3).  This module implements a genuine B+-tree whose nodes are
disk pages, so index traversals cost real (simulated) I/O:

- integer keys, fixed-arity integer tuple values;
- bottom-up **bulk load** from sorted items (how chunk indexes are built);
- **search**, **range scan** over linked leaves, and **insert** with node
  splits (the "extra space for updates" the paper mentions).

Node layout (little endian)::

    header:  [is_leaf: u8] [count: u16] [next_leaf: i64]
    leaf:    [keys: i64 x count] [values: i64 x count*arity]
    internal:[keys: i64 x count] [children: i64 x (count+1)]
"""

from __future__ import annotations

import struct
from bisect import bisect_left, bisect_right
from typing import Iterator, Sequence

import numpy as np

from repro.exceptions import IndexError_
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk

__all__ = ["BTree"]

_HEADER = struct.Struct("<BHq")
_INT = struct.Struct("<q")


class _Node:
    """In-memory image of one B+-tree page."""

    __slots__ = ("page_id", "is_leaf", "keys", "values", "children", "next_leaf")

    def __init__(self, page_id: int, is_leaf: bool) -> None:
        self.page_id = page_id
        self.is_leaf = is_leaf
        self.keys: list[int] = []
        self.values: list[tuple[int, ...]] = []  # leaves only
        self.children: list[int] = []  # internal only
        self.next_leaf = -1


class BTree:
    """A B+-tree index from integer keys to fixed-arity integer tuples.

    Args:
        disk: Backing disk for node pages.
        value_arity: Number of i64 components per value (chunk indexes use
            2: start position and record count).
        buffer_pool: Optional pool node reads go through.
        fill_factor: Target node occupancy for bulk load, in ``(0, 1]``.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        value_arity: int = 2,
        buffer_pool: BufferPool | None = None,
        fill_factor: float = 1.0,
    ) -> None:
        if value_arity < 1:
            raise IndexError_(f"value arity must be >= 1, got {value_arity}")
        if not 0 < fill_factor <= 1:
            raise IndexError_(f"fill factor must be in (0, 1], got {fill_factor}")
        self.disk = disk
        self.buffer_pool = buffer_pool
        self.value_arity = value_arity
        self.fill_factor = fill_factor
        body = disk.page_size - _HEADER.size
        self.leaf_capacity = body // (8 + 8 * value_arity)
        self.internal_capacity = (body - 8) // 16  # k keys + (k+1) children
        if self.leaf_capacity < 2 or self.internal_capacity < 2:
            raise IndexError_(
                f"page size {disk.page_size} too small for a B-tree node"
            )
        self._root_id = -1
        self._height = 0
        self._num_keys = 0
        # Decoded-node cache: avoids re-parsing a page's payload on every
        # traversal.  I/O accounting is unaffected — the page is still
        # requested from the buffer pool / disk before the cache is
        # consulted — and writes refresh the cached image.
        self._decoded: dict[int, _Node] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._num_keys

    @property
    def height(self) -> int:
        """Number of levels (0 for an empty tree, 1 for a lone leaf)."""
        return self._height

    @property
    def root_page_id(self) -> int:
        """Disk page id of the root node (-1 when empty)."""
        return self._root_id

    # ------------------------------------------------------------------
    # Node I/O
    # ------------------------------------------------------------------
    def _read_node(self, page_id: int) -> _Node:
        # The page is always fetched first so the buffer pool and disk
        # counters see every logical node access; only the *parsing* is
        # cached.
        if self.buffer_pool is not None:
            payload = self.buffer_pool.get_page(page_id)
        else:
            payload = self.disk.read_page(page_id)
        cached = self._decoded.get(page_id)
        if cached is not None:
            return cached
        node = self._decode_node(page_id, payload)
        self._decoded[page_id] = node
        return node

    def _decode_node(self, page_id: int, payload: bytes) -> _Node:
        is_leaf, count, next_leaf = _HEADER.unpack_from(payload)
        node = _Node(page_id, bool(is_leaf))
        node.next_leaf = next_leaf
        offset = _HEADER.size
        node.keys = np.frombuffer(
            payload, dtype="<i8", count=count, offset=offset
        ).tolist()
        offset += 8 * count
        if node.is_leaf:
            flat = np.frombuffer(
                payload,
                dtype="<i8",
                count=count * self.value_arity,
                offset=offset,
            )
            node.values = [
                tuple(row)
                for row in flat.reshape(count, self.value_arity).tolist()
            ]
        else:
            node.children = np.frombuffer(
                payload, dtype="<i8", count=count + 1, offset=offset
            ).tolist()
        return node

    def _write_node(self, node: _Node) -> None:
        parts = [_HEADER.pack(int(node.is_leaf), len(node.keys), node.next_leaf)]
        parts.extend(_INT.pack(key) for key in node.keys)
        if node.is_leaf:
            for value in node.values:
                parts.extend(_INT.pack(component) for component in value)
        else:
            parts.extend(_INT.pack(child) for child in node.children)
        payload = b"".join(parts)
        if self.buffer_pool is not None:
            self.buffer_pool.put_page(node.page_id, payload)
        else:
            self.disk.write_page(node.page_id, payload)
        self._decoded[node.page_id] = node

    def _new_node(self, is_leaf: bool) -> _Node:
        return _Node(self.disk.allocate(), is_leaf)

    # ------------------------------------------------------------------
    # Bulk load
    # ------------------------------------------------------------------
    def bulk_load(self, items: Sequence[tuple[int, tuple[int, ...]]]) -> None:
        """Build the tree bottom-up from sorted, unique ``(key, value)`` pairs.

        Raises:
            IndexError_: If the tree is non-empty, items are unsorted or
                contain duplicates, or a value has the wrong arity.
        """
        if self._root_id != -1:
            raise IndexError_("bulk_load requires an empty tree")
        items = list(items)
        if not items:
            return
        for (k1, _), (k2, _) in zip(items, items[1:]):
            if k2 <= k1:
                raise IndexError_(
                    f"bulk_load keys must be strictly increasing "
                    f"({k1} then {k2})"
                )
        for _, value in items:
            if len(value) != self.value_arity:
                raise IndexError_(
                    f"value {value} has arity {len(value)}, "
                    f"expected {self.value_arity}"
                )
        per_leaf = max(2, int(self.leaf_capacity * self.fill_factor))
        leaves: list[_Node] = []
        for start in range(0, len(items), per_leaf):
            node = self._new_node(is_leaf=True)
            for key, value in items[start:start + per_leaf]:
                node.keys.append(key)
                node.values.append(tuple(value))
            leaves.append(node)
        for node, nxt in zip(leaves, leaves[1:]):
            node.next_leaf = nxt.page_id
        for node in leaves:
            self._write_node(node)

        level = leaves
        self._height = 1
        per_internal = max(2, int(self.internal_capacity * self.fill_factor))
        while len(level) > 1:
            parents: list[_Node] = []
            for start in range(0, len(level), per_internal + 1):
                group = level[start:start + per_internal + 1]
                parent = self._new_node(is_leaf=False)
                parent.children = [child.page_id for child in group]
                parent.keys = [self._subtree_min(child) for child in group[1:]]
                self._write_node(parent)
                parents.append(parent)
            # Degenerate tail: a parent with a single child is legal here
            # (keys empty); searches just pass through it.
            level = parents
            self._height += 1
        self._root_id = level[0].page_id
        self._num_keys = len(items)

    def _subtree_min(self, node: _Node) -> int:
        while not node.is_leaf:
            node = self._read_node(node.children[0])
        return node.keys[0]

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(self, key: int) -> tuple[int, ...] | None:
        """Value stored under ``key``, or None."""
        if self._root_id == -1:
            return None
        node = self._read_node(self._root_id)
        while not node.is_leaf:
            node = self._read_node(node.children[bisect_right(node.keys, key)])
        pos = bisect_left(node.keys, key)
        if pos < len(node.keys) and node.keys[pos] == key:
            return node.values[pos]
        return None

    def __contains__(self, key: int) -> bool:
        return self.search(key) is not None

    def search_many(
        self, keys: Sequence[int]
    ) -> dict[int, tuple[int, ...]]:
        """Look up many sorted keys with one leaf visit per distinct leaf.

        Equivalent to ``{k: v for k in keys if (v := search(k))}`` but
        descends once for the first key and then follows the leaf chain,
        so a batch touching ``m`` leaves costs ``height + m - 1`` node
        reads instead of ``height * len(keys)``.

        Raises:
            IndexError_: If ``keys`` is not sorted ascending.
        """
        result: dict[int, tuple[int, ...]] = {}
        if self._root_id == -1 or not keys:
            return result
        previous = None
        node: _Node | None = None
        for key in keys:
            if previous is not None and key < previous:
                raise IndexError_("search_many keys must be sorted ascending")
            previous = key
            if node is None or (node.keys and key > node.keys[-1]):
                node = self._descend_to_leaf(key, node)
                if node is None:
                    return result
            pos = bisect_left(node.keys, key)
            if pos < len(node.keys) and node.keys[pos] == key:
                result[key] = node.values[pos]
        return result

    def _descend_to_leaf(self, key: int, start: "_Node | None") -> "_Node | None":
        """Leaf that may hold ``key``: follow the chain from ``start`` if
        close, else descend from the root."""
        if start is not None and start.next_leaf != -1:
            # Peek one leaf ahead before paying a full root descent.
            nxt = self._read_node(start.next_leaf)
            if nxt.keys and key <= nxt.keys[-1]:
                return nxt
        node = self._read_node(self._root_id)
        while not node.is_leaf:
            node = self._read_node(node.children[bisect_right(node.keys, key)])
        while node.keys and key > node.keys[-1] and node.next_leaf != -1:
            node = self._read_node(node.next_leaf)
        return node

    def range_scan(
        self, lo: int, hi: int
    ) -> Iterator[tuple[int, tuple[int, ...]]]:
        """All ``(key, value)`` pairs with ``lo <= key < hi``, ascending."""
        if self._root_id == -1 or hi <= lo:
            return
        node = self._read_node(self._root_id)
        while not node.is_leaf:
            node = self._read_node(node.children[bisect_right(node.keys, lo)])
        while True:
            for pos in range(bisect_left(node.keys, lo), len(node.keys)):
                if node.keys[pos] >= hi:
                    return
                yield node.keys[pos], node.values[pos]
            if node.next_leaf == -1:
                return
            node = self._read_node(node.next_leaf)
            lo = node.keys[0] if node.keys else lo

    def items(self) -> Iterator[tuple[int, tuple[int, ...]]]:
        """All entries in key order."""
        if self._root_id == -1:
            return
        yield from self.range_scan(self._leftmost_key(), 2**62)

    def _leftmost_key(self) -> int:
        node = self._read_node(self._root_id)
        while not node.is_leaf:
            node = self._read_node(node.children[0])
        return node.keys[0]

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------
    def insert(self, key: int, value: tuple[int, ...]) -> None:
        """Insert or overwrite one entry, splitting full nodes as needed."""
        if len(value) != self.value_arity:
            raise IndexError_(
                f"value {value} has arity {len(value)}, "
                f"expected {self.value_arity}"
            )
        value = tuple(value)
        if self._root_id == -1:
            root = self._new_node(is_leaf=True)
            root.keys.append(key)
            root.values.append(value)
            self._write_node(root)
            self._root_id = root.page_id
            self._height = 1
            self._num_keys = 1
            return
        split = self._insert_into(self._read_node(self._root_id), key, value)
        if split is not None:
            separator, right_id = split
            new_root = self._new_node(is_leaf=False)
            new_root.children = [self._root_id, right_id]
            new_root.keys = [separator]
            self._write_node(new_root)
            self._root_id = new_root.page_id
            self._height += 1

    def _insert_into(
        self, node: _Node, key: int, value: tuple[int, ...]
    ) -> tuple[int, int] | None:
        """Insert under ``node``; returns ``(separator, new_page)`` on split."""
        if node.is_leaf:
            pos = bisect_left(node.keys, key)
            if pos < len(node.keys) and node.keys[pos] == key:
                node.values[pos] = value  # overwrite
                self._write_node(node)
                return None
            node.keys.insert(pos, key)
            node.values.insert(pos, value)
            self._num_keys += 1
            if len(node.keys) <= self.leaf_capacity:
                self._write_node(node)
                return None
            return self._split_leaf(node)
        pos = bisect_right(node.keys, key)
        child = self._read_node(node.children[pos])
        split = self._insert_into(child, key, value)
        if split is None:
            return None
        separator, right_id = split
        node.keys.insert(pos, separator)
        node.children.insert(pos + 1, right_id)
        if len(node.keys) <= self.internal_capacity:
            self._write_node(node)
            return None
        return self._split_internal(node)

    def _split_leaf(self, node: _Node) -> tuple[int, int]:
        mid = len(node.keys) // 2
        right = self._new_node(is_leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        right.next_leaf = node.next_leaf
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        node.next_leaf = right.page_id
        self._write_node(right)
        self._write_node(node)
        return right.keys[0], right.page_id

    def _split_internal(self, node: _Node) -> tuple[int, int]:
        mid = len(node.keys) // 2
        separator = node.keys[mid]
        right = self._new_node(is_leaf=False)
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        self._write_node(right)
        self._write_node(node)
        return separator, right.page_id
