"""Simulated relational storage engine (the paper's PARADISE substitute).

Page-addressed disk with exact I/O accounting, buffer pool, heap/fact
files, B+-tree, bitmap indexes, and the paper's chunked file organization.
See DESIGN.md §2 for the substitution rationale.
"""

from repro.storage.bitmap import BitmapIndex, combine_and
from repro.storage.btree import BTree
from repro.storage.buffer import BufferPool, BufferPoolStats
from repro.storage.chunkedfile import ChunkedFile, tuple_chunk_numbers
from repro.storage.chunklog import (
    CHUNKLOG_MAGIC,
    CHUNKLOG_VERSION,
    ChunkLog,
    ChunkLogStats,
    LogRecovery,
)
from repro.storage.dimtable import DimensionTable
from repro.storage.disk import DiskStats, IOTracker, SimulatedDisk
from repro.storage.factfile import FactFile
from repro.storage.heapfile import HeapFile
from repro.storage.page import PackedPage, SlottedPage
from repro.storage.record import (
    RecordFormat,
    fact_record_format,
    groupby_record_format,
)

__all__ = [
    "SimulatedDisk",
    "DiskStats",
    "IOTracker",
    "BufferPool",
    "BufferPoolStats",
    "PackedPage",
    "SlottedPage",
    "RecordFormat",
    "fact_record_format",
    "groupby_record_format",
    "HeapFile",
    "DimensionTable",
    "FactFile",
    "BTree",
    "BitmapIndex",
    "combine_and",
    "ChunkedFile",
    "tuple_chunk_numbers",
    "ChunkLog",
    "ChunkLogStats",
    "LogRecovery",
    "CHUNKLOG_MAGIC",
    "CHUNKLOG_VERSION",
]
