"""The L2 backend contract: what a persistent cache tier must provide.

PR 8 delivered the persistent tier as one concrete store — a
:class:`~repro.storage.chunklog.ChunkLog` hard-wired under
:class:`~repro.core.tiered.TieredChunkCache`.  This module turns that
tier boundary into a *contract*: :class:`L2Backend` is the structural
protocol any durable record store must satisfy to slot in behind the
tiered cache, and ``tests/storage/l2_contract.py`` is the executable
half of the contract — a conformance battery every current and future
backend must pass (see ``docs/TIERING.md`` §Backends).

Two implementations ship in-tree:

- :class:`~repro.storage.chunklog.ChunkLog` — the checksummed
  append-only log (compactable; the default);
- :class:`~repro.storage.sqlitelog.SqliteBackend` — the same records
  in a stdlib :mod:`sqlite3` table (updates in place, no dead space).

The accounting rules every backend must obey:

- **One private accounting disk.**  All backend I/O is charged through
  the backend's own :class:`~repro.storage.disk.SimulatedDisk` at
  ``ceil(record_len / page_size)`` pages per logical record, where
  ``record_len`` is the canonical framed size
  (:func:`record_length`) — *not* the store's physical layout.  Two
  backends holding the same records therefore charge identical page
  counts, so swapping the backend never perturbs the deterministic
  economics the chaos digests pin.
- **Exact conservation.**  The backend's logical page counters must
  reconcile with the accounting disk to the page, even across faulted
  partial operations — :func:`check_l2_conservation` states the
  identity once for every implementation::

      disk.writes == append + tombstone + clear + compact_write pages
      disk.reads  == read + scan + compact_read pages

- **Fault points.**  ``write_hook`` / ``read_hook`` run before each
  page transfer is counted and may raise
  :class:`~repro.exceptions.DiskFault` (aborting the operation;
  already-charged pages stay charged); ``torn_hook`` may corrupt one
  put's stored bytes while the stored CRC still covers the originals,
  so the corruption is *detected* at the next read.  Backends never
  install hooks themselves (reprolint R006).

Construction of any backend is confined to the :mod:`repro.api`
facade and the defining modules (reprolint R011) — backends own
single-writer durable state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, runtime_checkable

from repro.exceptions import InvariantViolation
from repro.storage.disk import SimulatedDisk

__all__ = [
    "L2Backend",
    "L2Recovery",
    "L2Stats",
    "check_l2_conservation",
    "record_length",
    "RECORD_OVERHEAD",
    "TOKEN_OVERHEAD",
]

#: Fixed framing bytes of one canonical record: type (u8) + token_len
#: (u16) + payload_len (u32) + benefit (f64) + crc32 (u32).  Both
#: backends charge pages for this frame plus token plus payload, so
#: their page economics are identical by construction.
RECORD_OVERHEAD = 19

#: Canonical framed size of a token-only record (tombstone, clear).
TOKEN_OVERHEAD = RECORD_OVERHEAD


def record_length(token: str, payload: bytes = b"") -> int:
    """Canonical framed byte length of one record.

    The charging currency shared by every backend: pages per operation
    are ``ceil(record_length(...) / page_size)`` regardless of how the
    store physically lays the record out.
    """
    return RECORD_OVERHEAD + len(token.encode("utf-8")) + len(payload)


@dataclass
class L2Stats:
    """Cumulative logical counters of one L2 backend.

    Page counters count *successful* page transfers only, one per
    accounting-disk page actually charged — so they reconcile exactly
    with the disk even when a fault hook aborts an operation partway
    through a multi-page record (see :func:`check_l2_conservation`).
    """

    appends: int = 0
    append_pages: int = 0
    reads: int = 0
    read_pages: int = 0
    tombstones: int = 0
    tombstone_pages: int = 0
    clears: int = 0
    clear_pages: int = 0
    scan_records: int = 0
    scan_pages: int = 0
    crc_failures: int = 0
    torn_writes: int = 0
    compactions: int = 0
    compact_read_pages: int = 0
    compact_write_pages: int = 0
    reclaimed_pages: int = 0


@dataclass(frozen=True)
class L2Recovery:
    """What a backend found (and discarded) while opening.

    Attributes:
        records: Well-framed records replayed from durable state.
        live_entries: Tokens live in the manifest after replay.
        truncated_bytes: Tail bytes discarded as torn/unframeable
            (always ``0`` for transactional stores).
        header_reset: Durable state was unreadable and the backend
            reset itself to a fresh empty store.
    """

    records: int = 0
    live_entries: int = 0
    truncated_bytes: int = 0
    header_reset: bool = False


@runtime_checkable
class L2Backend(Protocol):
    """Structural contract of a persistent cache tier.

    Semantics every implementation must honor (the conformance kit in
    ``tests/storage/l2_contract.py`` executes these):

    - :meth:`put` stores ``payload`` under ``token`` durably,
      last-write-wins, and returns the pages charged; a
      :class:`~repro.exceptions.DiskFault` from ``write_hook`` aborts
      the put with the manifest unchanged (charged pages stay charged).
    - :meth:`get` is a charged, CRC-verified read of a live token;
      :meth:`peek` is the uncharged, hook-free variant.  Corrupt bytes
      raise :class:`~repro.exceptions.ChunkLogCorruption`, a token
      that is not live :class:`~repro.exceptions.ChunkLogError`.
    - :meth:`delete` durably drops a live token (charged);
      :meth:`drop` removes it from the in-memory manifest only
      (quarantine).  :meth:`clear` durably drops everything.
    - :meth:`scan_keys` lists live ``(token, benefit, payload_len)``
      in (re-)insertion order — deterministic.
    - :meth:`reopen` simulates a restart: in-memory state is rebuilt
      from durable state alone (charging one scan read per record
      page) and the backend is usable again even after :meth:`close`.
    - :meth:`compact` reclaims dead space where the layout produces
      any; stores that update in place return ``0``.  After a
      successful compaction ``counters()["dead_pages"] == 0``.
    - :meth:`counters` reports the space gauges the tiered cache
      surfaces per tier: ``live_pages``, ``dead_pages``,
      ``compactions``, ``reclaimed_pages``.
    """

    path: str | None
    disk: SimulatedDisk
    stats: L2Stats
    recovery: L2Recovery
    torn_hook: Callable[[str], bool] | None
    compact_hook: Callable[[int], bool] | None

    @property
    def write_hook(self) -> Callable[[int], float] | None: ...

    @write_hook.setter
    def write_hook(self, hook: Callable[[int], float] | None) -> None: ...

    @property
    def read_hook(self) -> Callable[[int], float] | None: ...

    @read_hook.setter
    def read_hook(self, hook: Callable[[int], float] | None) -> None: ...

    def put(self, token: str, payload: bytes, benefit: float) -> int: ...

    def get(self, token: str) -> bytes: ...

    def peek(self, token: str) -> bytes: ...

    def delete(self, token: str) -> bool: ...

    def drop(self, token: str) -> bool: ...

    def clear(self) -> int: ...

    def scan_keys(self) -> tuple[tuple[str, float, int], ...]: ...

    def tokens(self) -> tuple[str, ...]: ...

    def benefit(self, token: str) -> float: ...

    def pages_for(self, token: str) -> int: ...

    def reopen(self) -> L2Recovery: ...

    def compact(self) -> int: ...

    def counters(self) -> dict[str, int]: ...

    def close(self) -> None: ...

    def __contains__(self, token: str) -> bool: ...

    def __len__(self) -> int: ...

    @property
    def live_bytes(self) -> int: ...


def check_l2_conservation(backend: L2Backend) -> None:
    """Exact page reconciliation between a backend and its disk.

    The one conservation identity every backend must satisfy at every
    quiescent point — spills, promotions, tombstones, restart scans
    and compactions account for every page, including pages charged by
    operations a fault later aborted.
    """
    stats = backend.stats
    disk = backend.disk.stats
    written = (
        stats.append_pages
        + stats.tombstone_pages
        + stats.clear_pages
        + stats.compact_write_pages
    )
    if written != disk.writes:
        raise InvariantViolation(
            f"L2 write pages diverged: ops account for {written} pages, "
            f"disk counted {disk.writes}"
        )
    read = stats.read_pages + stats.scan_pages + stats.compact_read_pages
    if read != disk.reads:
        raise InvariantViolation(
            f"L2 read pages diverged: ops account for {read} pages, "
            f"disk counted {disk.reads}"
        )
