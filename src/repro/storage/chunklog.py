"""Persistent, checksummed append-only chunk log (the L2 cache tier).

:class:`ChunkLog` is the durable half of the two-tier chunk cache
(``docs/TIERING.md``).  It stores opaque ``(token, benefit, payload)``
records in an append-only file and charges every record read and write
through a private :class:`~repro.storage.disk.SimulatedDisk`, so L2
traffic lands in the same page-accounting currency as the backend's
I/O — spills and promotions have an exact, deterministic page cost.

The module is deliberately *key-agnostic*: tokens are caller-chosen
strings and payloads are caller-encoded bytes.  Encoding a
``CachedChunk`` into a record (and back) is the job of
:mod:`repro.core.tiered` — the storage layer sits below the caching
layers (R001) and must stay reusable without them.

On-disk format v1 (little-endian throughout)::

    header   : magic b"RCLG" | version u16 | page_size u32 | 6 pad bytes
    record   : type u8 | token_len u16 | payload_len u32 | benefit f64
               | crc32 u32 | token bytes | payload bytes
    type     : 1 = put, 2 = tombstone, 3 = clear-all

The CRC-32 covers the record's fixed fields (minus the CRC itself),
the token and the payload.  Each record occupies
``ceil(record_len / page_size)`` freshly allocated pages on the
accounting disk; the backing file is flushed after every append so a
kill leaves at worst one torn tail record.

Recovery policy on open (see ``docs/TIERING.md`` §restart):

- a clean log replays fully (puts last-win, tombstones and clears
  apply in order), charging one scan read per record page;
- a truncated or unframeable tail is discarded — the file is cut back
  to the last well-framed record and the valid prefix survives;
- a corrupt header (wrong magic / garbage) resets the file to a fresh
  empty log: the persist path is cache-owned state, so degrading to a
  cold start beats refusing to serve;
- a *newer* format version raises :class:`~repro.exceptions.ChunkLogError`
  — format drift must fail loudly, never reinterpret bytes.

Record CRCs are verified at :meth:`ChunkLog.read` time, not during the
scan: a torn record with valid framing survives restart in the
manifest and is quarantined on first access, exactly like in the
original process (``tests/integration/test_restart.py`` pins this).
"""

from __future__ import annotations

import io
import os
import struct
import threading
from dataclasses import dataclass
from typing import Callable
from zlib import crc32

from repro.exceptions import ChunkLogCorruption, ChunkLogError
from repro.lockorder import witness
from repro.storage.disk import DEFAULT_PAGE_SIZE, SimulatedDisk

__all__ = [
    "CHUNKLOG_MAGIC",
    "CHUNKLOG_VERSION",
    "ChunkLog",
    "ChunkLogStats",
    "LogRecovery",
]

CHUNKLOG_MAGIC = b"RCLG"
CHUNKLOG_VERSION = 1

_HEADER = struct.Struct("<4sHI6x")  # magic, version, page_size
_PREFIX = struct.Struct("<BHIdI")  # type, token_len, payload_len, benefit, crc
_CRC_FIELDS = struct.Struct("<BHId")  # prefix minus the crc itself

_PUT = 1
_TOMBSTONE = 2
_CLEAR = 3
_RECORD_TYPES = frozenset({_PUT, _TOMBSTONE, _CLEAR})


@dataclass
class ChunkLogStats:
    """Cumulative logical counters of one :class:`ChunkLog`.

    Page counters count *successful* page transfers only, one per
    :class:`SimulatedDisk` page actually charged — so they reconcile
    exactly with the accounting disk even when a fault hook aborts an
    operation partway through a multi-page record::

        disk.stats.writes == append_pages + tombstone_pages + clear_pages
        disk.stats.reads  == read_pages + scan_pages
    """

    appends: int = 0
    append_pages: int = 0
    reads: int = 0
    read_pages: int = 0
    tombstones: int = 0
    tombstone_pages: int = 0
    clears: int = 0
    clear_pages: int = 0
    scan_records: int = 0
    scan_pages: int = 0
    crc_failures: int = 0
    torn_writes: int = 0


@dataclass(frozen=True)
class LogRecovery:
    """What :class:`ChunkLog` found (and discarded) while opening.

    Attributes:
        records: Well-framed records replayed from the existing file.
        live_entries: Tokens live in the manifest after replay.
        truncated_bytes: Tail bytes discarded as torn/unframeable.
        header_reset: The file had a corrupt header and was reset to a
            fresh empty log.
    """

    records: int = 0
    live_entries: int = 0
    truncated_bytes: int = 0
    header_reset: bool = False


@dataclass(frozen=True)
class _Extent:
    """Location of one live record: file offset plus its page run."""

    offset: int
    length: int
    payload_len: int
    benefit: float
    page_start: int
    pages: int


class ChunkLog:
    """File-backed, page-accounted append-only record store.

    Args:
        path: Backing file.  ``None`` keeps the log purely in memory
            (same accounting, no durability) — used by tests and by
            2-tier stacks that want spill/promote economics without a
            persist path.
        page_size: Page size of the private accounting disk.

    Thread safety: every public operation holds the log's single
    internal lock (runtime witness level ``"chunklog"``).  The lock is
    a leaf in the documented order — ``shard -> chunklog`` and
    ``tiered -> chunklog`` edges are pinned in
    ``tests/tools/lockorder.txt``; no code path acquires another lock
    while holding it.
    """

    def __init__(
        self, path: str | None = None, page_size: int = DEFAULT_PAGE_SIZE
    ) -> None:
        self.path = path
        self.disk = SimulatedDisk(page_size=page_size)
        self.stats = ChunkLogStats()
        self._lock = threading.Lock()
        self._manifest: dict[str, _Extent] = {}
        self._closed = False
        # Fault-injection hook (repro.faults installs it): consulted per
        # put-append with the record token; returning True tears the
        # stored payload while the CRC still covers the original bytes.
        self.torn_hook: Callable[[str], bool] | None = None
        existing = b""
        if path is not None and os.path.exists(path):
            with open(path, "rb") as handle:
                existing = handle.read()
        # No lock here: the object is not published until __init__
        # returns, so construction has exclusive access by definition.
        self.recovery = self._replay(existing)
        self._buf = bytearray(existing[: self._logical_end])
        if not self._buf:
            self._buf = bytearray(
                _HEADER.pack(CHUNKLOG_MAGIC, CHUNKLOG_VERSION, page_size)
            )
        self._file: io.BufferedRandom | None = None
        if path is not None:
            self._file = open(path, "w+b")
            self._file.write(bytes(self._buf))
            self._file.flush()

    # ------------------------------------------------------------------
    # Open/replay

    def _replay(self, existing: bytes) -> LogRecovery:
        """Rebuild the manifest from existing bytes; charge scan reads."""
        self._logical_end = 0
        if not existing:
            return LogRecovery()
        if len(existing) < _HEADER.size:
            return LogRecovery(
                truncated_bytes=len(existing), header_reset=True
            )
        magic, version, page_size = _HEADER.unpack_from(existing, 0)
        if magic != CHUNKLOG_MAGIC:
            return LogRecovery(
                truncated_bytes=len(existing), header_reset=True
            )
        if version != CHUNKLOG_VERSION:
            raise ChunkLogError(
                f"chunk log format v{version} is not supported "
                f"(this build reads v{CHUNKLOG_VERSION}); refusing to "
                "reinterpret the file"
            )
        if page_size != self.disk.page_size:
            raise ChunkLogError(
                f"chunk log was written with page_size={page_size}, "
                f"opened with page_size={self.disk.page_size}"
            )
        offset = _HEADER.size
        records = 0
        size = len(existing)
        while True:
            if offset + _PREFIX.size > size:
                break  # clean end or torn prefix
            rtype, token_len, payload_len, benefit, _crc = (
                _PREFIX.unpack_from(existing, offset)
            )
            if rtype not in _RECORD_TYPES:
                break  # unframeable: corrupt tail starts here
            end = offset + _PREFIX.size + token_len + payload_len
            if end > size:
                break  # torn record
            token_bytes = existing[
                offset + _PREFIX.size : offset + _PREFIX.size + token_len
            ]
            try:
                token = token_bytes.decode("utf-8")
            except UnicodeDecodeError:
                break
            length = end - offset
            pages = self._pages_for(length)
            page_start = self.disk.allocate(pages)
            for page in range(page_start, page_start + pages):
                self.disk.read_page(page)
                self.stats.scan_pages += 1
            records += 1
            self.stats.scan_records += 1
            if rtype == _PUT:
                self._manifest.pop(token, None)
                self._manifest[token] = _Extent(
                    offset=offset,
                    length=length,
                    payload_len=payload_len,
                    benefit=benefit,
                    page_start=page_start,
                    pages=pages,
                )
            elif rtype == _TOMBSTONE:
                self._manifest.pop(token, None)
            else:
                self._manifest.clear()
            offset = end
        self._logical_end = offset
        return LogRecovery(
            records=records,
            live_entries=len(self._manifest),
            truncated_bytes=size - offset,
        )

    # ------------------------------------------------------------------
    # Writes

    def append(self, token: str, payload: bytes, benefit: float) -> int:
        """Durably store ``payload`` under ``token``; returns pages written.

        Last write wins: an existing live record for the same token is
        superseded (the old extent stays in the file as dead space).
        A :class:`~repro.exceptions.DiskFault` raised by the accounting
        disk's write hook aborts the append — the pages charged before
        the fault stay charged (a torn multi-page write did real work)
        but no bytes reach the backing file and the manifest is
        unchanged.
        """
        if not token:
            raise ChunkLogError("chunk log token must be non-empty")
        record, stored = self._encode(_PUT, token, payload, benefit)
        with self._lock, witness("chunklog"):
            self._ensure_open()
            pages = self._charge_write(record, kind="append")
            if stored is not record:
                self.stats.torn_writes += 1
            offset = len(self._buf)
            self._persist(stored)
            self._manifest.pop(token, None)
            self._manifest[token] = _Extent(
                offset=offset,
                length=len(record),
                payload_len=len(payload),
                benefit=benefit,
                page_start=self.disk.num_pages - pages,
                pages=pages,
            )
            return pages

    def delete(self, token: str) -> bool:
        """Tombstone a live record (charged); returns whether it was live."""
        with self._lock, witness("chunklog"):
            self._ensure_open()
            if token not in self._manifest:
                return False
            record, stored = self._encode(_TOMBSTONE, token, b"", 0.0)
            self._charge_write(record, kind="tombstone")
            self._persist(stored)
            del self._manifest[token]
            return True

    def clear(self) -> int:
        """Drop every live record via one clear-all record (charged)."""
        with self._lock, witness("chunklog"):
            self._ensure_open()
            dropped = len(self._manifest)
            record, stored = self._encode(_CLEAR, "", b"", 0.0)
            self._charge_write(record, kind="clear")
            self._persist(stored)
            self._manifest.clear()
            return dropped

    def drop(self, token: str) -> bool:
        """Quarantine: remove a token from the manifest, memory only.

        No tombstone is written — a torn record cannot be trusted to
        need one; the restart scan will re-surface it and the next read
        re-quarantines it.
        """
        with self._lock, witness("chunklog"):
            return self._manifest.pop(token, None) is not None

    # ------------------------------------------------------------------
    # Reads

    def read(self, token: str) -> bytes:
        """Charged, verified read of a live record's payload.

        Raises :class:`~repro.exceptions.ChunkLogError` for a token that
        is not live, :class:`~repro.exceptions.ChunkLogCorruption` when
        the stored CRC does not match the stored bytes, and re-raises
        any :class:`~repro.exceptions.DiskFault` from the accounting
        disk's read hook (pages read before the fault stay charged).
        """
        with self._lock, witness("chunklog"):
            self._ensure_open()
            extent = self._manifest.get(token)
            if extent is None:
                raise ChunkLogError(f"token {token!r} is not live in the log")
            for page in range(extent.page_start, extent.page_start + extent.pages):
                self.disk.read_page(page)
                self.stats.read_pages += 1
            self.stats.reads += 1
            return self._verified_payload(token, extent)

    def peek(self, token: str) -> bytes:
        """Uncharged, verified read (no disk counters, no fault hooks).

        Used by snapshot/warm-start paths that must not perturb the
        deterministic I/O accounting; still CRC-verified so corruption
        never decodes.
        """
        with self._lock, witness("chunklog"):
            extent = self._manifest.get(token)
            if extent is None:
                raise ChunkLogError(f"token {token!r} is not live in the log")
            return self._verified_payload(token, extent)

    # ------------------------------------------------------------------
    # Introspection

    def __contains__(self, token: str) -> bool:
        with self._lock, witness("chunklog"):
            return token in self._manifest

    def __len__(self) -> int:
        with self._lock, witness("chunklog"):
            return len(self._manifest)

    def tokens(self) -> tuple[str, ...]:
        """Live tokens in (re-)insertion order — deterministic."""
        with self._lock, witness("chunklog"):
            return tuple(self._manifest)

    def entries(self) -> tuple[tuple[str, float, int], ...]:
        """Live ``(token, benefit, payload_len)`` in insertion order."""
        with self._lock, witness("chunklog"):
            return tuple(
                (token, extent.benefit, extent.payload_len)
                for token, extent in self._manifest.items()
            )

    def benefit(self, token: str) -> float:
        with self._lock, witness("chunklog"):
            extent = self._manifest.get(token)
            if extent is None:
                raise ChunkLogError(f"token {token!r} is not live in the log")
            return extent.benefit

    def pages_for(self, token: str) -> int:
        """Pages one charged read of a live token will cost."""
        with self._lock, witness("chunklog"):
            extent = self._manifest.get(token)
            if extent is None:
                raise ChunkLogError(f"token {token!r} is not live in the log")
            return extent.pages

    @property
    def live_bytes(self) -> int:
        """Total payload bytes across live records."""
        with self._lock, witness("chunklog"):
            return sum(e.payload_len for e in self._manifest.values())

    def close(self) -> None:
        """Flush and close the backing file (idempotent)."""
        with self._lock, witness("chunklog"):
            if self._closed:
                return
            self._closed = True
            if self._file is not None:
                self._file.flush()
                self._file.close()
                self._file = None

    # ------------------------------------------------------------------
    # Internals (lock held)

    def _encode(
        self, rtype: int, token: str, payload: bytes, benefit: float
    ) -> tuple[bytes, bytes]:
        """Build ``(true_record, stored_record)`` — they differ only
        when the torn-write hook fires for a put."""
        token_bytes = token.encode("utf-8")
        if len(token_bytes) > 0xFFFF:
            raise ChunkLogError(
                f"token of {len(token_bytes)} bytes exceeds the 64 KiB "
                "format limit"
            )
        fields = _CRC_FIELDS.pack(rtype, len(token_bytes), len(payload), benefit)
        crc = crc32(fields + token_bytes + payload) & 0xFFFFFFFF
        prefix = _PREFIX.pack(
            rtype, len(token_bytes), len(payload), benefit, crc
        )
        record = prefix + token_bytes + payload
        stored = record
        if (
            rtype == _PUT
            and payload
            and self.torn_hook is not None
            and self.torn_hook(token)
        ):
            torn = bytearray(record)
            torn[-1] ^= 0xFF
            stored = bytes(torn)
        return record, stored

    def _charge_write(self, record: bytes, kind: str) -> int:
        """Allocate + write-charge the record's pages; updates counters."""
        pages = self._pages_for(len(record))
        first = self.disk.allocate(pages)
        written = 0
        try:
            for page in range(first, first + pages):
                self.disk.write_page(page, b"")
                written += 1
        finally:
            if kind == "append":
                self.stats.append_pages += written
                if written == pages:
                    self.stats.appends += 1
            elif kind == "tombstone":
                self.stats.tombstone_pages += written
                if written == pages:
                    self.stats.tombstones += 1
            else:
                self.stats.clear_pages += written
                if written == pages:
                    self.stats.clears += 1
        return pages

    def _persist(self, stored: bytes) -> None:
        self._buf.extend(stored)
        if self._file is not None:
            self._file.write(stored)
            self._file.flush()

    def _verified_payload(self, token: str, extent: _Extent) -> bytes:
        record = bytes(self._buf[extent.offset : extent.offset + extent.length])
        rtype, token_len, payload_len, benefit, crc = _PREFIX.unpack_from(
            record, 0
        )
        fields = _CRC_FIELDS.pack(rtype, token_len, payload_len, benefit)
        if crc32(fields + record[_PREFIX.size :]) & 0xFFFFFFFF != crc:
            self.stats.crc_failures += 1
            raise ChunkLogCorruption(
                f"chunk log record {token!r} failed its CRC-32 check "
                "(torn write)",
                token=token,
            )
        return record[_PREFIX.size + token_len :]

    def _pages_for(self, length: int) -> int:
        return max(1, -(-length // self.disk.page_size))

    def _ensure_open(self) -> None:
        if self._closed:
            raise ChunkLogError("chunk log is closed")
