"""Persistent, checksummed append-only chunk log (an L2 cache backend).

:class:`ChunkLog` is the default durable half of the two-tier chunk
cache (``docs/TIERING.md``) and the reference implementation of the
:class:`~repro.storage.l2.L2Backend` protocol.  It stores opaque
``(token, benefit, payload)`` records in an append-only file and
charges every record read and write through a private
:class:`~repro.storage.disk.SimulatedDisk`, so L2 traffic lands in the
same page-accounting currency as the backend's I/O — spills and
promotions have an exact, deterministic page cost.

The module is deliberately *key-agnostic*: tokens are caller-chosen
strings and payloads are caller-encoded bytes.  Encoding a
``CachedChunk`` into a record (and back) is the job of
:mod:`repro.core.tiered` — the storage layer sits below the caching
layers (R001) and must stay reusable without them.

On-disk format v1 (little-endian throughout)::

    header   : magic b"RCLG" | version u16 | page_size u32 | 6 pad bytes
    record   : type u8 | token_len u16 | payload_len u32 | benefit f64
               | crc32 u32 | token bytes | payload bytes
    type     : 1 = put, 2 = tombstone, 3 = clear-all

The CRC-32 covers the record's fixed fields (minus the CRC itself),
the token and the payload.  Each record occupies
``ceil(record_len / page_size)`` freshly allocated pages on the
accounting disk; the backing file is flushed after every append so a
kill leaves at worst one torn tail record.

Because the log is append-only, superseded puts, tombstones, clear
records and the extents they killed all remain in the file as **dead
space**.  The log tracks the split exactly (:attr:`ChunkLog.live_pages`
/ :attr:`ChunkLog.dead_pages`) and :meth:`ChunkLog.compact` reclaims
it: live records are rewritten verbatim into a sidecar file
(``<path>.compact``) which atomically replaces the log via
``os.replace``.  A crash at *any* write boundary leaves either the
complete old file or the complete new file — a partial sidecar is
removed on the next open, never replayed.

Recovery policy on open (see ``docs/TIERING.md`` §restart):

- a clean log replays fully (puts last-win, tombstones and clears
  apply in order), charging one scan read per record page;
- a truncated or unframeable tail is discarded — the file is cut back
  to the last well-framed record and the valid prefix survives;
- a corrupt header (wrong magic / garbage) resets the file to a fresh
  empty log: the persist path is cache-owned state, so degrading to a
  cold start beats refusing to serve;
- a *newer* format version raises :class:`~repro.exceptions.ChunkLogError`
  — format drift must fail loudly, never reinterpret bytes.

Record CRCs are verified at :meth:`ChunkLog.get` time, not during the
scan: a torn record with valid framing survives restart in the
manifest and is quarantined on first access, exactly like in the
original process (``tests/integration/test_restart.py`` pins this).
"""

from __future__ import annotations

import io
import os
import struct
import threading
from dataclasses import dataclass
from typing import Callable
from zlib import crc32

from repro.exceptions import ChunkLogCorruption, ChunkLogError, DiskFault
from repro.lockorder import witness
from repro.storage.disk import DEFAULT_PAGE_SIZE, SimulatedDisk
from repro.storage.l2 import L2Recovery, L2Stats

__all__ = [
    "CHUNKLOG_MAGIC",
    "CHUNKLOG_VERSION",
    "ChunkLog",
    "ChunkLogStats",
    "LogRecovery",
]

CHUNKLOG_MAGIC = b"RCLG"
CHUNKLOG_VERSION = 1

#: Backwards-compatible names: the stats/recovery value objects moved
#: to :mod:`repro.storage.l2` when the backend contract was extracted;
#: they are the same classes, shared by every backend.
ChunkLogStats = L2Stats
LogRecovery = L2Recovery

_HEADER = struct.Struct("<4sHI6x")  # magic, version, page_size
_PREFIX = struct.Struct("<BHIdI")  # type, token_len, payload_len, benefit, crc
_CRC_FIELDS = struct.Struct("<BHId")  # prefix minus the crc itself

_PUT = 1
_TOMBSTONE = 2
_CLEAR = 3
_RECORD_TYPES = frozenset({_PUT, _TOMBSTONE, _CLEAR})

#: Sidecar suffix compaction rewrites into before the atomic swap.
COMPACT_SUFFIX = ".compact"


@dataclass(frozen=True)
class _Extent:
    """Location of one live record: file offset plus its page run."""

    offset: int
    length: int
    payload_len: int
    benefit: float
    page_start: int
    pages: int


class ChunkLog:
    """File-backed, page-accounted append-only record store.

    Args:
        path: Backing file.  ``None`` keeps the log purely in memory
            (same accounting, no durability across processes) — used by
            tests and by 2-tier stacks that want spill/promote
            economics without a persist path.
        page_size: Page size of the private accounting disk.

    Thread safety: every public operation holds the log's single
    internal lock (runtime witness level ``"l2"`` — the tier-boundary
    level shared by every backend).  The lock is a leaf in the
    documented order — ``shard -> l2`` and ``tiered -> l2`` edges are
    pinned in ``tests/tools/lockorder.txt``; no code path acquires
    another lock while holding it.
    """

    def __init__(
        self, path: str | None = None, page_size: int = DEFAULT_PAGE_SIZE
    ) -> None:
        self.path = path
        self.disk = SimulatedDisk(page_size=page_size)
        self.stats = L2Stats()
        self._lock = threading.Lock()
        self._manifest: dict[str, _Extent] = {}
        self._closed = False
        # Fault-injection hooks (repro.faults installs them).
        # torn_hook: consulted per put with the record token; returning
        # True tears the stored payload while the CRC still covers the
        # original bytes.  compact_hook: consulted once per record a
        # compaction copies; returning True aborts the compaction at
        # that write boundary (the log is left untouched).
        self.torn_hook: Callable[[str], bool] | None = None
        self.compact_hook: Callable[[int], bool] | None = None
        self._live_pages = 0
        self._total_record_pages = 0
        self._file: io.BufferedRandom | None = None
        # A sidecar left behind by a compaction the process died inside
        # is garbage by construction (the swap is atomic): remove it.
        if path is not None and os.path.exists(path + COMPACT_SUFFIX):
            os.remove(path + COMPACT_SUFFIX)
        existing = b""
        if path is not None and os.path.exists(path):
            with open(path, "rb") as handle:
                existing = handle.read()
        # No lock here: the object is not published until __init__
        # returns, so construction has exclusive access by definition.
        self.recovery = self._open_from(existing)

    # ------------------------------------------------------------------
    # Open/replay

    def _open_from(self, existing: bytes) -> L2Recovery:
        """(Re)build all in-memory state from durable bytes (lock held,
        or construction-exclusive)."""
        recovery = self._replay(existing)
        self._buf = bytearray(existing[: self._logical_end])
        if not self._buf:
            self._buf = bytearray(
                _HEADER.pack(CHUNKLOG_MAGIC, CHUNKLOG_VERSION, self.disk.page_size)
            )
        if self.path is not None:
            self._file = open(self.path, "w+b")
            self._file.write(bytes(self._buf))
            self._file.flush()
        self._closed = False
        return recovery

    def _replay(self, existing: bytes) -> L2Recovery:
        """Rebuild the manifest from existing bytes; charge scan reads."""
        self._logical_end = 0
        self._manifest.clear()
        self._live_pages = 0
        self._total_record_pages = 0
        if not existing:
            return L2Recovery()
        if len(existing) < _HEADER.size:
            return L2Recovery(
                truncated_bytes=len(existing), header_reset=True
            )
        magic, version, page_size = _HEADER.unpack_from(existing, 0)
        if magic != CHUNKLOG_MAGIC:
            return L2Recovery(
                truncated_bytes=len(existing), header_reset=True
            )
        if version != CHUNKLOG_VERSION:
            raise ChunkLogError(
                f"chunk log format v{version} is not supported "
                f"(this build reads v{CHUNKLOG_VERSION}); refusing to "
                "reinterpret the file"
            )
        if page_size != self.disk.page_size:
            raise ChunkLogError(
                f"chunk log was written with page_size={page_size}, "
                f"opened with page_size={self.disk.page_size}"
            )
        offset = _HEADER.size
        records = 0
        size = len(existing)
        while True:
            if offset + _PREFIX.size > size:
                break  # clean end or torn prefix
            rtype, token_len, payload_len, benefit, _crc = (
                _PREFIX.unpack_from(existing, offset)
            )
            if rtype not in _RECORD_TYPES:
                break  # unframeable: corrupt tail starts here
            end = offset + _PREFIX.size + token_len + payload_len
            if end > size:
                break  # torn record
            token_bytes = existing[
                offset + _PREFIX.size : offset + _PREFIX.size + token_len
            ]
            try:
                token = token_bytes.decode("utf-8")
            except UnicodeDecodeError:
                break
            length = end - offset
            pages = self._pages_for(length)
            page_start = self.disk.allocate(pages)
            for page in range(page_start, page_start + pages):
                self.disk.read_page(page)
                self.stats.scan_pages += 1
            records += 1
            self.stats.scan_records += 1
            self._total_record_pages += pages
            if rtype == _PUT:
                self._forget_extent(token)
                self._manifest[token] = _Extent(
                    offset=offset,
                    length=length,
                    payload_len=payload_len,
                    benefit=benefit,
                    page_start=page_start,
                    pages=pages,
                )
                self._live_pages += pages
            elif rtype == _TOMBSTONE:
                self._forget_extent(token)
            else:
                self._manifest.clear()
                self._live_pages = 0
            offset = end
        self._logical_end = offset
        return L2Recovery(
            records=records,
            live_entries=len(self._manifest),
            truncated_bytes=size - offset,
        )

    def reopen(self) -> L2Recovery:
        """Simulated restart: rebuild everything from durable state.

        The backing file (or, for an in-memory log, the persisted
        byte buffer — which survives exactly like a file would) is
        re-replayed from scratch: manifest, live/dead split and torn
        tails are all rediscovered, charging one scan read per record
        page like the constructor does.  Also reopens a :meth:`close`-d
        log.  Returns what the replay found.
        """
        with self._lock, witness("l2"):
            if self._file is not None:
                self._file.flush()
                self._file.close()
                self._file = None
            if self.path is not None:
                existing = b""
                if os.path.exists(self.path):
                    with open(self.path, "rb") as handle:
                        existing = handle.read()
            else:
                existing = bytes(self._buf)
            self.recovery = self._open_from(existing)
            return self.recovery

    # ------------------------------------------------------------------
    # Writes

    def put(self, token: str, payload: bytes, benefit: float) -> int:
        """Durably store ``payload`` under ``token``; returns pages written.

        Last write wins: an existing live record for the same token is
        superseded (the old extent stays in the file as dead space).
        A :class:`~repro.exceptions.DiskFault` raised by the accounting
        disk's write hook aborts the put — the pages charged before
        the fault stay charged (a torn multi-page write did real work)
        but no bytes reach the backing file and the manifest is
        unchanged.
        """
        if not token:
            raise ChunkLogError("chunk log token must be non-empty")
        record, stored = self._encode(_PUT, token, payload, benefit)
        with self._lock, witness("l2"):
            self._ensure_open()
            pages = self._charge_write(record, kind="append")
            if stored is not record:
                self.stats.torn_writes += 1
            offset = len(self._buf)
            self._persist(stored)
            self._forget_extent(token)
            self._manifest[token] = _Extent(
                offset=offset,
                length=len(record),
                payload_len=len(payload),
                benefit=benefit,
                page_start=self.disk.num_pages - pages,
                pages=pages,
            )
            self._live_pages += pages
            self._total_record_pages += pages
            return pages

    def delete(self, token: str) -> bool:
        """Tombstone a live record (charged); returns whether it was live."""
        with self._lock, witness("l2"):
            self._ensure_open()
            if token not in self._manifest:
                return False
            record, stored = self._encode(_TOMBSTONE, token, b"", 0.0)
            pages = self._charge_write(record, kind="tombstone")
            self._persist(stored)
            self._forget_extent(token)
            self._total_record_pages += pages
            return True

    def clear(self) -> int:
        """Drop every live record via one clear-all record (charged)."""
        with self._lock, witness("l2"):
            self._ensure_open()
            dropped = len(self._manifest)
            record, stored = self._encode(_CLEAR, "", b"", 0.0)
            pages = self._charge_write(record, kind="clear")
            self._persist(stored)
            self._manifest.clear()
            self._live_pages = 0
            self._total_record_pages += pages
            return dropped

    def drop(self, token: str) -> bool:
        """Quarantine: remove a token from the manifest, memory only.

        No tombstone is written — a torn record cannot be trusted to
        need one; the restart scan will re-surface it and the next read
        re-quarantines it.  (A :meth:`compact` run while the token is
        quarantined makes the quarantine durable: only manifest records
        are copied.)
        """
        with self._lock, witness("l2"):
            return self._forget_extent(token)

    # ------------------------------------------------------------------
    # Compaction

    def compact(self) -> int:
        """Rewrite live records into a fresh log; returns pages reclaimed.

        The live manifest is copied *verbatim* (byte-for-byte, CRCs and
        all — a torn-but-framed record stays torn and still quarantines
        at read) into a sidecar file which then atomically replaces the
        log via ``os.replace``.  Every copied record charges its pages
        as a read and again as a write on the accounting disk
        (``compact_read_pages`` / ``compact_write_pages``), so
        compaction I/O is as visible as any other.

        Crash-safe at every write boundary: until the swap the old file
        is untouched, and a partial sidecar is deleted on the next
        open.  A :class:`~repro.exceptions.DiskFault` from the
        read/write hooks (or an armed ``compact_hook``) aborts the
        compaction with the log unchanged — charged pages stay
        charged, mirroring every other faulted operation.

        No-op (returns 0) when the log has no dead pages.
        """
        with self._lock, witness("l2"):
            self._ensure_open()
            reclaimed = self._total_record_pages - self._live_pages
            if reclaimed <= 0:
                return 0
            sidecar_path = (
                self.path + COMPACT_SUFFIX if self.path is not None else None
            )
            header = _HEADER.pack(
                CHUNKLOG_MAGIC, CHUNKLOG_VERSION, self.disk.page_size
            )
            new_buf = bytearray(header)
            new_manifest: dict[str, _Extent] = {}
            sidecar: io.BufferedRandom | None = None
            try:
                if sidecar_path is not None:
                    sidecar = open(sidecar_path, "w+b")
                    sidecar.write(header)
                    sidecar.flush()
                for index, (token, extent) in enumerate(
                    self._manifest.items()
                ):
                    if self.compact_hook is not None and self.compact_hook(
                        index
                    ):
                        raise DiskFault(
                            "injected compaction abort at record "
                            f"{index} ({token!r})",
                            page_id=extent.page_start,
                            transient=True,
                            site="compact",
                        )
                    for page in range(
                        extent.page_start, extent.page_start + extent.pages
                    ):
                        self.disk.read_page(page)
                        self.stats.compact_read_pages += 1
                    record = bytes(
                        self._buf[extent.offset : extent.offset + extent.length]
                    )
                    pages = self._charge_compact_write(record)
                    offset = len(new_buf)
                    new_buf.extend(record)
                    if sidecar is not None:
                        sidecar.write(record)
                        sidecar.flush()
                    new_manifest[token] = _Extent(
                        offset=offset,
                        length=extent.length,
                        payload_len=extent.payload_len,
                        benefit=extent.benefit,
                        page_start=self.disk.num_pages - pages,
                        pages=pages,
                    )
            except BaseException:
                if sidecar is not None:
                    sidecar.close()
                    assert sidecar_path is not None
                    os.remove(sidecar_path)
                raise
            if sidecar is not None:
                assert sidecar_path is not None and self.path is not None
                sidecar.flush()
                os.fsync(sidecar.fileno())
                sidecar.close()
                try:
                    os.replace(sidecar_path, self.path)
                except OSError as exc:
                    os.remove(sidecar_path)
                    raise ChunkLogError(
                        f"compaction swap failed: {exc}"
                    ) from exc
                if self._file is not None:
                    self._file.close()
                self._file = open(self.path, "r+b")
                self._file.seek(0, os.SEEK_END)
            self._buf = new_buf
            self._logical_end = len(new_buf)
            self._manifest = new_manifest
            self._total_record_pages = self._live_pages
            self.stats.compactions += 1
            self.stats.reclaimed_pages += reclaimed
            return reclaimed

    # ------------------------------------------------------------------
    # Reads

    def get(self, token: str) -> bytes:
        """Charged, verified read of a live record's payload.

        Raises :class:`~repro.exceptions.ChunkLogError` for a token that
        is not live, :class:`~repro.exceptions.ChunkLogCorruption` when
        the stored CRC does not match the stored bytes, and re-raises
        any :class:`~repro.exceptions.DiskFault` from the accounting
        disk's read hook (pages read before the fault stay charged).
        """
        with self._lock, witness("l2"):
            self._ensure_open()
            extent = self._manifest.get(token)
            if extent is None:
                raise ChunkLogError(f"token {token!r} is not live in the log")
            for page in range(extent.page_start, extent.page_start + extent.pages):
                self.disk.read_page(page)
                self.stats.read_pages += 1
            self.stats.reads += 1
            return self._verified_payload(token, extent)

    def peek(self, token: str) -> bytes:
        """Uncharged, verified read (no disk counters, no fault hooks).

        Used by snapshot/warm-start paths that must not perturb the
        deterministic I/O accounting; still CRC-verified so corruption
        never decodes.
        """
        with self._lock, witness("l2"):
            extent = self._manifest.get(token)
            if extent is None:
                raise ChunkLogError(f"token {token!r} is not live in the log")
            return self._verified_payload(token, extent)

    # ------------------------------------------------------------------
    # Introspection

    def __contains__(self, token: str) -> bool:
        with self._lock, witness("l2"):
            return token in self._manifest

    def __len__(self) -> int:
        with self._lock, witness("l2"):
            return len(self._manifest)

    def tokens(self) -> tuple[str, ...]:
        """Live tokens in (re-)insertion order — deterministic."""
        with self._lock, witness("l2"):
            return tuple(self._manifest)

    def scan_keys(self) -> tuple[tuple[str, float, int], ...]:
        """Live ``(token, benefit, payload_len)`` in insertion order."""
        with self._lock, witness("l2"):
            return tuple(
                (token, extent.benefit, extent.payload_len)
                for token, extent in self._manifest.items()
            )

    def benefit(self, token: str) -> float:
        with self._lock, witness("l2"):
            extent = self._manifest.get(token)
            if extent is None:
                raise ChunkLogError(f"token {token!r} is not live in the log")
            return extent.benefit

    def pages_for(self, token: str) -> int:
        """Pages one charged read of a live token will cost."""
        with self._lock, witness("l2"):
            extent = self._manifest.get(token)
            if extent is None:
                raise ChunkLogError(f"token {token!r} is not live in the log")
            return extent.pages

    @property
    def live_bytes(self) -> int:
        """Total payload bytes across live records."""
        with self._lock, witness("l2"):
            return sum(e.payload_len for e in self._manifest.values())

    @property
    def live_pages(self) -> int:
        """File pages occupied by live (manifest) records."""
        with self._lock, witness("l2"):
            return self._live_pages

    @property
    def dead_pages(self) -> int:
        """File pages occupied by superseded/tombstone/clear records."""
        with self._lock, witness("l2"):
            return self._total_record_pages - self._live_pages

    def counters(self) -> dict[str, int]:
        """Space gauges the tiered cache surfaces per tier."""
        with self._lock, witness("l2"):
            return {
                "live_pages": self._live_pages,
                "dead_pages": self._total_record_pages - self._live_pages,
                "compactions": self.stats.compactions,
                "reclaimed_pages": self.stats.reclaimed_pages,
            }

    # ------------------------------------------------------------------
    # Fault points (the injector sets these; see docs/FAULTS.md)

    @property
    def write_hook(self) -> Callable[[int], float] | None:
        """Per-page write fault point (delegates to the accounting disk)."""
        return self.disk.write_hook

    @write_hook.setter
    def write_hook(self, hook: Callable[[int], float] | None) -> None:
        self.disk.write_hook = hook

    @property
    def read_hook(self) -> Callable[[int], float] | None:
        """Per-page read fault point (delegates to the accounting disk)."""
        return self.disk.read_hook

    @read_hook.setter
    def read_hook(self, hook: Callable[[int], float] | None) -> None:
        self.disk.read_hook = hook

    def close(self) -> None:
        """Flush and close the backing file (idempotent)."""
        with self._lock, witness("l2"):
            if self._closed:
                return
            self._closed = True
            if self._file is not None:
                self._file.flush()
                self._file.close()
                self._file = None

    # ------------------------------------------------------------------
    # Backwards-compatible names (pre-protocol API)

    def append(self, token: str, payload: bytes, benefit: float) -> int:
        """Alias of :meth:`put` (the pre-``L2Backend`` name)."""
        return self.put(token, payload, benefit)

    def read(self, token: str) -> bytes:
        """Alias of :meth:`get` (the pre-``L2Backend`` name)."""
        return self.get(token)

    def entries(self) -> tuple[tuple[str, float, int], ...]:
        """Alias of :meth:`scan_keys` (the pre-``L2Backend`` name)."""
        return self.scan_keys()

    # ------------------------------------------------------------------
    # Internals (lock held)

    def _forget_extent(self, token: str) -> bool:
        """Drop a token's extent from the manifest, keeping the live
        page gauge exact (lock held)."""
        extent = self._manifest.pop(token, None)
        if extent is None:
            return False
        self._live_pages -= extent.pages
        return True

    def _encode(
        self, rtype: int, token: str, payload: bytes, benefit: float
    ) -> tuple[bytes, bytes]:
        """Build ``(true_record, stored_record)`` — they differ only
        when the torn-write hook fires for a put."""
        token_bytes = token.encode("utf-8")
        if len(token_bytes) > 0xFFFF:
            raise ChunkLogError(
                f"token of {len(token_bytes)} bytes exceeds the 64 KiB "
                "format limit"
            )
        fields = _CRC_FIELDS.pack(rtype, len(token_bytes), len(payload), benefit)
        crc = crc32(fields + token_bytes + payload) & 0xFFFFFFFF
        prefix = _PREFIX.pack(
            rtype, len(token_bytes), len(payload), benefit, crc
        )
        record = prefix + token_bytes + payload
        stored = record
        if (
            rtype == _PUT
            and payload
            and self.torn_hook is not None
            and self.torn_hook(token)
        ):
            torn = bytearray(record)
            torn[-1] ^= 0xFF
            stored = bytes(torn)
        return record, stored

    def _charge_write(self, record: bytes, kind: str) -> int:
        """Allocate + write-charge the record's pages; updates counters."""
        pages = self._pages_for(len(record))
        first = self.disk.allocate(pages)
        written = 0
        try:
            for page in range(first, first + pages):
                self.disk.write_page(page, b"")
                written += 1
        finally:
            if kind == "append":
                self.stats.append_pages += written
                if written == pages:
                    self.stats.appends += 1
            elif kind == "tombstone":
                self.stats.tombstone_pages += written
                if written == pages:
                    self.stats.tombstones += 1
            else:
                self.stats.clear_pages += written
                if written == pages:
                    self.stats.clears += 1
        return pages

    def _charge_compact_write(self, record: bytes) -> int:
        """Allocate + write-charge one compacted record's pages."""
        pages = self._pages_for(len(record))
        first = self.disk.allocate(pages)
        written = 0
        try:
            for page in range(first, first + pages):
                self.disk.write_page(page, b"")
                written += 1
        finally:
            self.stats.compact_write_pages += written
        return pages

    def _persist(self, stored: bytes) -> None:
        self._buf.extend(stored)
        if self._file is not None:
            self._file.write(stored)
            self._file.flush()

    def _verified_payload(self, token: str, extent: _Extent) -> bytes:
        record = bytes(self._buf[extent.offset : extent.offset + extent.length])
        rtype, token_len, payload_len, benefit, crc = _PREFIX.unpack_from(
            record, 0
        )
        fields = _CRC_FIELDS.pack(rtype, token_len, payload_len, benefit)
        if crc32(fields + record[_PREFIX.size :]) & 0xFFFFFFFF != crc:
            self.stats.crc_failures += 1
            raise ChunkLogCorruption(
                f"chunk log record {token!r} failed its CRC-32 check "
                "(torn write)",
                token=token,
            )
        return record[_PREFIX.size + token_len :]

    def _pages_for(self, length: int) -> int:
        return max(1, -(-length // self.disk.page_size))

    def _ensure_open(self) -> None:
        if self._closed:
            raise ChunkLogError("chunk log is closed")
