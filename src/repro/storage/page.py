"""Page codecs: packed fixed-length pages and slotted pages.

Two on-page layouts are provided:

- :class:`PackedPage` — the layout of the paper's *fact file* [RJZN97]:
  fixed-length records stored back to back after a 4-byte record count.
  There is no slot array, so the number of records per page is maximal and
  deterministic, which is what makes chunk -> page-range arithmetic exact.

- :class:`SlottedPage` — the classic variable-length layout (slot directory
  growing from the back).  Used for dimension tables and B-tree nodes whose
  entries are not fixed length.

Both codecs are pure functions over ``bytes``; persistence and I/O counting
live in :class:`~repro.storage.disk.SimulatedDisk`.
"""

from __future__ import annotations

import struct
from typing import Sequence

import numpy as np

from repro.exceptions import PageError
from repro.storage.record import RecordFormat

__all__ = ["PackedPage", "SlottedPage"]

_COUNT = struct.Struct("<I")


class PackedPage:
    """Codec for pages of back-to-back fixed-length records.

    Layout: ``[record_count: u32][record 0][record 1]...`` with zero padding
    at the end.  All methods are static-style helpers bound to a record
    format and page size.
    """

    HEADER_SIZE = _COUNT.size

    def __init__(self, record_format: RecordFormat, page_size: int) -> None:
        self.record_format = record_format
        self.page_size = page_size
        self.capacity = record_format.records_per_page(
            page_size, header_size=self.HEADER_SIZE
        )

    def encode(self, records: np.ndarray) -> bytes:
        """Serialize up to ``capacity`` records into one page payload."""
        if len(records) > self.capacity:
            raise PageError(
                f"{len(records)} records exceed page capacity {self.capacity}"
            )
        body = self.record_format.pack(records)
        return _COUNT.pack(len(records)) + body

    def decode(self, payload: bytes) -> np.ndarray:
        """Deserialize a page payload into a structured array."""
        if len(payload) < self.HEADER_SIZE:
            raise PageError("page payload shorter than its header")
        (count,) = _COUNT.unpack_from(payload)
        if count > self.capacity:
            raise PageError(
                f"page claims {count} records, capacity is {self.capacity}"
            )
        return self.record_format.unpack(payload[self.HEADER_SIZE:], count)

    def count(self, payload: bytes) -> int:
        """Record count of a page payload without decoding the records."""
        if len(payload) < self.HEADER_SIZE:
            raise PageError("page payload shorter than its header")
        (count,) = _COUNT.unpack_from(payload)
        return count


class SlottedPage:
    """Codec for pages of variable-length records with a slot directory.

    Layout::

        [num_slots: u32][free_offset: u32][record data ...→][...← slots]

    Each slot is ``(offset: u32, length: u32)`` stored from the page end
    backwards.  Deletion is not needed by this library, so the codec only
    supports append-and-read, which keeps it simple and fully testable.
    """

    HEADER = struct.Struct("<II")
    SLOT = struct.Struct("<II")

    def __init__(self, page_size: int) -> None:
        if page_size < self.HEADER.size + self.SLOT.size + 1:
            raise PageError(f"page size {page_size} too small for slotted page")
        self.page_size = page_size

    def empty(self) -> bytearray:
        """A fresh empty page buffer."""
        buf = bytearray(self.page_size)
        self.HEADER.pack_into(buf, 0, 0, self.HEADER.size)
        return buf

    def free_space(self, buf: bytes | bytearray) -> int:
        """Bytes available for one more record (including its slot)."""
        num_slots, free_offset = self.HEADER.unpack_from(buf)
        slots_start = self.page_size - num_slots * self.SLOT.size
        return max(0, slots_start - free_offset - self.SLOT.size)

    def append(self, buf: bytearray, record: bytes) -> int:
        """Append ``record``; returns its slot index.

        Raises:
            PageError: If the record (plus slot) does not fit.
        """
        if self.free_space(buf) < len(record):
            raise PageError(
                f"record of {len(record)} bytes does not fit "
                f"({self.free_space(buf)} free)"
            )
        num_slots, free_offset = self.HEADER.unpack_from(buf)
        buf[free_offset:free_offset + len(record)] = record
        slot_pos = self.page_size - (num_slots + 1) * self.SLOT.size
        self.SLOT.pack_into(buf, slot_pos, free_offset, len(record))
        self.HEADER.pack_into(buf, 0, num_slots + 1, free_offset + len(record))
        return num_slots

    def num_records(self, buf: bytes | bytearray) -> int:
        """Number of records on the page."""
        num_slots, _ = self.HEADER.unpack_from(buf)
        return num_slots

    def read(self, buf: bytes | bytearray, slot: int) -> bytes:
        """Record bytes at ``slot``."""
        num_slots, _ = self.HEADER.unpack_from(buf)
        if not 0 <= slot < num_slots:
            raise PageError(f"slot {slot} out of range 0..{num_slots - 1}")
        slot_pos = self.page_size - (slot + 1) * self.SLOT.size
        offset, length = self.SLOT.unpack_from(buf, slot_pos)
        return bytes(buf[offset:offset + length])

    def records(self, buf: bytes | bytearray) -> list[bytes]:
        """All records on the page, in slot order."""
        return [self.read(buf, slot) for slot in range(self.num_records(buf))]

    def build(self, records: Sequence[bytes]) -> bytearray:
        """A page holding exactly ``records`` (must all fit)."""
        buf = self.empty()
        for record in records:
            self.append(buf, record)
        return buf
