"""A buffer pool with CLOCK replacement.

The backend reads pages through a :class:`BufferPool` rather than straight
off the :class:`~repro.storage.disk.SimulatedDisk`, mirroring the paper's
setup (an 8 MB buffer pool in front of a raw device).  Only pool *misses*
reach the disk and are counted as physical I/O, so repeated access to hot
pages is free — exactly the effect the paper's buffer pool has on its
measured times.

Replacement is the second-chance CLOCK algorithm, the same family the paper
uses for its cache replacement experiments (Section 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import BufferPoolError
from repro.storage.disk import SimulatedDisk

__all__ = ["BufferPoolStats", "BufferPool"]


@dataclass
class BufferPoolStats:
    """Hit/miss counters of a :class:`BufferPool`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        """Total page requests."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Hits over accesses (0.0 when never used)."""
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses


class _Frame:
    __slots__ = ("page_id", "data", "referenced")

    def __init__(self, page_id: int, data: bytes) -> None:
        self.page_id = page_id
        self.data = data
        self.referenced = True


class BufferPool:
    """CLOCK-replaced page cache in front of a simulated disk.

    Args:
        disk: The backing disk.
        capacity_pages: Number of page frames; with the default 4 KiB pages,
            the paper's 8 MB pool is ``capacity_pages=2048``.
    """

    def __init__(self, disk: SimulatedDisk, capacity_pages: int) -> None:
        if capacity_pages < 1:
            raise BufferPoolError(
                f"buffer pool needs at least one frame, got {capacity_pages}"
            )
        self.disk = disk
        self.capacity = capacity_pages
        self.stats = BufferPoolStats()
        self._frames: list[_Frame] = []
        self._index: dict[int, int] = {}  # page_id -> frame position
        self._hand = 0

    def __len__(self) -> int:
        return len(self._frames)

    def contains(self, page_id: int) -> bool:
        """Whether a page is currently buffered (no side effects)."""
        return page_id in self._index

    def get_page(self, page_id: int) -> bytes:
        """Read a page through the pool.

        A hit returns the buffered copy; a miss reads from disk (one
        physical I/O), possibly evicting another frame via CLOCK.
        """
        pos = self._index.get(page_id)
        if pos is not None:
            self.stats.hits += 1
            frame = self._frames[pos]
            frame.referenced = True
            return frame.data
        self.stats.misses += 1
        data = self.disk.read_page(page_id)
        self._admit(page_id, data)
        return data

    def put_page(self, page_id: int, data: bytes) -> None:
        """Write a page through the pool (write-through).

        The disk copy is updated immediately and the buffered copy (if any)
        is refreshed, so readers never see stale data.
        """
        self.disk.write_page(page_id, data)
        pos = self._index.get(page_id)
        if pos is not None:
            frame = self._frames[pos]
            frame.data = bytes(data)
            frame.referenced = True

    def flush(self) -> None:
        """Drop every buffered frame (counters are kept)."""
        self._frames.clear()
        self._index.clear()
        self._hand = 0

    def reset_stats(self) -> None:
        """Zero the hit/miss counters."""
        self.stats = BufferPoolStats()

    # ------------------------------------------------------------------
    def _admit(self, page_id: int, data: bytes) -> None:
        if len(self._frames) < self.capacity:
            self._index[page_id] = len(self._frames)
            self._frames.append(_Frame(page_id, data))
            return
        pos = self._clock_victim()
        victim = self._frames[pos]
        del self._index[victim.page_id]
        self.stats.evictions += 1
        self._frames[pos] = _Frame(page_id, data)
        self._index[page_id] = pos

    def _clock_victim(self) -> int:
        # Second-chance sweep: clear reference bits until an unreferenced
        # frame is found.  Terminates within two sweeps.
        while True:
            frame = self._frames[self._hand]
            if frame.referenced:
                frame.referenced = False
                self._hand = (self._hand + 1) % self.capacity
            else:
                victim = self._hand
                self._hand = (self._hand + 1) % self.capacity
                return victim
