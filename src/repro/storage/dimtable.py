"""Relational storage of dimension tables.

A star schema stores one *dimension table* per dimension (Section 2.1):
one row per leaf member carrying the member's value at every hierarchy
level (``sname, scity, sstate`` ...).  Rows are variable length (member
values are strings), so they live on :class:`~repro.storage.page.SlottedPage`
pages — the second page format of the storage engine.

The chunk machinery itself never reads these tables (the in-memory
:class:`~repro.schema.dimension.DomainIndex` already maps values to
ordinals); they exist so the backend holds the *complete* star schema
relationally, and so value lookups can be served — and costed — from
storage when the domain index is treated as cold.
"""

from __future__ import annotations

import struct
from bisect import bisect_right
from typing import Iterator

from repro.exceptions import FileFormatError
from repro.schema.dimension import Dimension
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.page import SlottedPage

__all__ = ["DimensionTable"]

_ORDINAL = struct.Struct("<i")
_LENGTH = struct.Struct("<H")


def _encode_row(ordinal: int, values: tuple[str, ...]) -> bytes:
    parts = [_ORDINAL.pack(ordinal)]
    for value in values:
        data = value.encode("utf-8")
        if len(data) > 0xFFFF:
            raise FileFormatError(
                f"member value of {len(data)} bytes is too long"
            )
        parts.append(_LENGTH.pack(len(data)))
        parts.append(data)
    return b"".join(parts)


def _decode_row(payload: bytes, num_levels: int) -> tuple[int, tuple[str, ...]]:
    (ordinal,) = _ORDINAL.unpack_from(payload)
    pos = _ORDINAL.size
    values = []
    for _ in range(num_levels):
        (length,) = _LENGTH.unpack_from(payload, pos)
        pos += _LENGTH.size
        values.append(payload[pos:pos + length].decode("utf-8"))
        pos += length
    return ordinal, tuple(values)


class DimensionTable:
    """One dimension's members stored on slotted pages.

    Row layout: ``(leaf_ordinal, value at level 1, ..., value at leaf)``
    — i.e. each leaf member is stored with all of its ancestors' values,
    the classic denormalized star-schema dimension table.

    Use :meth:`build` to materialize a table from a
    :class:`~repro.schema.dimension.Dimension`.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        dimension: Dimension,
        buffer_pool: BufferPool | None = None,
    ) -> None:
        self.disk = disk
        self.dimension = dimension
        self.buffer_pool = buffer_pool
        self.codec = SlottedPage(disk.page_size)
        # Page directory: (page id, first leaf ordinal on the page).
        self._pages: list[tuple[int, int]] = []
        self._num_rows = 0

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        disk: SimulatedDisk,
        dimension: Dimension,
        buffer_pool: BufferPool | None = None,
    ) -> "DimensionTable":
        """Materialize the dimension's members into a new table."""
        table = cls(disk, dimension, buffer_pool)
        leaf = dimension.leaf_level
        buf = table.codec.empty()
        first_on_page = 0
        for ordinal in range(dimension.leaf_cardinality):
            values = tuple(
                str(
                    dimension.value_of(
                        level,
                        dimension.ancestor_ordinal(leaf, ordinal, level),
                    )
                )
                for level in range(1, leaf + 1)
            )
            row = _encode_row(ordinal, values)
            if table.codec.free_space(buf) < len(row):
                table._flush_page(buf, first_on_page)
                buf = table.codec.empty()
                first_on_page = ordinal
            table.codec.append(buf, row)
            table._num_rows += 1
        if table.codec.num_records(buf):
            table._flush_page(buf, first_on_page)
        return table

    def _flush_page(self, buf: bytearray, first_ordinal: int) -> None:
        page_id = self.disk.allocate()
        self.disk.write_page(page_id, bytes(buf))
        self._pages.append((page_id, first_ordinal))

    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Stored member rows (== leaf cardinality after build)."""
        return self._num_rows

    @property
    def num_pages(self) -> int:
        """Pages occupied by the table."""
        return len(self._pages)

    def _read(self, page_id: int) -> bytes:
        if self.buffer_pool is not None:
            return self.buffer_pool.get_page(page_id)
        return self.disk.read_page(page_id)

    def scan(self) -> Iterator[tuple[int, tuple[str, ...]]]:
        """All rows in leaf-ordinal order (reads every page)."""
        levels = self.dimension.num_levels
        for page_id, _first in self._pages:
            payload = self._read(page_id)
            for slot in range(self.codec.num_records(payload)):
                yield _decode_row(self.codec.read(payload, slot), levels)

    def lookup(self, leaf_ordinal: int) -> tuple[str, ...]:
        """The full ancestor-value row of one leaf member (one page read)."""
        if not 0 <= leaf_ordinal < self._num_rows:
            raise FileFormatError(
                f"ordinal {leaf_ordinal} out of range 0..{self._num_rows - 1}"
            )
        firsts = [first for _pid, first in self._pages]
        index = bisect_right(firsts, leaf_ordinal) - 1
        page_id, first = self._pages[index]
        payload = self._read(page_id)
        row = self.codec.read(payload, leaf_ordinal - first)
        ordinal, values = _decode_row(row, self.dimension.num_levels)
        if ordinal != leaf_ordinal:
            raise FileFormatError(
                f"directory corruption: found row {ordinal} while looking "
                f"up {leaf_ordinal}"
            )
        return values
