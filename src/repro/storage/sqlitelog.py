"""SQLite-backed L2 cache backend (stdlib :mod:`sqlite3` only).

:class:`SqliteBackend` stores the same ``(token, benefit, payload)``
records as :class:`~repro.storage.chunklog.ChunkLog`, but in a SQLite
table that updates rows **in place** — superseded puts and tombstones
leave no dead space, so :meth:`SqliteBackend.compact` is a no-op and
``dead_pages`` is ``0`` by construction.  It exists both as a real
alternative store (PartitionCache-style pluggable handler) and as the
second implementation that keeps the :class:`~repro.storage.l2.L2Backend`
contract honest: the conformance kit in ``tests/storage/l2_contract.py``
runs identically over both.

Accounting is *logical*, not physical: every operation charges
``ceil(record_length(token, payload) / page_size)`` pages through the
backend's private :class:`~repro.storage.disk.SimulatedDisk` — the
canonical framed size from :mod:`repro.storage.l2`, independent of how
SQLite lays out B-tree pages.  Two backends holding the same records
therefore charge identical page counts, which is what keeps chaos
digests backend-comparable (see ``docs/TIERING.md`` §Backends).

Corruption detection mirrors the log: each row stores a CRC-32 over
the record's canonical framing, token and payload; ``torn_hook`` may
corrupt the *stored* payload while the stored CRC still covers the
originals, and the mismatch is detected at :meth:`SqliteBackend.get`
(quarantine, not scan-time rejection — same policy as the log).

Recovery policy on open: a readable database replays its rows in
``seq`` order (charging one scan read per record's pages).  An
unreadable file — not a SQLite database, or a database without our
table schema — resets to a fresh empty store (``header_reset=True``):
the persist path is cache-owned state, so a cold start beats refusing
to serve.  This matches the log's corrupt-header policy exactly.
"""

from __future__ import annotations

import os
import sqlite3
import struct
import threading
from dataclasses import dataclass
from typing import Callable
from zlib import crc32

from repro.exceptions import ChunkLogCorruption, ChunkLogError
from repro.lockorder import witness
from repro.storage.disk import DEFAULT_PAGE_SIZE, SimulatedDisk
from repro.storage.l2 import L2Recovery, L2Stats, record_length

__all__ = ["SqliteBackend"]

_CRC_FIELDS = struct.Struct("<BHId")  # type, token_len, payload_len, benefit
_PUT = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS records (
    token   TEXT    PRIMARY KEY,
    benefit REAL    NOT NULL,
    payload BLOB    NOT NULL,
    crc     INTEGER NOT NULL,
    seq     INTEGER NOT NULL
)
"""


def _record_crc(token_bytes: bytes, payload: bytes, benefit: float) -> int:
    fields = _CRC_FIELDS.pack(_PUT, len(token_bytes), len(payload), benefit)
    return crc32(fields + token_bytes + payload) & 0xFFFFFFFF


@dataclass(frozen=True)
class _Row:
    """In-memory manifest entry: benefit, size and charged page run."""

    benefit: float
    payload_len: int
    page_start: int
    pages: int


class SqliteBackend:
    """In-place-update L2 backend over a stdlib SQLite database.

    Args:
        path: Database file.  ``None`` uses an in-memory database
            (same accounting; :meth:`reopen` rescans the live
            connection, mirroring the in-memory chunk log).
        page_size: Page size of the private accounting disk.

    Thread safety: every public operation holds the backend's single
    internal lock (runtime witness level ``"l2"`` — a leaf in the
    documented lock order, same level as every L2 backend).  The
    SQLite connection is only ever touched under that lock, so
    ``check_same_thread=False`` is safe.
    """

    def __init__(
        self, path: str | None = None, page_size: int = DEFAULT_PAGE_SIZE
    ) -> None:
        self.path = path
        self.disk = SimulatedDisk(page_size=page_size)
        self.stats = L2Stats()
        self._lock = threading.Lock()
        self._manifest: dict[str, _Row] = {}
        self._closed = False
        self._seq = 0
        self._conn: sqlite3.Connection | None = None
        self.torn_hook: Callable[[str], bool] | None = None
        # In-place updates leave no dead space, so compaction never
        # copies a record and the hook has nothing to interpose on; it
        # exists to satisfy the backend contract uniformly.
        self.compact_hook: Callable[[int], bool] | None = None
        # No lock: not published until construction returns.
        self.recovery = self._open()

    # ------------------------------------------------------------------
    # Open/replay

    def _connect(self) -> sqlite3.Connection:
        target = self.path if self.path is not None else ":memory:"
        conn = sqlite3.connect(target, check_same_thread=False)
        conn.execute(_SCHEMA)
        conn.commit()
        return conn

    def _open(self) -> L2Recovery:
        """(Re)connect and rebuild the manifest; charge scan reads."""
        header_reset = False
        truncated = 0
        if self._conn is None:
            try:
                self._conn = self._connect()
            except sqlite3.DatabaseError:
                # Not a SQLite database: reset to a fresh empty store,
                # same policy as the log's corrupt-header recovery.
                assert self.path is not None
                truncated = os.path.getsize(self.path)
                os.remove(self.path)
                header_reset = True
                self._conn = self._connect()
        self._manifest.clear()
        self._seq = 0
        records = 0
        try:
            rows = self._conn.execute(
                "SELECT token, benefit, payload, seq FROM records"
                " ORDER BY seq"
            ).fetchall()
        except sqlite3.DatabaseError:
            # Readable header but corrupt pages / missing schema.
            self._conn.close()
            self._conn = None
            if self.path is not None:
                truncated = os.path.getsize(self.path)
                os.remove(self.path)
            header_reset = True
            self._conn = self._connect()
            rows = []
        for token, benefit, payload, seq in rows:
            pages = self._pages_for(record_length(token, payload))
            page_start = self.disk.allocate(pages)
            for page in range(page_start, page_start + pages):
                self.disk.read_page(page)
                self.stats.scan_pages += 1
            records += 1
            self.stats.scan_records += 1
            self._manifest[token] = _Row(
                benefit=benefit,
                payload_len=len(payload),
                page_start=page_start,
                pages=pages,
            )
            self._seq = max(self._seq, seq + 1)
        self._closed = False
        return L2Recovery(
            records=records,
            live_entries=len(self._manifest),
            truncated_bytes=truncated,
            header_reset=header_reset,
        )

    def reopen(self) -> L2Recovery:
        """Simulated restart: rebuild everything from durable state.

        A file-backed store closes and reconnects; an in-memory store
        rescans its live connection (its table plays the role of the
        durable bytes, exactly like the in-memory log's buffer).  Also
        reopens a :meth:`close`-d backend.
        """
        with self._lock, witness("l2"):
            if self._conn is not None and self.path is not None:
                self._conn.commit()
                self._conn.close()
                self._conn = None
            self.recovery = self._open()
            return self.recovery

    # ------------------------------------------------------------------
    # Writes

    def put(self, token: str, payload: bytes, benefit: float) -> int:
        """Durably store ``payload`` under ``token``; returns pages charged.

        Last write wins (the row is replaced in place).  A
        :class:`~repro.exceptions.DiskFault` from the write hook aborts
        the put before any SQL runs — charged pages stay charged, the
        table and manifest are unchanged.
        """
        if not token:
            raise ChunkLogError("chunk log token must be non-empty")
        token_bytes = token.encode("utf-8")
        if len(token_bytes) > 0xFFFF:
            raise ChunkLogError(
                f"token of {len(token_bytes)} bytes exceeds the 64 KiB "
                "format limit"
            )
        crc = _record_crc(token_bytes, payload, benefit)
        stored = payload
        if payload and self.torn_hook is not None and self.torn_hook(token):
            torn = bytearray(payload)
            torn[-1] ^= 0xFF
            stored = bytes(torn)
        with self._lock, witness("l2"):
            self._ensure_open()
            pages = self._charge_write(
                record_length(token, payload), kind="append"
            )
            if stored is not payload:
                self.stats.torn_writes += 1
            conn = self._require_conn()
            conn.execute(
                "INSERT OR REPLACE INTO records"
                " (token, benefit, payload, crc, seq) VALUES (?, ?, ?, ?, ?)",
                (token, benefit, stored, crc, self._seq),
            )
            conn.commit()
            self._manifest.pop(token, None)
            self._manifest[token] = _Row(
                benefit=benefit,
                payload_len=len(payload),
                page_start=self.disk.num_pages - pages,
                pages=pages,
            )
            self._seq += 1
            return pages

    def delete(self, token: str) -> bool:
        """Durably drop a live token (charged); returns whether it was live."""
        with self._lock, witness("l2"):
            self._ensure_open()
            if token not in self._manifest:
                return False
            self._charge_write(record_length(token), kind="tombstone")
            conn = self._require_conn()
            conn.execute("DELETE FROM records WHERE token = ?", (token,))
            conn.commit()
            del self._manifest[token]
            return True

    def clear(self) -> int:
        """Durably drop every live token with one charged clear record."""
        with self._lock, witness("l2"):
            self._ensure_open()
            dropped = len(self._manifest)
            self._charge_write(record_length(""), kind="clear")
            conn = self._require_conn()
            conn.execute("DELETE FROM records")
            conn.commit()
            self._manifest.clear()
            return dropped

    def drop(self, token: str) -> bool:
        """Quarantine: remove a token from the manifest, memory only.

        The row stays in the table — the restart scan re-surfaces it
        and the next read re-quarantines it, same policy as the log.
        """
        with self._lock, witness("l2"):
            return self._manifest.pop(token, None) is not None

    # ------------------------------------------------------------------
    # Compaction (vacuous: updates happen in place)

    def compact(self) -> int:
        """No-op: in-place updates never accumulate dead space."""
        with self._lock, witness("l2"):
            self._ensure_open()
            return 0

    # ------------------------------------------------------------------
    # Reads

    def get(self, token: str) -> bytes:
        """Charged, CRC-verified read of a live token's payload."""
        with self._lock, witness("l2"):
            self._ensure_open()
            row = self._manifest.get(token)
            if row is None:
                raise ChunkLogError(f"token {token!r} is not live in the log")
            for page in range(row.page_start, row.page_start + row.pages):
                self.disk.read_page(page)
                self.stats.read_pages += 1
            self.stats.reads += 1
            return self._verified_payload(token, row)

    def peek(self, token: str) -> bytes:
        """Uncharged, verified read (no disk counters, no fault hooks)."""
        with self._lock, witness("l2"):
            row = self._manifest.get(token)
            if row is None:
                raise ChunkLogError(f"token {token!r} is not live in the log")
            return self._verified_payload(token, row)

    # ------------------------------------------------------------------
    # Introspection

    def __contains__(self, token: str) -> bool:
        with self._lock, witness("l2"):
            return token in self._manifest

    def __len__(self) -> int:
        with self._lock, witness("l2"):
            return len(self._manifest)

    def tokens(self) -> tuple[str, ...]:
        """Live tokens in (re-)insertion order — deterministic."""
        with self._lock, witness("l2"):
            return tuple(self._manifest)

    def scan_keys(self) -> tuple[tuple[str, float, int], ...]:
        """Live ``(token, benefit, payload_len)`` in insertion order."""
        with self._lock, witness("l2"):
            return tuple(
                (token, row.benefit, row.payload_len)
                for token, row in self._manifest.items()
            )

    def benefit(self, token: str) -> float:
        with self._lock, witness("l2"):
            row = self._manifest.get(token)
            if row is None:
                raise ChunkLogError(f"token {token!r} is not live in the log")
            return row.benefit

    def pages_for(self, token: str) -> int:
        """Pages one charged read of a live token will cost."""
        with self._lock, witness("l2"):
            row = self._manifest.get(token)
            if row is None:
                raise ChunkLogError(f"token {token!r} is not live in the log")
            return row.pages

    @property
    def live_bytes(self) -> int:
        """Total payload bytes across live records."""
        with self._lock, witness("l2"):
            return sum(r.payload_len for r in self._manifest.values())

    @property
    def live_pages(self) -> int:
        """Accounting pages charged for the currently live records."""
        with self._lock, witness("l2"):
            return sum(r.pages for r in self._manifest.values())

    @property
    def dead_pages(self) -> int:
        """Always ``0``: rows are replaced in place, never superseded."""
        return 0

    def counters(self) -> dict[str, int]:
        """Space gauges the tiered cache surfaces per tier."""
        with self._lock, witness("l2"):
            return {
                "live_pages": sum(
                    r.pages for r in self._manifest.values()
                ),
                "dead_pages": 0,
                "compactions": self.stats.compactions,
                "reclaimed_pages": self.stats.reclaimed_pages,
            }

    # ------------------------------------------------------------------
    # Fault points (the injector sets these; see docs/FAULTS.md)

    @property
    def write_hook(self) -> Callable[[int], float] | None:
        """Per-page write fault point (delegates to the accounting disk)."""
        return self.disk.write_hook

    @write_hook.setter
    def write_hook(self, hook: Callable[[int], float] | None) -> None:
        self.disk.write_hook = hook

    @property
    def read_hook(self) -> Callable[[int], float] | None:
        """Per-page read fault point (delegates to the accounting disk)."""
        return self.disk.read_hook

    @read_hook.setter
    def read_hook(self, hook: Callable[[int], float] | None) -> None:
        self.disk.read_hook = hook

    def close(self) -> None:
        """Commit and close the connection (idempotent).

        An in-memory database is *not* closed — closing would discard
        the only copy of the durable state; the backend just stops
        accepting operations until :meth:`reopen`.
        """
        with self._lock, witness("l2"):
            if self._closed:
                return
            self._closed = True
            if self._conn is not None and self.path is not None:
                self._conn.commit()
                self._conn.close()
                self._conn = None

    # ------------------------------------------------------------------
    # Internals (lock held)

    def _charge_write(self, length: int, kind: str) -> int:
        pages = self._pages_for(length)
        first = self.disk.allocate(pages)
        written = 0
        try:
            for page in range(first, first + pages):
                self.disk.write_page(page, b"")
                written += 1
        finally:
            if kind == "append":
                self.stats.append_pages += written
                if written == pages:
                    self.stats.appends += 1
            elif kind == "tombstone":
                self.stats.tombstone_pages += written
                if written == pages:
                    self.stats.tombstones += 1
            else:
                self.stats.clear_pages += written
                if written == pages:
                    self.stats.clears += 1
        return pages

    def _verified_payload(self, token: str, row: _Row) -> bytes:
        conn = self._require_conn()
        fetched = conn.execute(
            "SELECT benefit, payload, crc FROM records WHERE token = ?",
            (token,),
        ).fetchone()
        if fetched is None:
            raise ChunkLogError(f"token {token!r} is not live in the log")
        benefit, payload, crc = fetched
        token_bytes = token.encode("utf-8")
        if _record_crc(token_bytes, payload, benefit) != crc:
            self.stats.crc_failures += 1
            raise ChunkLogCorruption(
                f"chunk log record {token!r} failed its CRC-32 check "
                "(torn write)",
                token=token,
            )
        return bytes(payload)

    def _require_conn(self) -> sqlite3.Connection:
        if self._conn is None:
            raise ChunkLogError("chunk log is closed")
        return self._conn

    def _pages_for(self, length: int) -> int:
        return max(1, -(-length // self.disk.page_size))

    def _ensure_open(self) -> None:
        if self._closed:
            raise ChunkLogError("chunk log is closed")
