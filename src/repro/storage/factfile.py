"""The fact file: slot-free fixed-length record storage [RJZN97].

The paper stores the fact table in a *fact file*, a relational file
optimized for fixed-length fact-table records: no slot directory, a
deterministic number of records per page, and a fast path for *skipped
sequential access* (fetching an ascending list of record positions while
reading each page at most once).

:class:`FactFile` extends :class:`~repro.storage.heapfile.HeapFile` with
range reads by record position — the primitive the chunked file uses to
fetch one chunk as a contiguous page interval — and convenience column
accessors used when building bitmap indexes.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import FileFormatError
from repro.storage.heapfile import HeapFile

__all__ = ["FactFile"]


class FactFile(HeapFile):
    """Fixed-length record file with positional range reads.

    Inherits the dense :class:`~repro.storage.page.PackedPage` layout and
    all scan/positional reads from :class:`HeapFile`; adds contiguous range
    access, which is what gives chunked storage its "cost proportional to
    chunk size" property.
    """

    def read_range(self, start: int, count: int) -> np.ndarray:
        """Read ``count`` records starting at global position ``start``.

        Touches exactly ``ceil`` the spanned pages: for a range lying in
        ``p`` pages, ``p`` physical page reads (fewer with a warm buffer
        pool).
        """
        if count < 0:
            raise FileFormatError(f"negative record count {count}")
        if count == 0:
            return self.record_format.empty()
        if not 0 <= start or start + count > self._num_records:
            raise FileFormatError(
                f"range [{start}, {start + count}) out of file bounds "
                f"[0, {self._num_records})"
            )
        capacity = self.codec.capacity
        first_page = start // capacity
        last_page = (start + count - 1) // capacity
        parts: list[np.ndarray] = []
        for page_index in range(first_page, last_page + 1):
            records = self.read_file_page(page_index)
            page_start = page_index * capacity
            lo = max(start - page_start, 0)
            hi = min(start + count - page_start, len(records))
            parts.append(records[lo:hi])
        return np.concatenate(parts)

    def touch_range(self, start: int, count: int) -> int:
        """Charge the exact I/O of :meth:`read_range` without decoding.

        Requests the same pages, in the same order, through the same
        buffer pool / disk path as :meth:`read_range` — so counters,
        buffer-pool state and any installed read hook behave
        identically — but skips record decoding and slicing.  Used by
        accounting replays (the process-parallel serving engine) that
        need the read's cost but get the rows elsewhere.

        Returns:
            The number of records the equivalent :meth:`read_range`
            would have returned (``count``).
        """
        if count < 0:
            raise FileFormatError(f"negative record count {count}")
        if count == 0:
            return 0
        if not 0 <= start or start + count > self._num_records:
            raise FileFormatError(
                f"range [{start}, {start + count}) out of file bounds "
                f"[0, {self._num_records})"
            )
        capacity = self.codec.capacity
        first_page = start // capacity
        last_page = (start + count - 1) // capacity
        for page_index in range(first_page, last_page + 1):
            self._read(self._page_ids[page_index])
        return count

    def pages_for_range(self, start: int, count: int) -> int:
        """Pages a positional range read would touch, without reading."""
        if count <= 0:
            return 0
        capacity = self.codec.capacity
        first_page = start // capacity
        last_page = (start + count - 1) // capacity
        return last_page - first_page + 1

    def column(self, name: str) -> np.ndarray:
        """One whole column of the file (reads every page).

        Used when bulk-building bitmap indexes; per-column storage is not
        modelled (the paper's bitmaps are built offline too).
        """
        if name not in self.record_format.field_names:
            raise FileFormatError(
                f"no field {name!r} in {self.record_format!r}"
            )
        return self.read_all()[name]
