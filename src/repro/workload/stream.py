"""Query stream containers.

A :class:`QueryStream` bundles a generated list of queries with the mix
that produced it, so experiment reports can label results by stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.exceptions import ExperimentError
from repro.query.model import StarQuery
from repro.schema.star import StarSchema
from repro.workload.generator import LocalityMix, QueryGenerator

__all__ = ["QueryStream", "make_stream", "interleave_streams"]


@dataclass(frozen=True)
class QueryStream:
    """An immutable, labelled sequence of queries.

    Attributes:
        name: Stream label (usually the mix name: ``"EQPR"`` ...).
        queries: The queries in arrival order.
        mix: The locality mix that produced the stream, if any.
        seed: The generator seed, for reproducibility records.
    """

    name: str
    queries: tuple[StarQuery, ...]
    mix: LocalityMix | None = None
    seed: int | None = None

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[StarQuery]:
        return iter(self.queries)

    def __getitem__(self, index: int) -> StarQuery:
        return self.queries[index]


def make_stream(
    schema: StarSchema,
    mix: LocalityMix,
    num_queries: int,
    seed: int = 0,
    **generator_kwargs: object,
) -> QueryStream:
    """Generate a labelled stream for a schema under a locality mix.

    Any extra keyword arguments are forwarded to
    :class:`~repro.workload.generator.QueryGenerator`.
    """
    if num_queries < 1:
        raise ExperimentError(f"stream needs at least one query")
    generator = QueryGenerator(schema, seed=seed, **generator_kwargs)  # type: ignore[arg-type]
    queries = tuple(generator.stream(num_queries, mix))
    return QueryStream(name=mix.name, queries=queries, mix=mix, seed=seed)


def interleave_streams(
    name: str, streams: Sequence[QueryStream]
) -> QueryStream:
    """Round-robin interleaving of several users' streams.

    The paper notes that "queries may be issued from multiple query
    streams originating from multiple users" (Section 1); a shared
    middle-tier cache then serves them all.  Streams of different
    lengths are drained round-robin until every stream is exhausted.
    """
    if not streams:
        raise ExperimentError("interleave_streams needs at least one stream")
    queries: list[StarQuery] = []
    cursors = [0] * len(streams)
    remaining = sum(len(s) for s in streams)
    while remaining:
        for index, stream in enumerate(streams):
            if cursors[index] < len(stream):
                queries.append(stream[cursors[index]])
                cursors[index] += 1
                remaining -= 1
    return QueryStream(name=name, queries=tuple(queries))
