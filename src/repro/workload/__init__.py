"""Experiment inputs: synthetic data and locality-tunable query streams."""

from repro.workload.data import generate_dense_table, generate_fact_table
from repro.workload.generator import (
    EQPR,
    PROXIMITY,
    Q60,
    Q80,
    Q100,
    RANDOM,
    SESSION,
    LocalityMix,
    QueryGenerator,
)
from repro.workload.stream import QueryStream, interleave_streams, make_stream

__all__ = [
    "generate_fact_table",
    "generate_dense_table",
    "LocalityMix",
    "QueryGenerator",
    "RANDOM",
    "EQPR",
    "PROXIMITY",
    "Q60",
    "Q80",
    "Q100",
    "SESSION",
    "QueryStream",
    "make_stream",
    "interleave_streams",
]
