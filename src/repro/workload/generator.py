"""The OLAP query-stream generator (Section 6.1.2).

The paper drives its experiments with a generator producing three query
classes and mixing them with tunable probabilities:

- **random** queries — uniformly placed group-bys and range selections;
- **hot-region** queries — confined to a designated region holding 20 % of
  the cube (streams Q60/Q80/Q100 send 60/80/100 % of queries there);
- **proximity** queries — same level of aggregation as the previous query
  but with the selection shifted to adjacent members, modelling the
  hierarchical locality of drill-down/roll-up sessions.

Beyond the paper's three classes, the generator also produces **drill**
queries — explicit drill-down/roll-up steps whose selection follows the
hierarchy — to model the analyst sessions of Section 2.2 (used by the
prefetch ablation).

Mixes are given as a :class:`LocalityMix`; the paper's Table 2 presets
(``RANDOM``, ``EQPR``, ``PROXIMITY``), hot-region presets (``Q60``,
``Q80``, ``Q100``) and the session preset (``SESSION``) are module
constants.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import ExperimentError
from repro.query.model import StarQuery
from repro.query.predicates import Interval
from repro.schema.star import StarSchema

__all__ = [
    "LocalityMix",
    "RANDOM",
    "EQPR",
    "PROXIMITY",
    "Q60",
    "Q80",
    "Q100",
    "SESSION",
    "QueryGenerator",
]


@dataclass(frozen=True)
class LocalityMix:
    """Probabilities of the query classes in a stream.

    Attributes:
        proximity: Probability the next query is adjacent to the previous
            one (Table 2's "Proximity" column).
        hot: Probability the next query targets the hot region (the
            Q60/Q80/Q100 knob).
        drill: Probability the next query is a drill-down/roll-up step
            from the previous one (session-style hierarchical locality;
            an extension beyond Table 2).  The remainder is fully random.
        name: Label used in reports.
    """

    proximity: float = 0.0
    hot: float = 0.0
    drill: float = 0.0
    name: str = "custom"

    def __post_init__(self) -> None:
        for p in (self.proximity, self.hot, self.drill):
            if not 0 <= p <= 1:
                raise ExperimentError("mix probabilities must be in [0, 1]")
        total = self.proximity + self.hot + self.drill
        if total > 1:
            raise ExperimentError(
                f"mix probabilities sum to {total} > 1"
            )

    @property
    def random(self) -> float:
        """Probability of a fully random query."""
        return 1.0 - self.proximity - self.hot - self.drill


#: Table 2 presets.
RANDOM = LocalityMix(proximity=0.0, hot=0.0, name="Random")
EQPR = LocalityMix(proximity=0.5, hot=0.0, name="EQPR")
PROXIMITY = LocalityMix(proximity=0.8, hot=0.0, name="Proximity")

#: Hot-region presets (Section 6.1.2: N % of queries access 20 % of the cube).
Q60 = LocalityMix(proximity=0.0, hot=0.6, name="Q60")
Q80 = LocalityMix(proximity=0.0, hot=0.8, name="Q80")
Q100 = LocalityMix(proximity=0.0, hot=1.0, name="Q100")

#: Session-style preset: analyst drill-down/roll-up plus sideways moves
#: (Section 2.2's locality narrative; used by the prefetch ablation).
SESSION = LocalityMix(proximity=0.3, drill=0.5, name="Session")


class QueryGenerator:
    """Seeded generator of star-query streams with tunable locality.

    Args:
        schema: The star schema queried.
        seed: RNG seed (streams are fully reproducible).
        hot_fraction: Fraction of the cube covered by the hot region
            (0.2 in the paper); realized as one leaf interval per
            dimension with per-dimension fraction
            ``hot_fraction ** (1 / num_dimensions)``.
        select_probability: Probability each grouped dimension carries a
            range selection (hot queries always select, so they actually
            land in the region).
        width_fractions: ``(min, max)`` of a selection's width as a
            fraction of the level's domain.
        max_grouped_dims: At most this many dimensions appear in a
            GROUP BY (default: min(3, num_dimensions) — typical OLAP
            queries group by a few dimensions).
        aggregates: Aggregate list for all queries; defaults to each
            measure's default aggregate so the whole stream shares one
            cache-compatibility shape per group-by, as in the paper.
    """

    def __init__(
        self,
        schema: StarSchema,
        seed: int = 0,
        hot_fraction: float = 0.2,
        select_probability: float = 0.75,
        width_fractions: tuple[float, float] = (0.05, 0.4),
        max_grouped_dims: int | None = None,
        aggregates: Sequence[tuple[str, str]] | None = None,
    ) -> None:
        if not 0 < hot_fraction <= 1:
            raise ExperimentError(
                f"hot_fraction must be in (0, 1], got {hot_fraction}"
            )
        if not 0 <= select_probability <= 1:
            raise ExperimentError("select_probability must be in [0, 1]")
        lo, hi = width_fractions
        if not 0 < lo <= hi <= 1:
            raise ExperimentError(
                f"width_fractions must satisfy 0 < min <= max <= 1, "
                f"got {width_fractions}"
            )
        self.schema = schema
        self.rng = random.Random(seed)
        self.select_probability = select_probability
        self.width_fractions = width_fractions
        if max_grouped_dims is None:
            max_grouped_dims = min(3, schema.num_dimensions)
        if max_grouped_dims < 1:
            raise ExperimentError("max_grouped_dims must be >= 1")
        self.max_grouped_dims = min(max_grouped_dims, schema.num_dimensions)
        self.aggregates = (
            tuple(aggregates)
            if aggregates is not None
            else tuple(
                (m.name, m.default_aggregate) for m in schema.measures
            )
        )
        self.hot_leaf_intervals = self._place_hot_region(hot_fraction)
        self._previous: StarQuery | None = None

    # ------------------------------------------------------------------
    # Hot region placement
    # ------------------------------------------------------------------
    def _place_hot_region(self, hot_fraction: float) -> list[tuple[int, int]]:
        per_dim = hot_fraction ** (1.0 / self.schema.num_dimensions)
        intervals = []
        for dim in self.schema.dimensions:
            domain = dim.leaf_cardinality
            width = max(1, round(per_dim * domain))
            start = self.rng.randrange(0, domain - width + 1)
            intervals.append((start, start + width))
        return intervals

    # ------------------------------------------------------------------
    # Query classes
    # ------------------------------------------------------------------
    def random_query(self, hot: bool = False) -> StarQuery:
        """A fresh query; confined to the hot region when ``hot``."""
        num_grouped = self.rng.randint(1, self.max_grouped_dims)
        grouped = self.rng.sample(range(self.schema.num_dimensions), num_grouped)
        groupby = [0] * self.schema.num_dimensions
        selections: list[Interval] = [None] * self.schema.num_dimensions
        for pos in grouped:
            dim = self.schema.dimensions[pos]
            level = self.rng.randint(1, dim.leaf_level)
            groupby[pos] = level
            select = hot or self.rng.random() < self.select_probability
            if select:
                selections[pos] = self._random_interval(pos, level, hot)
        query = StarQuery.build(
            self.schema, groupby, selections, self.aggregates
        )
        self._previous = query
        return query

    def _random_interval(self, pos: int, level: int, hot: bool) -> Interval:
        dim = self.schema.dimensions[pos]
        domain: tuple[int, int]
        if hot:
            contained = dim.hierarchy.contained_interval(
                level, self.hot_leaf_intervals[pos]
            )
            if contained is None:
                # The hot region is narrower than one member at this level;
                # fall back to the member covering the region's start.
                leaf_lo = self.hot_leaf_intervals[pos][0]
                member = dim.hierarchy.ancestor_ordinal(
                    dim.leaf_level, leaf_lo, level
                )
                return (member, member + 1)
            domain = contained
        else:
            domain = (0, dim.cardinality(level))
        lo_f, hi_f = self.width_fractions
        span = domain[1] - domain[0]
        width_fraction = self.rng.uniform(lo_f, hi_f)
        width = max(1, min(span, round(width_fraction * span)))
        start = self.rng.randrange(domain[0], domain[1] - width + 1)
        return (start, start + width)

    def proximity_query(self, previous: StarQuery | None = None) -> StarQuery:
        """Adjacent-members variant of the previous query (Section 6.1.2).

        Keeps the level of aggregation and shifts every range selection by
        its own width toward a random side, clamped to the domain.  With no
        previous query (or one without selections) a random query is
        produced instead.
        """
        previous = previous or self._previous
        if previous is None or all(s is None for s in previous.selections):
            return self.random_query()
        selections: list[Interval] = []
        for dim, level, interval in zip(
            self.schema.dimensions, previous.groupby, previous.selections
        ):
            if level == 0 or interval is None:
                selections.append(None)
                continue
            lo, hi = interval
            width = hi - lo
            domain = dim.cardinality(level)
            shift = width if self.rng.random() < 0.5 else -width
            new_lo = min(max(lo + shift, 0), domain - width)
            selections.append((new_lo, new_lo + width))
        query = StarQuery.build(
            self.schema, previous.groupby, selections, self.aggregates
        )
        self._previous = query
        return query

    def drill_query(self, previous: StarQuery | None = None) -> StarQuery:
        """A drill-down or roll-up step from the previous query.

        Models the hierarchical locality of analyst sessions (Section 2.2:
        city -> store -> city ...): one grouped dimension moves one level
        finer (drill down) or coarser (roll up); its selection follows the
        hierarchy — descending maps the interval to the children's range,
        ascending maps it to the ancestors' range.  Falls back to a random
        query when there is no previous query or no legal move.
        """
        previous = previous or self._previous
        if previous is None:
            return self.random_query()
        moves: list[tuple[int, int]] = []  # (dim position, new level)
        for pos, (dim, level) in enumerate(
            zip(self.schema.dimensions, previous.groupby)
        ):
            if level == 0:
                continue
            if level < dim.leaf_level:
                moves.append((pos, level + 1))  # drill down
            if level > 1:
                moves.append((pos, level - 1))  # roll up
        if not moves:
            return self.random_query()
        pos, new_level = self.rng.choice(moves)
        dim = self.schema.dimensions[pos]
        old_level = previous.groupby[pos]
        groupby = list(previous.groupby)
        groupby[pos] = new_level
        selections = list(previous.selections)
        interval = selections[pos]
        if interval is not None:
            if new_level > old_level:
                selections[pos] = dim.map_range(
                    old_level, interval, new_level
                )
            else:
                lo = dim.ancestor_ordinal(old_level, interval[0], new_level)
                hi = dim.ancestor_ordinal(
                    old_level, interval[1] - 1, new_level
                )
                selections[pos] = (lo, hi + 1)
        query = StarQuery.build(
            self.schema, groupby, selections, self.aggregates
        )
        self._previous = query
        return query

    def hot_query(self) -> StarQuery:
        """A query confined to the hot region."""
        return self.random_query(hot=True)

    # ------------------------------------------------------------------
    # Streams
    # ------------------------------------------------------------------
    def next_query(self, mix: LocalityMix) -> StarQuery:
        """Draw one query according to a locality mix."""
        draw = self.rng.random()
        if draw < mix.proximity:
            return self.proximity_query()
        if draw < mix.proximity + mix.hot:
            return self.hot_query()
        if draw < mix.proximity + mix.hot + mix.drill:
            return self.drill_query()
        return self.random_query()

    def stream(self, num_queries: int, mix: LocalityMix) -> list[StarQuery]:
        """A list of ``num_queries`` queries under ``mix``."""
        if num_queries < 0:
            raise ExperimentError(f"negative stream length {num_queries}")
        return [self.next_query(mix) for _ in range(num_queries)]
