"""Synthetic fact-table generators.

The paper evaluates on randomly generated data: a 4-dimensional fact table
of 500 000 20-byte tuples under the Table 1 hierarchy shape, plus 2-D
tables of controlled *density* for the bitmap experiment of Section 4.2.
Both generators are seeded and fully deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ExperimentError
from repro.schema.star import StarSchema
from repro.storage.record import RecordFormat, fact_record_format

__all__ = ["generate_fact_table", "generate_dense_table"]


def generate_fact_table(
    schema: StarSchema,
    num_tuples: int,
    seed: int = 0,
    measure_low: float = 0.0,
    measure_high: float = 100.0,
) -> np.ndarray:
    """Uniformly random fact tuples for a schema.

    Each tuple draws an independent uniform leaf ordinal per dimension and
    uniform measure values — the paper's "generated randomly" dataset.

    Args:
        schema: The star schema.
        num_tuples: Number of fact tuples.
        seed: RNG seed.
        measure_low: Inclusive lower bound of measure values.
        measure_high: Exclusive upper bound of measure values.

    Returns:
        A structured array in :func:`~repro.storage.record.fact_record_format`.
    """
    if num_tuples < 0:
        raise ExperimentError(f"negative tuple count {num_tuples}")
    rng = np.random.default_rng(seed)
    fmt = fact_record_format(schema)
    records = fmt.empty(num_tuples)
    for dim in schema.dimensions:
        records[dim.name] = rng.integers(
            0, dim.leaf_cardinality, num_tuples, dtype=np.int64
        )
    for measure in schema.measures:
        records[measure.name] = rng.uniform(
            measure_low, measure_high, num_tuples
        )
    return records


def generate_dense_table(
    schema: StarSchema,
    density: float,
    tuples_per_cell: int = 1,
    seed: int = 0,
) -> np.ndarray:
    """Fact tuples occupying a controlled fraction of the leaf cell space.

    The bitmap analysis of Section 4.2 is parameterized by the data
    *density* ``d``: the fraction of possible dimension-value combinations
    (cells) that actually hold data.  This generator samples
    ``density * prod(leaf cardinalities)`` distinct cells without
    replacement and emits ``tuples_per_cell`` tuples for each, in random
    order (so a heap-file load is genuinely randomly ordered).

    Args:
        schema: The star schema.
        density: Fraction of leaf cells occupied, in ``(0, 1]``.
        tuples_per_cell: Tuples generated per occupied cell.
        seed: RNG seed.
    """
    if not 0 < density <= 1:
        raise ExperimentError(f"density must be in (0, 1], got {density}")
    if tuples_per_cell < 1:
        raise ExperimentError(
            f"tuples_per_cell must be >= 1, got {tuples_per_cell}"
        )
    rng = np.random.default_rng(seed)
    cardinalities = [dim.leaf_cardinality for dim in schema.dimensions]
    total_cells = int(np.prod([np.int64(c) for c in cardinalities]))
    num_cells = max(1, int(round(density * total_cells)))
    cells = rng.choice(total_cells, size=num_cells, replace=False)
    cells = np.repeat(cells, tuples_per_cell)
    rng.shuffle(cells)

    fmt = fact_record_format(schema)
    records = fmt.empty(len(cells))
    remaining = cells.astype(np.int64)
    for dim, cardinality in zip(
        reversed(schema.dimensions), reversed(cardinalities)
    ):
        remaining, ordinals = np.divmod(remaining, cardinality)
        records[dim.name] = ordinals
    for measure in schema.measures:
        records[measure.name] = rng.uniform(0.0, 100.0, len(cells))
    return records
