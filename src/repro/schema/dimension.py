"""Dimensions and the domain index.

A :class:`Dimension` couples a :class:`~repro.schema.hierarchy.Hierarchy`
(the level structure and fanout) with the actual member values at every
level.  Members are stored in *hierarchical order* (Section 3.3 of the
paper): the ordinal assigned to each member is its position in an ordering
where siblings are adjacent and subtrees are contiguous, so that data
clustered by ordinal is automatically clustered by the hierarchy.

The :class:`DomainIndex` is the paper's mapping structure between a
dimension value and its ordinal number (Figure 4).  Queries arrive with
member *values* (``scity = "Madison"``); the chunking machinery works with
*ordinals*; the domain index converts between the two in O(1).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.exceptions import SchemaError, UnknownMemberError
from repro.schema.hierarchy import Hierarchy

__all__ = ["DomainIndex", "Dimension"]


class DomainIndex:
    """Bidirectional value <-> ordinal mapping for one hierarchy level.

    Args:
        values: Member values in hierarchical order; ordinal ``i`` maps to
            ``values[i]``.  Values must be hashable and unique.
    """

    def __init__(self, values: Sequence[object]) -> None:
        self._values: tuple[object, ...] = tuple(values)
        self._ordinals: dict[object, int] = {
            value: i for i, value in enumerate(self._values)
        }
        if len(self._ordinals) != len(self._values):
            raise SchemaError("domain index values must be unique")

    def __len__(self) -> int:
        return len(self._values)

    def ordinal_of(self, value: object) -> int:
        """Ordinal of ``value``; raises :class:`UnknownMemberError` if absent."""
        try:
            return self._ordinals[value]
        except KeyError:
            raise UnknownMemberError(f"unknown member {value!r}") from None

    def value_of(self, ordinal: int) -> object:
        """Value at ``ordinal``; raises :class:`UnknownMemberError` if absent."""
        if not 0 <= ordinal < len(self._values):
            raise UnknownMemberError(
                f"ordinal {ordinal} out of range 0..{len(self._values) - 1}"
            )
        return self._values[ordinal]

    def __contains__(self, value: object) -> bool:
        return value in self._ordinals

    @property
    def values(self) -> tuple[object, ...]:
        """All member values in ordinal order."""
        return self._values


class Dimension:
    """A dimension: a hierarchy plus member values at every level.

    Args:
        name: Dimension name (``"product"``, ``"store"`` ...).
        hierarchy: The level structure.
        members: Optional mapping from level number to the sequence of
            member values at that level, in hierarchical order.  Levels not
            present get synthetic values ``"<name>/<level-name>/<ordinal>"``.

    The leaf level's ordinals are what the fact table stores as foreign
    keys; see :mod:`repro.workload.data`.
    """

    def __init__(
        self,
        name: str,
        hierarchy: Hierarchy,
        members: Mapping[int, Sequence[object]] | None = None,
    ) -> None:
        if not name:
            raise SchemaError("dimension name must be non-empty")
        self.name = name
        self.hierarchy = hierarchy
        members = dict(members or {})
        self._domain_indexes: dict[int, DomainIndex] = {}
        for level in hierarchy:
            if level.number in members:
                values = members.pop(level.number)
                if len(values) != level.cardinality:
                    raise SchemaError(
                        f"level {level.name!r} of dimension {name!r} expects "
                        f"{level.cardinality} members, got {len(values)}"
                    )
            else:
                values = [
                    f"{name}/{level.name}/{i}" for i in range(level.cardinality)
                ]
            self._domain_indexes[level.number] = DomainIndex(values)
        if members:
            raise SchemaError(
                f"members given for unknown levels {sorted(members)} "
                f"of dimension {name!r}"
            )

    # ------------------------------------------------------------------
    # Structure shortcuts
    # ------------------------------------------------------------------
    @property
    def num_levels(self) -> int:
        """Number of hierarchy levels."""
        return self.hierarchy.size

    @property
    def leaf_level(self) -> int:
        """Level number of the finest (fact-table) level."""
        return self.hierarchy.leaf_level

    @property
    def leaf_cardinality(self) -> int:
        """Number of distinct leaf members."""
        return self.hierarchy.cardinality(self.leaf_level)

    def cardinality(self, level: int) -> int:
        """Number of distinct members at ``level``."""
        return self.hierarchy.cardinality(level)

    def domain_index(self, level: int) -> DomainIndex:
        """The value <-> ordinal map for ``level``."""
        try:
            return self._domain_indexes[level]
        except KeyError:
            raise SchemaError(
                f"dimension {self.name!r} has no level {level}"
            ) from None

    # ------------------------------------------------------------------
    # Value/ordinal conversion
    # ------------------------------------------------------------------
    def ordinal_of(self, level: int, value: object) -> int:
        """Ordinal of a member value at ``level``."""
        return self.domain_index(level).ordinal_of(value)

    def value_of(self, level: int, ordinal: int) -> object:
        """Member value for ``ordinal`` at ``level``."""
        return self.domain_index(level).value_of(ordinal)

    # ------------------------------------------------------------------
    # Hierarchy navigation (ordinal space), delegated
    # ------------------------------------------------------------------
    def parent_ordinal(self, level: int, ordinal: int) -> int:
        """Parent ordinal at ``level - 1``."""
        return self.hierarchy.parent_ordinal(level, ordinal)

    def ancestor_ordinal(self, level: int, ordinal: int, target_level: int) -> int:
        """Ancestor ordinal at ``target_level`` (at or above ``level``)."""
        return self.hierarchy.ancestor_ordinal(level, ordinal, target_level)

    def children_range(self, level: int, ordinal: int) -> tuple[int, int]:
        """Child ordinal range ``[lo, hi)`` at ``level + 1``."""
        return self.hierarchy.children_range(level, ordinal)

    def descend_range(
        self, level: int, ordinal: int, target_level: int
    ) -> tuple[int, int]:
        """Descendant ordinal range at ``target_level`` (at or below)."""
        return self.hierarchy.descend_range(level, ordinal, target_level)

    def map_range(
        self, level: int, interval: tuple[int, int], target_level: int
    ) -> tuple[int, int]:
        """Map an ordinal interval down to a deeper level."""
        return self.hierarchy.map_range(level, interval, target_level)

    def leaf_range(self, level: int, ordinal: int) -> tuple[int, int]:
        """Leaf-ordinal range covered by one member at ``level``."""
        return self.hierarchy.descend_range(level, ordinal, self.leaf_level)

    def __repr__(self) -> str:
        return f"Dimension({self.name!r}, {self.hierarchy!r})"
