"""OLAP star-schema data model: hierarchies, dimensions, measures.

See Section 2.1 of the paper.  The public surface:

- :class:`~repro.schema.hierarchy.Level`, :class:`~repro.schema.hierarchy.Hierarchy`
- :class:`~repro.schema.dimension.Dimension`, :class:`~repro.schema.dimension.DomainIndex`
- :class:`~repro.schema.star.Measure`, :class:`~repro.schema.star.StarSchema`
- :func:`~repro.schema.builder.build_dimension`,
  :func:`~repro.schema.builder.build_star_schema`
"""

from repro.schema.builder import build_dimension, build_star_schema
from repro.schema.dimension import Dimension, DomainIndex
from repro.schema.hierarchy import Hierarchy, Level, even_child_starts
from repro.schema.star import GroupBy, Measure, StarSchema

__all__ = [
    "Level",
    "Hierarchy",
    "even_child_starts",
    "Dimension",
    "DomainIndex",
    "Measure",
    "StarSchema",
    "GroupBy",
    "build_dimension",
    "build_star_schema",
]
