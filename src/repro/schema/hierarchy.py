"""Dimension hierarchies.

A *hierarchy* arranges the members of a dimension into levels of increasing
detail.  Following the paper's convention (Table 1), **level numbers increase
toward finer detail**: level 1 is the most aggregated level and level
``size`` (the *leaf level*) holds the base members that appear in the fact
table.  For example a ``Store`` dimension might have::

    level 1: state      (few members)
    level 2: city
    level 3: store      (leaf: foreign key of the fact table)

The :class:`Hierarchy` object itself is purely structural — it records level
names and the parent/child fanout.  Member values and their hierarchical
ordering live in :class:`repro.schema.dimension.Dimension`.

The central invariant (Section 3.3 of the paper) is *hierarchical ordering*:
members at every level are assigned ordinals such that the children of each
parent occupy a **contiguous ordinal range** and parents appear in the same
order as their child blocks.  :class:`Hierarchy` stores this as a
``child_starts`` table and offers range-mapping helpers used by the chunking
machinery (:mod:`repro.chunks.ranges`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.exceptions import SchemaError

__all__ = ["Level", "Hierarchy"]


@dataclass(frozen=True)
class Level:
    """One level of a dimension hierarchy.

    Attributes:
        number: 1-based level number; 1 is the most aggregated level and
            the highest number is the leaf level.
        name: Human-readable level name (``"state"``, ``"city"`` ...).
        cardinality: Number of distinct members at this level.
    """

    number: int
    name: str
    cardinality: int

    def __post_init__(self) -> None:
        if self.number < 1:
            raise SchemaError(f"level number must be >= 1, got {self.number}")
        if self.cardinality < 1:
            raise SchemaError(
                f"level {self.name!r} must have at least one member, "
                f"got cardinality {self.cardinality}"
            )


class Hierarchy:
    """The level structure of a dimension plus parent/child fanout.

    Args:
        levels: Levels ordered from most aggregated (level 1) to leaf.
            Cardinalities must be non-decreasing from level to level.
        child_starts: For each non-leaf level ``l`` (index ``l - 1``), an
            integer sequence ``s`` of length ``cardinality(l) + 1`` with
            ``s[0] == 0`` and ``s[-1] == cardinality(l + 1)``; the children
            of parent ordinal ``i`` at level ``l + 1`` are the ordinals
            ``range(s[i], s[i + 1])``.  Every parent must have at least one
            child.  If omitted, an even split is generated.

    Raises:
        SchemaError: If the level structure or fanout table is inconsistent.
    """

    def __init__(
        self,
        levels: Sequence[Level],
        child_starts: Sequence[Sequence[int]] | None = None,
    ) -> None:
        if not levels:
            raise SchemaError("a hierarchy needs at least one level")
        numbers = [level.number for level in levels]
        if numbers != list(range(1, len(levels) + 1)):
            raise SchemaError(
                f"level numbers must be 1..{len(levels)} in order, got {numbers}"
            )
        for upper, lower in zip(levels, levels[1:]):
            if lower.cardinality < upper.cardinality:
                raise SchemaError(
                    f"level {lower.name!r} has fewer members "
                    f"({lower.cardinality}) than its parent level "
                    f"{upper.name!r} ({upper.cardinality})"
                )
        self._levels: tuple[Level, ...] = tuple(levels)

        if child_starts is None:
            child_starts = [
                even_child_starts(parent.cardinality, child.cardinality)
                for parent, child in zip(levels, levels[1:])
            ]
        self._child_starts: tuple[tuple[int, ...], ...] = tuple(
            tuple(starts) for starts in child_starts
        )
        self._validate_child_starts()

    def _validate_child_starts(self) -> None:
        if len(self._child_starts) != self.size - 1:
            raise SchemaError(
                f"expected {self.size - 1} child-start tables, "
                f"got {len(self._child_starts)}"
            )
        for level_no, starts in enumerate(self._child_starts, start=1):
            parent = self._levels[level_no - 1]
            child = self._levels[level_no]
            if len(starts) != parent.cardinality + 1:
                raise SchemaError(
                    f"child_starts for level {level_no} must have "
                    f"{parent.cardinality + 1} entries, got {len(starts)}"
                )
            if starts[0] != 0 or starts[-1] != child.cardinality:
                raise SchemaError(
                    f"child_starts for level {level_no} must span "
                    f"[0, {child.cardinality}], got "
                    f"[{starts[0]}, {starts[-1]}]"
                )
            for i, (lo, hi) in enumerate(zip(starts, starts[1:])):
                if hi <= lo:
                    raise SchemaError(
                        f"parent ordinal {i} at level {level_no} has no "
                        f"children (starts {lo} >= {hi})"
                    )

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of levels (the paper's *hiersize*)."""
        return len(self._levels)

    @property
    def leaf_level(self) -> int:
        """The finest level number (members stored in the fact table)."""
        return len(self._levels)

    @property
    def levels(self) -> tuple[Level, ...]:
        """All levels, most aggregated first."""
        return self._levels

    def level(self, number: int) -> Level:
        """Return the :class:`Level` with the given 1-based number."""
        self._check_level(number)
        return self._levels[number - 1]

    def cardinality(self, number: int) -> int:
        """Number of distinct members at level ``number``."""
        return self.level(number).cardinality

    def _check_level(self, number: int) -> None:
        if not 1 <= number <= self.size:
            raise SchemaError(
                f"level {number} out of range 1..{self.size}"
            )

    def __iter__(self) -> Iterator[Level]:
        return iter(self._levels)

    def __repr__(self) -> str:
        parts = ", ".join(f"{lv.name}({lv.cardinality})" for lv in self._levels)
        return f"Hierarchy[{parts}]"

    # ------------------------------------------------------------------
    # Ordinal navigation
    # ------------------------------------------------------------------
    def children_range(self, level: int, ordinal: int) -> tuple[int, int]:
        """Ordinal range ``[lo, hi)`` of the children at ``level + 1``.

        Args:
            level: Parent level number (must be below the leaf level).
            ordinal: Parent ordinal at ``level``.
        """
        self._check_level(level)
        if level == self.leaf_level:
            raise SchemaError("leaf level has no children")
        self._check_ordinal(level, ordinal)
        starts = self._child_starts[level - 1]
        return starts[ordinal], starts[ordinal + 1]

    def parent_ordinal(self, level: int, ordinal: int) -> int:
        """Ordinal at ``level - 1`` of the parent of a member at ``level``."""
        self._check_level(level)
        if level == 1:
            raise SchemaError("level 1 has no parent level")
        self._check_ordinal(level, ordinal)
        starts = self._child_starts[level - 2]
        return _interval_index(starts, ordinal)

    def ancestor_ordinal(self, level: int, ordinal: int, target_level: int) -> int:
        """Ordinal of the ancestor of ``(level, ordinal)`` at ``target_level``.

        ``target_level`` must be at or above ``level``; when equal, the
        ordinal is returned unchanged.
        """
        self._check_level(level)
        self._check_level(target_level)
        if target_level > level:
            raise SchemaError(
                f"target level {target_level} is below source level {level}"
            )
        current = ordinal
        for lv in range(level, target_level, -1):
            current = self.parent_ordinal(lv, current)
        return current

    def descend_range(
        self, level: int, ordinal: int, target_level: int
    ) -> tuple[int, int]:
        """Contiguous ordinal range at ``target_level`` under one member.

        Because of hierarchical ordering, the descendants of any member form
        a contiguous block at every deeper level; this returns that block as
        ``[lo, hi)``.  ``target_level`` must be at or below ``level``.
        """
        return self.map_range(level, (ordinal, ordinal + 1), target_level)

    def map_range(
        self, level: int, interval: tuple[int, int], target_level: int
    ) -> tuple[int, int]:
        """Map an ordinal interval ``[lo, hi)`` down to ``target_level``.

        The result covers exactly the descendants of the interval's members.
        """
        self._check_level(level)
        self._check_level(target_level)
        lo, hi = interval
        if not 0 <= lo < hi <= self.cardinality(level):
            raise SchemaError(
                f"interval [{lo}, {hi}) out of range at level {level}"
            )
        if target_level < level:
            raise SchemaError(
                f"target level {target_level} is above source level {level}; "
                "use ancestor_ordinal to roll up"
            )
        for lv in range(level, target_level):
            starts = self._child_starts[lv - 1]
            lo, hi = starts[lo], starts[hi]
        return lo, hi

    def contained_interval(
        self, level: int, leaf_interval: tuple[int, int]
    ) -> tuple[int, int] | None:
        """Largest ordinal interval at ``level`` fully inside a leaf interval.

        Returns the half-open interval of members at ``level`` whose entire
        descendant blocks lie within ``leaf_interval``, or None when no
        member fits.  Used to confine aggregated-level selections to a hot
        region defined in leaf space.
        """
        self._check_level(level)
        leaf_lo, leaf_hi = leaf_interval
        leaf = self.leaf_level
        if not 0 <= leaf_lo < leaf_hi <= self.cardinality(leaf):
            raise SchemaError(
                f"leaf interval [{leaf_lo}, {leaf_hi}) out of range"
            )
        cardinality = self.cardinality(level)
        # First member whose block starts at or after leaf_lo.
        lo, hi = 0, cardinality
        while lo < hi:
            mid = (lo + hi) // 2
            if self.descend_range(level, mid, leaf)[0] >= leaf_lo:
                hi = mid
            else:
                lo = mid + 1
        first = lo
        # Last member whose block ends at or before leaf_hi.
        lo, hi = 0, cardinality
        while lo < hi:
            mid = (lo + hi) // 2
            if self.descend_range(level, mid, leaf)[1] <= leaf_hi:
                lo = mid + 1
            else:
                hi = mid
        last = lo
        if first >= last:
            return None
        return (first, last)

    def _check_ordinal(self, level: int, ordinal: int) -> None:
        if not 0 <= ordinal < self.cardinality(level):
            raise SchemaError(
                f"ordinal {ordinal} out of range at level {level} "
                f"(cardinality {self.cardinality(level)})"
            )


def even_child_starts(parents: int, children: int) -> tuple[int, ...]:
    """Distribute ``children`` members over ``parents`` as evenly as possible.

    Returns the ``child_starts`` table: entry ``i`` is the first child
    ordinal of parent ``i``.  The first ``children % parents`` parents get
    one extra child.

    >>> even_child_starts(3, 7)
    (0, 3, 5, 7)
    """
    if parents < 1:
        raise SchemaError("need at least one parent")
    if children < parents:
        raise SchemaError(
            f"cannot give {parents} parents at least one child each "
            f"from {children} children"
        )
    base, extra = divmod(children, parents)
    starts = [0]
    for i in range(parents):
        starts.append(starts[-1] + base + (1 if i < extra else 0))
    return tuple(starts)


def _interval_index(starts: Sequence[int], value: int) -> int:
    """Index ``i`` such that ``starts[i] <= value < starts[i + 1]``.

    ``starts`` must be strictly increasing; binary search.
    """
    lo, hi = 0, len(starts) - 1
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if starts[mid] <= value:
            lo = mid
        else:
            hi = mid
    return lo
