"""Star schema: dimensions plus fact-table measures.

In a star schema (Section 2.1 of the paper) a *fact table* stores one
foreign-key column per dimension (the leaf-level ordinal) and one column per
*measure* (the numeric values being aggregated, e.g. ``dollar_sales``).
:class:`StarSchema` ties together the :class:`~repro.schema.dimension.Dimension`
objects and :class:`Measure` definitions and answers structural questions the
rest of the library needs (group-by spaces, cube sizes, column layout).

A *group-by* (level of aggregation) is represented throughout the library as
a tuple of level numbers, one per dimension, where level ``0`` means the
dimension is aggregated away entirely (the ``ALL`` level) and level
``dimension.leaf_level`` is full detail.  The base fact table itself is the
group-by ``tuple(d.leaf_level for d in dims)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.exceptions import SchemaError
from repro.schema.dimension import Dimension

__all__ = ["Measure", "StarSchema", "GroupBy"]

#: A level of aggregation: one level number per dimension, 0 == ALL.
GroupBy = tuple[int, ...]


@dataclass(frozen=True)
class Measure:
    """A numeric fact-table column.

    Attributes:
        name: Column name (``"dollar_sales"``).
        dtype: Numpy dtype string for storage (default 8-byte float).
        default_aggregate: Aggregate applied when a query does not name one
            (``"sum"``, ``"count"``, ``"min"``, ``"max"``, ``"avg"``).
    """

    name: str
    dtype: str = "f8"
    default_aggregate: str = "sum"

    _ALLOWED_AGGREGATES = ("sum", "count", "min", "max", "avg")

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("measure name must be non-empty")
        if self.default_aggregate not in self._ALLOWED_AGGREGATES:
            raise SchemaError(
                f"unknown aggregate {self.default_aggregate!r}; expected one "
                f"of {self._ALLOWED_AGGREGATES}"
            )


class StarSchema:
    """A star schema: ordered dimensions and measures.

    Args:
        dimensions: The dimensions, in fact-table column order.
        measures: At least one measure.
        name: Optional schema name used in messages.
    """

    def __init__(
        self,
        dimensions: Sequence[Dimension],
        measures: Sequence[Measure],
        name: str = "star",
    ) -> None:
        if not dimensions:
            raise SchemaError("a star schema needs at least one dimension")
        if not measures:
            raise SchemaError("a star schema needs at least one measure")
        names = [d.name for d in dimensions]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate dimension names in {names}")
        mnames = [m.name for m in measures]
        if len(set(mnames)) != len(mnames):
            raise SchemaError(f"duplicate measure names in {mnames}")
        overlap = set(names) & set(mnames)
        if overlap:
            raise SchemaError(
                f"names used for both a dimension and a measure: {overlap}"
            )
        self.name = name
        self.dimensions: tuple[Dimension, ...] = tuple(dimensions)
        self.measures: tuple[Measure, ...] = tuple(measures)
        self._dim_index = {d.name: i for i, d in enumerate(self.dimensions)}
        self._measure_index = {m.name: i for i, m in enumerate(self.measures)}

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def num_dimensions(self) -> int:
        """Number of dimensions."""
        return len(self.dimensions)

    def dimension(self, name: str) -> Dimension:
        """Dimension by name."""
        try:
            return self.dimensions[self._dim_index[name]]
        except KeyError:
            raise SchemaError(f"no dimension named {name!r}") from None

    def dimension_position(self, name: str) -> int:
        """Column position of a dimension in the fact table."""
        try:
            return self._dim_index[name]
        except KeyError:
            raise SchemaError(f"no dimension named {name!r}") from None

    def measure(self, name: str) -> Measure:
        """Measure by name."""
        try:
            return self.measures[self._measure_index[name]]
        except KeyError:
            raise SchemaError(f"no measure named {name!r}") from None

    def measure_position(self, name: str) -> int:
        """Column position of a measure among the measures."""
        try:
            return self._measure_index[name]
        except KeyError:
            raise SchemaError(f"no measure named {name!r}") from None

    def has_measure(self, name: str) -> bool:
        """Whether ``name`` is a measure of this schema."""
        return name in self._measure_index

    # ------------------------------------------------------------------
    # Group-by space
    # ------------------------------------------------------------------
    @property
    def base_groupby(self) -> GroupBy:
        """The group-by of the base fact table (leaf level everywhere)."""
        return tuple(d.leaf_level for d in self.dimensions)

    def validate_groupby(self, groupby: Sequence[int]) -> GroupBy:
        """Check a group-by tuple against the schema and normalize it.

        Raises:
            SchemaError: On wrong arity or out-of-range levels.
        """
        groupby = tuple(groupby)
        if len(groupby) != self.num_dimensions:
            raise SchemaError(
                f"group-by {groupby} has {len(groupby)} entries; schema has "
                f"{self.num_dimensions} dimensions"
            )
        for dim, level in zip(self.dimensions, groupby):
            if not 0 <= level <= dim.leaf_level:
                raise SchemaError(
                    f"level {level} out of range 0..{dim.leaf_level} for "
                    f"dimension {dim.name!r}"
                )
        return groupby

    def all_groupbys(self) -> Iterator[GroupBy]:
        """Every group-by in the cube lattice, base first is NOT guaranteed.

        Yields all ``prod(leaf_level_i + 1)`` combinations in row-major
        order over dimension levels.
        """
        def recurse(
            prefix: tuple[int, ...], rest: Sequence[Dimension]
        ) -> Iterator[GroupBy]:
            if not rest:
                yield prefix
                return
            head, tail = rest[0], rest[1:]
            for level in range(head.leaf_level + 1):
                yield from recurse(prefix + (level,), tail)

        yield from recurse((), self.dimensions)

    def num_groupbys(self) -> int:
        """Size of the cube lattice."""
        return math.prod(d.leaf_level + 1 for d in self.dimensions)

    def groupby_cardinality(self, groupby: Sequence[int]) -> int:
        """Upper bound on result rows of a group-by (product of level sizes).

        Aggregated-away dimensions (level 0) contribute a factor of 1.
        """
        groupby = self.validate_groupby(groupby)
        result = 1
        for dim, level in zip(self.dimensions, groupby):
            if level > 0:
                result *= dim.cardinality(level)
        return result

    def cube_cardinality(self) -> int:
        """Total result rows over the whole cube lattice (upper bound).

        This is the paper's "cube size" in tuples; multiply by a tuple size
        to obtain bytes (the paper's 300 MB figure).
        """
        return sum(self.groupby_cardinality(g) for g in self.all_groupbys())

    def is_rollup_of(self, coarse: Sequence[int], fine: Sequence[int]) -> bool:
        """Whether ``coarse`` can be computed from ``fine`` by aggregation.

        True iff every dimension's level in ``coarse`` is at or above the
        corresponding level in ``fine`` (numerically ``<=``).
        """
        coarse = self.validate_groupby(coarse)
        fine = self.validate_groupby(fine)
        return all(c <= f for c, f in zip(coarse, fine))

    def __repr__(self) -> str:
        dims = ", ".join(d.name for d in self.dimensions)
        measures = ", ".join(m.name for m in self.measures)
        return f"StarSchema({self.name!r}, dims=[{dims}], measures=[{measures}])"
