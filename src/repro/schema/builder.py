"""Builders for synthetic dimensions and schemas.

The paper evaluates on a randomly generated 4-dimensional dataset whose
hierarchy shape is given by Table 1 (reproduced in
:data:`repro.experiments.configs.TABLE1_CARDINALITIES`).  These helpers turn
such cardinality lists into fully wired :class:`~repro.schema.dimension.Dimension`
objects, with either an even fanout or a seeded random fanout, and assemble
them into a :class:`~repro.schema.star.StarSchema`.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.exceptions import SchemaError
from repro.schema.dimension import Dimension
from repro.schema.hierarchy import Hierarchy, Level, even_child_starts
from repro.schema.star import Measure, StarSchema

__all__ = [
    "build_dimension",
    "random_child_starts",
    "build_star_schema",
]


def build_dimension(
    name: str,
    cardinalities: Sequence[int],
    level_names: Sequence[str] | None = None,
    fanout: str = "even",
    seed: int | None = None,
) -> Dimension:
    """Build a dimension from per-level cardinalities.

    Args:
        name: Dimension name.
        cardinalities: Members per level, most aggregated first (the layout
            of the paper's Table 1 columns).
        level_names: Optional level names; defaults to ``L1``, ``L2``...
        fanout: ``"even"`` for an even child distribution or ``"random"``
            for a seeded random one (every parent keeps >= 1 child).
        seed: Seed for the random fanout; ignored for ``"even"``.

    Returns:
        A :class:`Dimension` with synthetic member values.
    """
    if not cardinalities:
        raise SchemaError("cardinalities must be non-empty")
    if level_names is None:
        level_names = [f"L{i}" for i in range(1, len(cardinalities) + 1)]
    if len(level_names) != len(cardinalities):
        raise SchemaError(
            f"{len(level_names)} level names for {len(cardinalities)} levels"
        )
    levels = [
        Level(number=i, name=level_name, cardinality=card)
        for i, (level_name, card) in enumerate(
            zip(level_names, cardinalities), start=1
        )
    ]
    if fanout == "even":
        child_starts = [
            even_child_starts(p, c)
            for p, c in zip(cardinalities, cardinalities[1:])
        ]
    elif fanout == "random":
        rng = random.Random(seed)
        child_starts = [
            random_child_starts(p, c, rng)
            for p, c in zip(cardinalities, cardinalities[1:])
        ]
    else:
        raise SchemaError(f"unknown fanout {fanout!r}; use 'even' or 'random'")
    hierarchy = Hierarchy(levels, child_starts)
    return Dimension(name, hierarchy)


def random_child_starts(
    parents: int, children: int, rng: random.Random
) -> tuple[int, ...]:
    """A random child-starts table giving every parent at least one child.

    Chooses ``parents - 1`` distinct cut points among the ``children - 1``
    interior gaps, so block sizes are uniformly random subject to the
    at-least-one-child constraint.
    """
    if children < parents:
        raise SchemaError(
            f"cannot give {parents} parents at least one child each "
            f"from {children} children"
        )
    if parents == 1:
        return (0, children)
    cuts = sorted(rng.sample(range(1, children), parents - 1))
    return (0, *cuts, children)


def build_star_schema(
    dimension_cardinalities: Sequence[Sequence[int]],
    measure_names: Sequence[str] = ("value",),
    dimension_names: Sequence[str] | None = None,
    fanout: str = "even",
    seed: int | None = None,
    name: str = "synthetic",
) -> StarSchema:
    """Build a full star schema from a list of cardinality lists.

    Args:
        dimension_cardinalities: One cardinality list per dimension, each
            most-aggregated-level first (one row of the paper's Table 1 is
            one column here).
        measure_names: Names of the (float, sum-aggregated) measures.
        dimension_names: Optional names; defaults to ``D0``, ``D1``...
        fanout: Passed through to :func:`build_dimension`.
        seed: Base seed; dimension ``i`` uses ``seed + i`` so random fanouts
            differ between dimensions yet stay reproducible.
        name: Schema name.
    """
    if dimension_names is None:
        dimension_names = [f"D{i}" for i in range(len(dimension_cardinalities))]
    if len(dimension_names) != len(dimension_cardinalities):
        raise SchemaError(
            f"{len(dimension_names)} names for "
            f"{len(dimension_cardinalities)} dimensions"
        )
    dimensions = [
        build_dimension(
            dim_name,
            cards,
            fanout=fanout,
            seed=None if seed is None else seed + i,
        )
        for i, (dim_name, cards) in enumerate(
            zip(dimension_names, dimension_cardinalities)
        )
    ]
    measures = [Measure(m) for m in measure_names]
    return StarSchema(dimensions, measures, name=name)
