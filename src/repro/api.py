"""The stable public facade: build a caching stack from one config.

Composing a working middle tier takes four layers in the right order —
schema → chunk geometry → loaded backend → cache → manager — and every
composition root used to wire them by hand (and drift apart in how).
This module is the one supported way in:

- :func:`build_stack` returns a fully wired :class:`Stack` (schema,
  chunk space, backend, cache, manager) for either caching scheme,
  driven by a frozen :class:`StackConfig`;
- :func:`build_backend` and :func:`build_cache` expose the two layers
  experiments sometimes need individually (multiple engines over one
  fact table, a shared sharded cache).

Everything here is **stable** API (see ``docs/API.md`` for the tier
definitions); the constructors it wraps remain importable but are
internal — reprolint rule R007 keeps in-tree composition roots on this
facade.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.cost import CostModel
from repro.backend.engine import BackendEngine
from repro.chunks.grid import ChunkSpace
from repro.core.cache import ChunkCache, ChunkStore
from repro.core.manager import ChunkCacheManager
from repro.core.tiered import TieredChunkCache
from repro.core.query_cache import QueryCacheManager
from repro.exceptions import StackError
from repro.schema.star import StarSchema
from repro.serve.session import PROCESSES, THREADS
from repro.serve.sharded import ShardedChunkCache
from repro.storage.chunklog import ChunkLog
from repro.storage.l2 import L2Backend
from repro.storage.sqlitelog import SqliteBackend

__all__ = [
    "CHUNK",
    "QUERY",
    "PROCESSES",
    "THREADS",
    "Stack",
    "StackConfig",
    "build_backend",
    "build_cache",
    "build_stack",
]

#: The paper's chunk-based caching scheme.
CHUNK = "chunk"
#: The query-level (containment) caching baseline.
QUERY = "query"


@dataclass(frozen=True)
class StackConfig:
    """Everything :func:`build_stack` needs beyond schema and data.

    Attributes:
        scheme: ``"chunk"`` (the paper's scheme) or ``"query"`` (the
            containment baseline).
        chunk_ratio: Chunk-size ratio for the chunk geometry (only used
            when no pre-built :class:`~repro.chunks.grid.ChunkSpace` is
            supplied).
        organization: Backend file organization (``"chunked"`` or
            ``"dimension"``); the chunk scheme requires ``"chunked"``.
        page_size: Backend page size in bytes.
        buffer_pool_pages: Backend buffer-pool capacity in pages.
        build_bitmaps: Build bitmap indexes at load time.
        cache_bytes: Cache byte budget.
        policy: Replacement policy name (``"lru"``, ``"clock"``,
            ``"benefit"``).
        num_shards: ``0`` builds a plain single-threaded
            :class:`~repro.core.cache.ChunkCache`; ``>= 1`` builds a
            lock-striped :class:`~repro.serve.ShardedChunkCache` with
            that many shards (required for the concurrent serving
            layer).  Chunk scheme only.
        aggregate_in_cache: Enable in-cache derivation (Section 7).
        prefetch_drilldown: Enable drill-down prefetching (implies
            derivation).  Chunk scheme only.
        miss_path: Query-scheme miss access path (``"auto"``,
            ``"bitmap"``, ``"scan"``).
        exec_mode: ``"threads"`` (the default — workers are threads
            sharing one backend engine, byte-for-byte the historical
            behavior) or ``"processes"`` — chunk payload compute runs
            in replica worker processes behind a
            :class:`~repro.serve.proc.ProcessComputeEngine` while the
            coordinator keeps authoritative accounting (see
            ``docs/PARALLEL.md``).  Chunk scheme only; requires fact
            ``records`` so each worker can build its replica.
        proc_workers: Worker-process count for ``exec_mode="processes"``.
        cache_tiers: ``1`` (the default — the historical in-memory-only
            cache, byte-for-byte unchanged) or ``2`` — the L1 store is
            wrapped in a :class:`~repro.core.tiered.TieredChunkCache`
            whose persistent L2 tier absorbs high-benefit evictions and
            promotes them back on demand (see ``docs/TIERING.md``).
            Chunk scheme only.
        persist_path: Backing file for the 2-tier chunk log.  ``None``
            keeps the log in memory (same semantics, no restart
            survival); only meaningful with ``cache_tiers=2``.  A
            pre-existing log is replayed and its manifest warms L1.
        demote_min_benefit: Minimum benefit an L1 eviction victim needs
            to be spilled to L2 (2-tier only); lower-value victims are
            dropped exactly as the 1-tier cache drops them.
        l2_backend: Which :class:`~repro.storage.l2.L2Backend` backs
            the persistent tier: ``"chunklog"`` (the default append-only
            :class:`~repro.storage.chunklog.ChunkLog`) or ``"sqlite"``
            (the stdlib :class:`~repro.storage.sqlitelog.SqliteBackend`,
            in-place updates, no dead space).  2-tier only.
        l2_budget_bytes: Cap on live payload bytes in the L2 backend;
            over-budget spills evict the lowest-benefit live records
            first (see ``docs/TIERING.md``).  ``None`` = unbounded.
            2-tier only.
        compact_threshold: Dead-space page ratio at which the tiered
            cache triggers a backend compaction (``ChunkLog`` only does
            real work; in-place backends have no dead space).  ``None``
            = never compact.  2-tier only.
    """

    scheme: str = CHUNK
    chunk_ratio: float = 0.1
    organization: str = "chunked"
    page_size: int = 4096
    buffer_pool_pages: int = 256
    build_bitmaps: bool = True
    cache_bytes: int = 1 << 20
    policy: str = "benefit"
    num_shards: int = 0
    aggregate_in_cache: bool = False
    prefetch_drilldown: bool = False
    miss_path: str = "auto"
    exec_mode: str = THREADS
    proc_workers: int = 4
    cache_tiers: int = 1
    persist_path: str | None = None
    demote_min_benefit: float = 0.0
    l2_backend: str = "chunklog"
    l2_budget_bytes: int | None = None
    compact_threshold: float | None = None


@dataclass(frozen=True)
class Stack:
    """One fully wired caching middle tier.

    Attributes:
        config: The configuration it was built from.
        schema: The star schema.
        space: The shared chunk geometry.
        backend: The loaded ground-truth engine.
        cache: The chunk store (``None`` for the query scheme, whose
            result cache lives inside its manager).
        manager: The scheme's cache manager — a
            :class:`~repro.pipeline.protocol.QueryAnswerer`.
    """

    config: StackConfig
    schema: StarSchema
    space: ChunkSpace
    backend: BackendEngine
    cache: ChunkStore | None
    manager: ChunkCacheManager | QueryCacheManager

    @property
    def chunk_manager(self) -> ChunkCacheManager:
        """The manager, asserted to be the chunk scheme's."""
        if not isinstance(self.manager, ChunkCacheManager):
            raise StackError(
                f"stack was built with scheme={self.config.scheme!r}, "
                "not the chunk scheme"
            )
        return self.manager

    @property
    def query_manager(self) -> QueryCacheManager:
        """The manager, asserted to be the query-caching baseline's."""
        if not isinstance(self.manager, QueryCacheManager):
            raise StackError(
                f"stack was built with scheme={self.config.scheme!r}, "
                "not the query scheme"
            )
        return self.manager

    def close(self) -> None:
        """Release execution resources (idempotent).

        A no-op for thread mode; in process mode it shuts the worker
        pool down.  Stacks built with ``exec_mode="processes"`` should
        always be closed when done.
        """
        close = getattr(self.backend, "close", None)
        if close is not None:
            close()
        cache_close = getattr(self.cache, "close", None)
        if cache_close is not None:
            cache_close()


def build_backend(
    schema: StarSchema,
    space: ChunkSpace,
    records: np.ndarray,
    organization: str = "chunked",
    page_size: int = 4096,
    buffer_pool_pages: int = 256,
    build_bitmaps: bool = True,
) -> BackendEngine:
    """Build and bulk-load a backend engine from raw fact records.

    The facade over :meth:`repro.backend.engine.BackendEngine.build`;
    load-time I/O is excluded from the engine's counters.  Exposed
    separately from :func:`build_stack` for experiments that compare
    several organizations over one fact table (Figure 14).
    """
    return BackendEngine.build(
        schema,
        space,
        records,
        organization=organization,
        page_size=page_size,
        buffer_pool_pages=buffer_pool_pages,
        build_bitmaps=build_bitmaps,
    )


def build_cache(config: StackConfig) -> ChunkStore:
    """Build the configured chunk store (plain, sharded, or tiered).

    ``cache_tiers=2`` wraps the L1 store in a
    :class:`~repro.core.tiered.TieredChunkCache` over a persistent
    :class:`~repro.storage.chunklog.ChunkLog`; when the backing file
    already holds live records, L1 is warmed from the L2 manifest
    (benefit-ranked) before the store is returned.
    """
    if config.cache_tiers not in (1, 2):
        raise StackError(
            f"cache_tiers must be 1 or 2, got {config.cache_tiers!r}"
        )
    if config.persist_path is not None and config.cache_tiers != 2:
        raise StackError(
            "persist_path is only meaningful with cache_tiers=2"
        )
    if config.l2_backend not in ("chunklog", "sqlite"):
        raise StackError(
            f"unknown l2_backend {config.l2_backend!r}; "
            "expected 'chunklog' or 'sqlite'"
        )
    if config.cache_tiers != 2:
        for name, value in (
            ("l2_budget_bytes", config.l2_budget_bytes),
            ("compact_threshold", config.compact_threshold),
        ):
            if value is not None:
                raise StackError(
                    f"{name} is only meaningful with cache_tiers=2"
                )
    l1: ChunkStore
    if config.num_shards > 0:
        l1 = ShardedChunkCache(
            config.cache_bytes,
            policy=config.policy,
            num_shards=config.num_shards,
        )
    else:
        l1 = ChunkCache(config.cache_bytes, config.policy)
    if config.cache_tiers == 1:
        return l1
    log: L2Backend
    if config.l2_backend == "sqlite":
        log = SqliteBackend(config.persist_path, page_size=config.page_size)
    else:
        log = ChunkLog(config.persist_path, page_size=config.page_size)
    tiered = TieredChunkCache(
        l1,
        log,
        demote_min_benefit=config.demote_min_benefit,
        l2_budget_bytes=config.l2_budget_bytes,
        compact_threshold=config.compact_threshold,
    )
    if log.recovery is not None and log.recovery.live_entries > 0:
        tiered.reopen()
    return tiered


def build_stack(
    schema: StarSchema,
    records: np.ndarray | None = None,
    config: StackConfig = StackConfig(),
    *,
    space: ChunkSpace | None = None,
    backend: BackendEngine | None = None,
    cache: ChunkStore | None = None,
    cost_model: CostModel | None = None,
) -> Stack:
    """Wire a complete caching stack per ``config``.

    Args:
        schema: The star schema.
        records: Raw fact records, required unless a loaded ``backend``
            is supplied.
        config: All composition knobs (scheme, geometry, budgets).
        space: Pre-built chunk geometry to share (defaults to a fresh
            ``ChunkSpace(schema, config.chunk_ratio)``).
        backend: Pre-built engine to reuse (several stacks over one
            loaded backend is the normal experiment shape).
        cache: Pre-built chunk store to use instead of
            :func:`build_cache` (chunk scheme only).
        cost_model: Override cost model (defaults to the paper's).

    Returns:
        The wired :class:`Stack`.
    """
    if config.scheme not in (CHUNK, QUERY):
        raise StackError(
            f"unknown caching scheme {config.scheme!r}; "
            f"expected {CHUNK!r} or {QUERY!r}"
        )
    if config.exec_mode not in (THREADS, PROCESSES):
        raise StackError(
            f"unknown exec_mode {config.exec_mode!r}; "
            f"expected {THREADS!r} or {PROCESSES!r}"
        )
    if config.cache_tiers != 1 and config.scheme != CHUNK:
        raise StackError(
            "cache_tiers=2 supports the chunk scheme only"
        )
    if space is None:
        space = ChunkSpace(schema, config.chunk_ratio)
    if backend is None:
        if records is None:
            raise StackError(
                "build_stack needs fact records unless a loaded "
                "backend is supplied"
            )
        backend = build_backend(
            schema,
            space,
            records,
            organization=config.organization,
            page_size=config.page_size,
            buffer_pool_pages=config.buffer_pool_pages,
            build_bitmaps=config.build_bitmaps,
        )
    if config.exec_mode == PROCESSES:
        # Imported here: the proc module builds worker replicas through
        # this facade, so a top-level import would be circular.
        from repro.serve.proc import ProcessComputeEngine

        if config.scheme != CHUNK:
            raise StackError(
                "exec_mode='processes' supports the chunk scheme only"
            )
        if records is None:
            raise StackError(
                "exec_mode='processes' needs the raw fact records to "
                "seed each worker's replica engine"
            )
        if not isinstance(backend, ProcessComputeEngine):
            backend = ProcessComputeEngine.launch(
                backend, records, num_workers=config.proc_workers
            )
    manager: ChunkCacheManager | QueryCacheManager
    if config.scheme == CHUNK:
        if cache is None:
            cache = build_cache(config)
        manager = ChunkCacheManager(
            schema,
            space,
            backend,
            cache,
            cost_model=cost_model,
            aggregate_in_cache=config.aggregate_in_cache,
            prefetch_drilldown=config.prefetch_drilldown,
        )
    else:
        if cache is not None:
            raise StackError(
                "the query scheme keeps its result cache inside the "
                "manager; a pre-built chunk store cannot be attached"
            )
        manager = QueryCacheManager(
            schema,
            backend,
            config.cache_bytes,
            cost_model=cost_model,
            policy=config.policy,
            miss_path=config.miss_path,
        )
    return Stack(
        config=config,
        schema=schema,
        space=space,
        backend=backend,
        cache=cache,
        manager=manager,
    )
