"""The backend relational engine.

:class:`BackendEngine` plays the role of the paper's PARADISE backend: it
owns the stored fact table (chunked or randomly ordered), the bitmap
indexes, and the buffer pool, and evaluates star-join requests:

- the **chunk interface** (:meth:`compute_chunks`) — compute requested
  chunks of any group-by by aggregating exactly the base chunks given by
  the closure property, read through the chunk index (Section 5.2.3);
- the **relational interface** (:meth:`answer`) — evaluate a whole
  :class:`~repro.query.model.StarQuery` via a bitmap-index selection or a
  full scan, the paths a conventional backend would use on a cache miss
  (Section 6.1.4 builds a bitmap index for the query-caching baseline).

Every method returns the result together with a
:class:`~repro.backend.plans.CostReport` of the physical work performed.

Thread safety
-------------
The engine's public entry points are serialized on one re-entrant lock
(:func:`_synchronized`): :func:`~repro.backend.plans.measure_cost`
brackets *global* disk counters, so two interleaved evaluations would
cross-charge each other's I/O.  The lock makes every cost window
disjoint — under the concurrent serving layer the sum of per-query
``pages_read`` equals the disk's total read delta exactly, which the
soak harness asserts.  Lock waits accumulate in ``lock_wait_seconds``
and are forwarded to ``lock_wait_recorder`` when a caller (the serving
layer) installs one; the backend itself knows nothing about traces.
"""

from __future__ import annotations

import functools
import threading
import time
from typing import Callable, Concatenate, Mapping, ParamSpec, Sequence, TypeVar

import numpy as np

from repro.backend.aggregate import (
    LevelMapper,
    aggregate_records,
    finalize_partials,
    partials_format_aggregates,
)
from repro.backend.plans import CostReport, measure_cost
from repro.chunks.closure import source_spans
from repro.chunks.grid import ChunkSpace
from repro.exceptions import BackendError, InjectedFault, QueryError
from repro.lockorder import witness
from repro.query.model import StarQuery
from repro.schema.star import GroupBy, StarSchema
from repro.storage.bitmap import BitmapIndex, combine_and
from repro.storage.buffer import BufferPool
from repro.storage.chunkedfile import ChunkedFile, tuple_chunk_numbers
from repro.storage.dimtable import DimensionTable
from repro.storage.disk import SimulatedDisk
from repro.storage.factfile import FactFile
from repro.storage.record import fact_record_format, groupby_record_format

__all__ = ["BackendEngine"]

#: Valid physical organizations of the stored fact table.
ORGANIZATIONS = ("chunked", "random")

_P = ParamSpec("_P")
_R = TypeVar("_R")


def _synchronized(
    method: Callable[Concatenate["BackendEngine", _P], _R],
) -> Callable[Concatenate["BackendEngine", _P], _R]:
    """Serialize one public entry point on the engine's big lock.

    The lock is re-entrant: ``answer(access_path="chunk")`` calls
    :meth:`~BackendEngine.compute_chunks` and ``explain`` calls the
    estimators, all under the outer acquisition.  Contended waits are
    counted and forwarded to the installed recorder (if any) so callers
    can attribute them.
    """

    @functools.wraps(method)
    def wrapper(
        self: "BackendEngine", *args: _P.args, **kwargs: _P.kwargs
    ) -> _R:
        start = time.perf_counter()
        self._lock.acquire()
        try:
            waited = time.perf_counter() - start
            self.lock_acquisitions += 1
            self.lock_wait_seconds += waited
            recorder = self.lock_wait_recorder
            if recorder is not None and waited > 0.0:
                recorder(waited)
            with witness("engine"):
                return method(self, *args, **kwargs)
        finally:
            self._lock.release()

    return wrapper


class BackendEngine:
    """A simulated relational backend over one fact table.

    Use :meth:`build` to construct a loaded engine from raw records.

    Args:
        schema: The star schema.
        space: Shared chunk geometry (must be the same object the middle
            tier uses, so both sides agree on chunk numbers).
        organization: ``"chunked"`` stores the fact table clustered by
            chunk number with a chunk index; ``"random"`` stores it in
            arrival order (the baseline of Figure 14).  The chunk
            interface requires ``"chunked"``.
        page_size: Disk page size in bytes.
        buffer_pool_pages: Buffer pool capacity in frames.
    """

    def __init__(
        self,
        schema: StarSchema,
        space: ChunkSpace,
        organization: str = "chunked",
        page_size: int = 4096,
        buffer_pool_pages: int = 256,
    ) -> None:
        if organization not in ORGANIZATIONS:
            raise BackendError(
                f"unknown organization {organization!r}; "
                f"expected one of {ORGANIZATIONS}"
            )
        self.schema = schema
        self.space = space
        self.organization = organization
        self.disk = SimulatedDisk(page_size)
        self.buffer_pool = BufferPool(self.disk, buffer_pool_pages)
        self.record_format = fact_record_format(schema)
        self.mapper = LevelMapper(schema)
        self.bitmaps: dict[str, BitmapIndex] = {}
        self.chunked_file: ChunkedFile | None = None
        self.fact_file: FactFile | None = None
        # Precomputed aggregate tables, chunk-organized (Section 2.4:
        # "These tables will also be stored in a chunked format").
        self.materialized: dict[GroupBy, ChunkedFile] = {}
        # Relational dimension tables (slotted pages), built at load.
        self.dimension_tables: dict[str, DimensionTable] = {}
        # Unclustered delta region holding appended tuples until the next
        # reorganize() — the functional stand-in for the paper's
        # "extra space kept in each chunk" for updates.
        self.delta_file: FactFile | None = None
        self._loaded = False
        # Big engine lock (see the module docstring).  Re-entrant so the
        # relational interface can route through the chunk interface.
        self._lock = threading.RLock()
        self.lock_wait_seconds = 0.0
        self.lock_acquisitions = 0
        # Optional hook (installed by the serving layer) receiving each
        # contended wait, e.g. the pipeline trace's blocked clock.
        self.lock_wait_recorder: Callable[[float], None] | None = None
        # Fault-injection hook (repro.faults installs it; production code
        # never does).  Called with the entry-point name; may raise a
        # BackendFault to simulate a query-level failure.
        self.fault_hook: Callable[[str], None] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        schema: StarSchema,
        space: ChunkSpace,
        records: np.ndarray,
        organization: str = "chunked",
        page_size: int = 4096,
        buffer_pool_pages: int = 256,
        build_bitmaps: bool = True,
    ) -> "BackendEngine":
        """Build and load an engine from raw fact records.

        Load-time I/O (bulk loads, index builds) is excluded from the
        engine's counters: they are reset before the engine is returned,
        matching the paper's setup where files are bulk-loaded offline.
        """
        engine = cls(
            schema, space, organization, page_size, buffer_pool_pages
        )
        engine.load(records, build_bitmaps=build_bitmaps)
        return engine

    def load(
        self,
        records: np.ndarray,
        build_bitmaps: bool = True,
        build_dimension_tables: bool = True,
    ) -> None:
        """Bulk-load the fact table, bitmap indexes and dimension tables."""
        if self._loaded:
            raise BackendError("engine is already loaded")
        if records.dtype != self.record_format.dtype:
            raise BackendError(
                f"records dtype {records.dtype} does not match fact format "
                f"{self.record_format.dtype}"
            )
        self.space.set_base_tuples(len(records))
        if self.organization == "chunked":
            self.chunked_file = ChunkedFile(
                self.disk, self.record_format, self.space, self.buffer_pool
            )
            self.chunked_file.bulk_load(records)
            self.fact_file = self.chunked_file.fact_file
            stored = self.chunked_file.read_all()
        else:
            self.fact_file = FactFile(
                self.disk, self.record_format, self.buffer_pool
            )
            self.fact_file.bulk_load(records)
            stored = records
        if build_bitmaps and len(stored):
            # Bitmap positions refer to the *stored* record order, so the
            # index is built from the file's physical layout.  An empty
            # table has nothing to index (bitmaps need >= 1 bit).
            for dim in self.schema.dimensions:
                self.bitmaps[dim.name] = BitmapIndex.build(
                    self.disk,
                    stored[dim.name],
                    dim.leaf_cardinality,
                    self.buffer_pool,
                )
        if build_dimension_tables:
            for dim in self.schema.dimensions:
                self.dimension_tables[dim.name] = DimensionTable.build(
                    self.disk, dim, self.buffer_pool
                )
        self._loaded = True
        self.buffer_pool.flush()
        self.buffer_pool.reset_stats()
        self.disk.reset_stats()

    def _require_loaded(self) -> None:
        if not self._loaded:
            raise BackendError("engine has not been loaded")

    @property
    def num_data_pages(self) -> int:
        """Pages of the stored fact table."""
        self._require_loaded()
        assert self.fact_file is not None
        return self.fact_file.num_pages

    @property
    def num_records(self) -> int:
        """Tuples in the fact table."""
        self._require_loaded()
        assert self.fact_file is not None
        return self.fact_file.num_records

    # ------------------------------------------------------------------
    # Materialized aggregate tables (Section 2.4)
    # ------------------------------------------------------------------
    @_synchronized
    def materialize(self, groupby: Sequence[int]) -> None:
        """Precompute one aggregate table and store it chunk-organized.

        The table holds the decomposable partials (sum/count/min/max per
        measure), clustered by its own group-by's chunk grid with a
        B-tree chunk index, so the chunk interface can compute any chunk
        of any coarser group-by from it with I/O proportional to the
        chunk — exactly as it does from the base table (Section 2.4:
        "Even statically precomputed aggregate tables can be organized on
        a chunk basis").  Build I/O is excluded from the counters
        (offline precomputation, like the initial bulk load).
        """
        self._require_loaded()
        if self.chunked_file is None:
            raise BackendError(
                "materialized tables require the chunked organization"
            )
        groupby = self.schema.validate_groupby(groupby)
        if groupby == self.schema.base_groupby:
            raise BackendError("the base table is already stored")
        if groupby in self.materialized:
            raise BackendError(f"group-by {groupby} already materialized")
        before = self.disk.stats.copy()
        stored = partials_format_aggregates(self.schema)
        rows = aggregate_records(
            self.schema,
            self.chunked_file.read_all(),
            groupby,
            stored,
            self.mapper,
        )
        table = ChunkedFile(
            self.disk,
            groupby_record_format(self.schema, groupby, stored),
            self.space,
            self.buffer_pool,
            groupby=groupby,
        )
        table.bulk_load(rows)
        self.materialized[groupby] = table
        delta = self.disk.stats.delta(before)
        self.disk.stats.reads -= delta.reads
        self.disk.stats.writes -= delta.writes
        self.disk.stats.fault_latency -= delta.fault_latency
        self.buffer_pool.flush()

    def _choose_source(
        self,
        groupby: GroupBy,
        leaf_filters: Sequence | None,
    ) -> tuple[GroupBy, ChunkedFile] | None:
        """The cheapest materialized table that can answer ``groupby``.

        Returns None when the base table must be used: no compatible
        materialized table exists, or the request carries leaf-level
        dimension filters (only evaluable against base tuples).
        """
        if leaf_filters is not None and any(
            f is not None for f in leaf_filters
        ):
            return None
        assert self.chunked_file is not None
        best: tuple[GroupBy, ChunkedFile] | None = None
        # Compare physical size: an aggregate table with fat partial
        # columns can be *larger* than the base table when aggregation
        # barely reduces the row count; the base then stays the cheaper
        # source.
        best_pages = self.chunked_file.num_pages
        for candidate, table in self.materialized.items():
            if not self.schema.is_rollup_of(groupby, candidate):
                continue
            if table.num_pages < best_pages:
                best = (candidate, table)
                best_pages = table.num_pages
        return best

    # ------------------------------------------------------------------
    # Chunk interface (Section 5.2.3)
    # ------------------------------------------------------------------
    @_synchronized
    def compute_chunks(
        self,
        groupby: Sequence[int],
        numbers: Sequence[int],
        aggregates: Sequence[tuple[str, str]],
        leaf_filters: Sequence | None = None,
        prefer_base: bool = False,
    ) -> tuple[dict[int, np.ndarray], CostReport]:
        """Compute the requested chunks of a group-by from source chunks.

        The source is the cheapest compatible materialized aggregate
        table if one exists, else the base table.  For each target chunk
        the closure property names the exact source chunks to aggregate;
        source chunks shared between targets are read once.
        ``leaf_filters`` (per-dimension leaf intervals) are the query's
        non-group-by selections, folded in before aggregating — they
        force the base-table source, and the resulting chunks are only
        cacheable under a key carrying the same filters.
        ``prefer_base`` forces the base-table source even when a cheaper
        materialized table exists — the degrade path the pipeline takes
        after an aggregate-level read fault.  Returns a mapping from
        chunk number to its aggregated rows (empty chunks map to empty
        arrays) and the combined cost.

        An :class:`~repro.exceptions.InjectedFault` escaping this method
        carries the attempt's :class:`CostReport` (``cost_report``) and
        the source level that faulted (``source_level``), so callers can
        conserve the wasted I/O and pick a recovery path.
        """
        self._require_loaded()
        if self.chunked_file is None:
            raise BackendError(
                "the chunk interface requires the chunked organization"
            )
        groupby = self.schema.validate_groupby(groupby)
        numbers = list(numbers)
        if prefer_base:
            source = None
        else:
            source = self._choose_source(groupby, leaf_filters)
        results: dict[int, np.ndarray] = {}
        try:
            with measure_cost(self.disk, access_path="chunk") as report:
                if self.fault_hook is not None:
                    self.fault_hook("compute_chunks")
                if source is None:
                    source_groupby: GroupBy = self.schema.base_groupby
                    source_file = self.chunked_file
                else:
                    source_groupby, source_file = source
                source_numbers = self._union_source_chunks(
                    groupby, numbers, source_groupby
                )
                source_records = source_file.read_chunks(source_numbers)
                if source is None:
                    delta = self._delta_for_base_chunks(set(source_numbers))
                    if len(delta):
                        source_records = np.concatenate(
                            [source_records, delta]
                        )
                report.tuples_scanned += len(source_records)
                report.chunks_computed += len(numbers)
                if source is None:
                    rows = aggregate_records(
                        self.schema,
                        source_records,
                        groupby,
                        aggregates,
                        self.mapper,
                        leaf_filters=leaf_filters,
                    )
                else:
                    rows = finalize_partials(
                        self.schema,
                        source_records,
                        source_groupby,
                        groupby,
                        aggregates,
                        self.mapper,
                    )
                target_grid = self.space.grid(groupby)
                row_numbers = tuple_chunk_numbers(
                    target_grid,
                    rows,
                    tuple(d.name for d in self.schema.dimensions),
                )
                wanted = set(numbers)
                for number in numbers:
                    results[number] = rows[row_numbers == number]
                # Rows landing in un-requested chunks can only arise from a
                # caller bug (source chunks exactly tile the targets).
                stray = set(np.unique(row_numbers).tolist()) - wanted
                if stray:
                    raise BackendError(
                        f"aggregated rows fell into unrequested chunks {stray}"
                    )
                report.result_tuples += sum(len(r) for r in results.values())
        except InjectedFault as fault:
            # measure_cost.__exit__ already ran, so ``report`` holds the
            # I/O of the failed attempt.  Attach it once (the innermost
            # computation wins when answer() routed through here).
            if fault.cost_report is None:
                fault.cost_report = report
                fault.source_level = (
                    "base" if source is None else "aggregate"
                )
            raise
        return results, report

    def _union_source_chunks(
        self,
        groupby: GroupBy,
        numbers: Sequence[int],
        source_groupby: GroupBy,
    ) -> list[int]:
        """Deduplicated, sorted source-chunk numbers covering all targets."""
        source_grid = self.space.grid(source_groupby)
        seen: set[int] = set()
        for number in numbers:
            spans = source_spans(
                self.space, groupby, number, source_groupby
            )
            seen.update(self._enumerate_spans(source_grid.strides, spans))
        return sorted(seen)

    def _union_base_chunks(
        self, groupby: GroupBy, numbers: Sequence[int]
    ) -> list[int]:
        """Deduplicated, sorted base-chunk numbers covering all targets."""
        return self._union_source_chunks(
            groupby, numbers, self.schema.base_groupby
        )

    @staticmethod
    def _enumerate_spans(
        strides: Sequence[int], spans: Sequence[tuple[int, int]]
    ) -> list[int]:
        numbers = [0]
        for stride, (lo, hi) in zip(strides, spans):
            numbers = [
                base + coord * stride
                for base in numbers
                for coord in range(lo, hi)
            ]
        return numbers

    def _estimation_source(
        self, groupby: GroupBy
    ) -> tuple[GroupBy, ChunkedFile]:
        """Resolve the source table chunk-work estimates read from."""
        self._require_loaded()
        if self.chunked_file is None:
            raise BackendError(
                "the chunk interface requires the chunked organization"
            )
        source = self._choose_source(groupby, None)
        if source is None:
            return self.schema.base_groupby, self.chunked_file
        return source

    @staticmethod
    def _source_chunk_work(
        source_file: ChunkedFile, source_numbers: Sequence[int]
    ) -> tuple[int, int]:
        """Sum ``(pages, tuples)`` over the given source chunks."""
        pages = 0
        tuples = 0
        for number in source_numbers:
            extent = source_file.chunk_extent_estimate(number)
            if extent is None:
                continue
            start, count = extent
            pages += source_file.fact_file.pages_for_range(start, count)
            tuples += count
        return pages, tuples

    @_synchronized
    def estimate_chunk_work(
        self, groupby: Sequence[int], numbers: Sequence[int]
    ) -> tuple[int, int]:
        """``(data_pages, source_tuples)`` computing these chunks would cost.

        Uses the same source selection as :meth:`compute_chunks`
        (materialized table when available), exact extents, deduplicated
        across shared source chunks, and free of side effects on the
        measured I/O counters.  Used by the cache layers for benefit and
        cost-saving accounting.
        """
        groupby = self.schema.validate_groupby(groupby)
        source_groupby, source_file = self._estimation_source(groupby)
        source_numbers = self._union_source_chunks(
            groupby, list(numbers), source_groupby
        )
        return self._source_chunk_work(source_file, source_numbers)

    @_synchronized
    def estimate_chunk_work_batch(
        self, groupby: Sequence[int], numbers: Sequence[int]
    ) -> dict[int, tuple[int, int]]:
        """Per-chunk ``(data_pages, source_tuples)`` in one backend call.

        Each chunk is priced independently (a source chunk shared by two
        targets is charged to both, exactly as one
        :meth:`estimate_chunk_work` call per chunk would), but the source
        table is resolved and the group-by validated only once for the
        whole batch.  This is the probe the middle tier's
        :class:`repro.pipeline.work.ChunkWorkEstimator` issues — at most
        once per query — instead of one call per chunk.
        """
        groupby = self.schema.validate_groupby(groupby)
        source_groupby, source_file = self._estimation_source(groupby)
        result: dict[int, tuple[int, int]] = {}
        for number in numbers:
            source_numbers = self._union_source_chunks(
                groupby, [number], source_groupby
            )
            result[number] = self._source_chunk_work(
                source_file, source_numbers
            )
        return result

    def estimate_chunk_pages(
        self, groupby: Sequence[int], numbers: Sequence[int]
    ) -> int:
        """Data pages computing these chunks would touch (no I/O done)."""
        pages, _ = self.estimate_chunk_work(groupby, numbers)
        return pages

    # ------------------------------------------------------------------
    # Updates (Section 5.3: "To allow for updates, some extra space can
    # be kept in each chunk.")
    # ------------------------------------------------------------------
    @_synchronized
    def append_records(self, records: np.ndarray) -> list[int]:
        """Append new fact tuples without reorganizing the chunked file.

        New tuples land in an unclustered *delta region*; every access
        path folds the delta in, so answers stay exact immediately.  The
        paper suggests per-chunk slack space for the same purpose — a
        delta region is the standard functional equivalent for a
        bulk-clustered file and keeps the main file's chunk -> page-range
        arithmetic intact.  Materialized aggregate tables are dropped
        (they no longer reflect the data); call :meth:`reorganize` to
        fold the delta into the clustered file and re-materialize.

        Returns:
            The sorted base-level chunk numbers the new tuples fall in —
            exactly the set a middle-tier cache must invalidate
            (:meth:`repro.core.manager.ChunkCacheManager.invalidate_base_chunks`).
        """
        self._require_loaded()
        if self.chunked_file is None:
            raise BackendError("updates require the chunked organization")
        if records.dtype != self.record_format.dtype:
            raise BackendError(
                f"records dtype {records.dtype} does not match fact format "
                f"{self.record_format.dtype}"
            )
        if len(records) == 0:
            return []
        if self.delta_file is None:
            self.delta_file = FactFile(
                self.disk, self.record_format, self.buffer_pool
            )
        before = self.disk.stats.copy()
        self.delta_file.bulk_load(records)
        delta = self.disk.stats.delta(before)
        self.disk.stats.writes -= delta.writes  # appends are write I/O the
        self.disk.stats.reads -= delta.reads    # experiments do not measure
        self.disk.stats.fault_latency -= delta.fault_latency
        self.materialized.clear()
        self.space.set_base_tuples(
            self.space.base_tuples + len(records)
        )
        numbers = tuple_chunk_numbers(
            self.space.base_grid,
            records,
            tuple(d.name for d in self.schema.dimensions),
        )
        return sorted(set(int(n) for n in numbers))

    def _delta_for_base_chunks(self, base_numbers: set[int]) -> np.ndarray:
        """Delta tuples falling into the given base chunks (reads the
        whole delta region — it is small between reorganizations)."""
        if self.delta_file is None or not self.delta_file.num_records:
            return self.record_format.empty()
        delta = self.delta_file.read_all()
        numbers = tuple_chunk_numbers(
            self.space.base_grid,
            delta,
            tuple(d.name for d in self.schema.dimensions),
        )
        keep = np.isin(numbers, np.fromiter(base_numbers, dtype=np.int64))
        return delta[keep]

    @_synchronized
    def reorganize(self) -> None:
        """Merge the delta region back into a freshly clustered file.

        Rebuilds the chunked file, its chunk index and the bitmap
        indexes over the combined data — the offline maintenance step
        that restores pure clustered access.  Excluded from the I/O
        counters like the initial bulk load.
        """
        self._require_loaded()
        if self.chunked_file is None:
            raise BackendError("updates require the chunked organization")
        if self.delta_file is None or not self.delta_file.num_records:
            return
        before = self.disk.stats.copy()
        combined = np.concatenate(
            [self.chunked_file.read_all(), self.delta_file.read_all()]
        )
        self.chunked_file = ChunkedFile(
            self.disk, self.record_format, self.space, self.buffer_pool
        )
        self.chunked_file.bulk_load(combined)
        self.fact_file = self.chunked_file.fact_file
        self.delta_file = None
        if self.bitmaps:
            stored = self.chunked_file.read_all()
            for dim in self.schema.dimensions:
                self.bitmaps[dim.name] = BitmapIndex.build(
                    self.disk,
                    stored[dim.name],
                    dim.leaf_cardinality,
                    self.buffer_pool,
                )
        delta = self.disk.stats.delta(before)
        self.disk.stats.reads -= delta.reads
        self.disk.stats.writes -= delta.writes
        self.disk.stats.fault_latency -= delta.fault_latency
        self.buffer_pool.flush()

    # ------------------------------------------------------------------
    # Relational interface
    # ------------------------------------------------------------------
    @_synchronized
    def answer(
        self, query: StarQuery, access_path: str = "auto"
    ) -> tuple[np.ndarray, CostReport]:
        """Evaluate a whole star query directly against the backend.

        Args:
            query: The analyzed query.
            access_path: ``"bitmap"``, ``"scan"``, ``"chunk"`` or
                ``"auto"`` (bitmap when any selection exists and bitmaps
                are built; otherwise scan).
        """
        self._require_loaded()
        if self.fault_hook is not None:
            self.fault_hook("answer")
        if access_path == "auto":
            has_selection = (
                any(s is not None for s in query.selections)
                or query.has_dim_filters()
            )
            access_path = (
                "bitmap" if has_selection and self.bitmaps else "scan"
            )
        if access_path == "bitmap":
            return self._answer_bitmap(query)
        if access_path == "scan":
            return self._answer_scan(query)
        if access_path == "chunk":
            return self._answer_chunks(query)
        raise BackendError(f"unknown access path {access_path!r}")

    def _answer_scan(self, query: StarQuery) -> tuple[np.ndarray, CostReport]:
        assert self.fact_file is not None
        with measure_cost(self.disk, access_path="scan") as report:
            records = self.fact_file.read_all()
            if self.delta_file is not None and self.delta_file.num_records:
                records = np.concatenate(
                    [records, self.delta_file.read_all()]
                )
            report.tuples_scanned += len(records)
            rows = aggregate_records(
                self.schema,
                records,
                query.groupby,
                query.aggregates,
                self.mapper,
                selection=query.selections,
                leaf_filters=query.effective_dim_filters(self.schema),
            )
            report.result_tuples += len(rows)
        return rows, report

    def _answer_bitmap(self, query: StarQuery) -> tuple[np.ndarray, CostReport]:
        assert self.fact_file is not None
        if not self.bitmaps:
            raise BackendError("bitmap indexes were not built")
        try:
            leaf_selection = query.leaf_selection(self.schema)
        except QueryError:
            # Selection and filter are provably disjoint: empty result,
            # no I/O.
            empty = query.result_format(self.schema).empty()
            return empty, CostReport(access_path="bitmap")
        restricted = [
            (dim.name, interval)
            for dim, interval in zip(self.schema.dimensions, leaf_selection)
            if interval is not None
        ]
        if not restricted:
            return self._answer_scan(query)
        with measure_cost(self.disk, access_path="bitmap") as report:
            masks = [
                self.bitmaps[name].select_range(lo, hi)
                for name, (lo, hi) in restricted
            ]
            mask = combine_and(masks)
            positions = BitmapIndex.positions(mask)
            records = self.fact_file.read_positions(positions)
            if self.delta_file is not None and self.delta_file.num_records:
                # Appended tuples are not in the bitmaps yet: scan the
                # (small) delta region and filter it directly.
                delta = self.delta_file.read_all()
                keep = np.ones(len(delta), dtype=bool)
                for dim, interval in zip(
                    self.schema.dimensions, leaf_selection
                ):
                    if interval is None:
                        continue
                    column = delta[dim.name]
                    keep &= (column >= interval[0]) & (
                        column < interval[1]
                    )
                records = np.concatenate([records, delta[keep]])
            report.tuples_scanned += len(records)
            rows = aggregate_records(
                self.schema,
                records,
                query.groupby,
                query.aggregates,
                self.mapper,
                selection=query.selections,
                leaf_filters=query.effective_dim_filters(self.schema),
            )
            report.result_tuples += len(rows)
        return rows, report

    def _answer_chunks(self, query: StarQuery) -> tuple[np.ndarray, CostReport]:
        grid = self.space.grid(query.groupby)
        numbers = grid.chunk_numbers_for_selection(query.selections)
        chunks, report = self.compute_chunks(
            query.groupby, numbers, query.aggregates,
            leaf_filters=query.effective_dim_filters(self.schema),
        )
        rows = _concat(
            [chunks[n] for n in numbers],
            query.result_format(self.schema).dtype,
        )
        rows = _filter_rows(self.schema, rows, query)
        report.result_tuples = len(rows)
        return rows, report

    @_synchronized
    def explain(
        self, query: StarQuery, access_path: str = "auto"
    ) -> dict[str, object]:
        """Describe how a query would be evaluated, without running it.

        Returns a dictionary with the resolved access path, the chunk
        decomposition (chunk interface), the chosen source table
        (base or materialized), and the estimated physical work — the
        inspection surface a query optimizer would log.
        """
        self._require_loaded()
        if access_path == "auto":
            has_selection = (
                any(s is not None for s in query.selections)
                or query.has_dim_filters()
            )
            access_path = (
                "bitmap" if has_selection and self.bitmaps else "scan"
            )
        plan: dict[str, object] = {
            "access_path": access_path, "groupby": query.groupby,
        }
        if access_path == "chunk" or self.chunked_file is not None:
            grid = self.space.grid(query.groupby)
            numbers = grid.chunk_numbers_for_selection(query.selections)
            filters = query.effective_dim_filters(self.schema)
            source = self._choose_source(query.groupby, filters)
            pages, tuples = self.estimate_chunk_work(
                query.groupby, numbers
            )
            plan["chunks"] = {
                "count": len(numbers),
                "source": (
                    "base" if source is None else f"materialized{source[0]}"
                ),
                "estimated_pages": pages,
                "estimated_tuples": tuples,
            }
        if access_path == "bitmap" and self.bitmaps:
            plan["estimated_bitmap_pages"] = self.estimate_bitmap_pages(
                query
            )
        if access_path == "scan":
            assert self.fact_file is not None
            plan["scan_pages"] = self.fact_file.num_pages
        return plan

    # ------------------------------------------------------------------
    # Estimation helpers for the cache layers
    # ------------------------------------------------------------------
    @_synchronized
    def estimate_bitmap_pages(self, query: StarQuery) -> int:
        """Expected page reads of the bitmap path (index + data pages).

        An estimate used for cost-saving accounting; uses bitmap sizes and
        the qualifying tuple count implied by the selection, assuming
        uniformly spread data (the workload generator's distribution).
        """
        self._require_loaded()
        assert self.fact_file is not None
        try:
            leaf_selection = query.leaf_selection(self.schema)
        except QueryError:
            return 0
        index_pages = 0
        fraction = 1.0
        for dim, interval in zip(self.schema.dimensions, leaf_selection):
            if interval is None:
                continue
            bitmap = self.bitmaps.get(dim.name)
            if bitmap is None:
                continue
            num_values = interval[1] - interval[0]
            index_pages += bitmap.pages_for_selection(num_values)
            fraction *= num_values / dim.leaf_cardinality
        expected_tuples = self.num_records * fraction
        total_pages = self.fact_file.num_pages
        # Feller: distinct pages among P when drawing n tuples at random.
        if total_pages:
            data_pages = total_pages * (
                1.0 - (1.0 - 1.0 / total_pages) ** expected_tuples
            )
        else:
            data_pages = 0.0
        return index_pages + int(round(data_pages))


def _concat(parts: list[np.ndarray], dtype: np.dtype) -> np.ndarray:
    parts = [p for p in parts if len(p)]
    if not parts:
        return np.zeros(0, dtype=dtype)
    return np.concatenate(parts)


def _filter_rows(
    schema: StarSchema, rows: np.ndarray, query: StarQuery
) -> np.ndarray:
    """Drop boundary-chunk rows outside the query's exact selection."""
    if len(rows) == 0:
        return rows
    mask = np.ones(len(rows), dtype=bool)
    for dim, level, interval in zip(
        schema.dimensions, query.groupby, query.selections
    ):
        if level == 0 or interval is None:
            continue
        column = rows[dim.name]
        mask &= (column >= interval[0]) & (column < interval[1])
    if mask.all():
        return rows
    return rows[mask]
