"""Physical cost accounting for backend operations.

Every backend operation returns a :class:`CostReport` describing the
physical work it did: pages read from the simulated disk (buffer-pool
misses only — hits are free, as on the paper's testbed), tuples pushed
through operators, and result size.  Reports are additive, so the cost of
answering a query from several chunk computations is the sum of the parts.

The mapping from a report to a single scalar "execution time" lives in
:class:`repro.analysis.cost.CostModel`; keeping the raw counters here lets
experiments report both page counts (Figure 14) and modelled times
(Figures 9–13) from the same measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.disk import DiskStats, SimulatedDisk

__all__ = ["CostReport", "measure_cost"]


@dataclass
class CostReport:
    """Physical work done by one backend operation.

    Attributes:
        pages_read: Physical page reads (disk-level; buffer misses).
        pages_written: Physical page writes.
        tuples_scanned: Tuples decoded and pushed through operators.
        result_tuples: Tuples in the produced result.
        chunks_computed: Chunks materialized by this operation.
        access_path: Human-readable tag (``"chunk"``, ``"bitmap"``,
            ``"scan"``, ``"cache"``).
        faults: Injected faults absorbed while producing this result.
        retries: Retry attempts the recovery policy made.
        degraded: Times the degrade path (recompute from base chunks)
            was taken after an aggregate-level fault.
        fault_latency: Simulated seconds of injected slow-read latency.
        backoff_time: Simulated seconds of deterministic retry backoff.
        coalesce_time: Signed modelled-time adjustment from single-flight
            chunk coalescing.  A flight leader is credited (negative) for
            the share of its fetch that coalesced waiters absorb; each
            waiter is charged (positive) its fair share.  Sums to zero
            across a flight, and stays exactly ``0.0`` when the front
            door (``repro.serve.front``) is not in use.

    The fault and coalesce fields stay exactly zero on plain runs, so
    the modelled time they feed (:class:`repro.analysis.cost.CostModel`)
    is bit-identical with those layers absent.
    """

    pages_read: int = 0
    pages_written: int = 0
    tuples_scanned: int = 0
    result_tuples: int = 0
    chunks_computed: int = 0
    access_path: str = ""
    faults: int = 0
    retries: int = 0
    degraded: int = 0
    fault_latency: float = 0.0
    backoff_time: float = 0.0
    coalesce_time: float = 0.0

    def __add__(self, other: "CostReport") -> "CostReport":
        paths = {p for p in (self.access_path, other.access_path) if p}
        return CostReport(
            pages_read=self.pages_read + other.pages_read,
            pages_written=self.pages_written + other.pages_written,
            tuples_scanned=self.tuples_scanned + other.tuples_scanned,
            result_tuples=self.result_tuples + other.result_tuples,
            chunks_computed=self.chunks_computed + other.chunks_computed,
            access_path="+".join(sorted(paths)),
            faults=self.faults + other.faults,
            retries=self.retries + other.retries,
            degraded=self.degraded + other.degraded,
            fault_latency=self.fault_latency + other.fault_latency,
            backoff_time=self.backoff_time + other.backoff_time,
            coalesce_time=self.coalesce_time + other.coalesce_time,
        )

    def merge(self, other: "CostReport") -> None:
        """In-place accumulation (keeps this report's access path)."""
        self.pages_read += other.pages_read
        self.pages_written += other.pages_written
        self.tuples_scanned += other.tuples_scanned
        self.result_tuples += other.result_tuples
        self.chunks_computed += other.chunks_computed
        self.faults += other.faults
        self.retries += other.retries
        self.degraded += other.degraded
        self.fault_latency += other.fault_latency
        self.backoff_time += other.backoff_time
        self.coalesce_time += other.coalesce_time


class measure_cost:
    """Context manager filling a :class:`CostReport` with disk I/O deltas.

    Example:
        >>> disk = SimulatedDisk()
        >>> _ = disk.allocate()
        >>> with measure_cost(disk, access_path="scan") as report:
        ...     _ = disk.read_page(0)
        >>> report.pages_read
        1
    """

    def __init__(self, disk: SimulatedDisk, access_path: str = "") -> None:
        self._disk = disk
        self.report = CostReport(access_path=access_path)
        self._before: DiskStats | None = None

    def __enter__(self) -> CostReport:
        self._before = self._disk.stats.copy()
        return self.report

    def __exit__(self, *exc_info: object) -> None:
        assert self._before is not None
        delta = self._disk.stats.delta(self._before)
        self.report.pages_read += delta.reads
        self.report.pages_written += delta.writes
        self.report.fault_latency += delta.fault_latency
