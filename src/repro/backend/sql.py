"""A mini-SQL front end for the star-join template (Section 5.2.1).

The paper assumes every query matches the template::

    SELECT   <proj-list> <aggregate-list>
    FROM     <FactName>, <dimension-list>
    WHERE    <select-list>          -- point/range predicates + join conds
    GROUP BY <dimension-list>

:func:`parse_query` turns such a statement into an analyzed
:class:`~repro.query.model.StarQuery`:

- columns are hierarchy *level names*, optionally qualified as
  ``dimension.level`` (a bare dimension name means its leaf level);
- predicates on a dimension's **group-by level** become the query's
  relaxable selections;
- predicates on any *other* level become pre-aggregation dimension
  filters (non-group-by selections, cached under an exact-match key);
- equi-join conditions between the fact table and dimension tables are
  validated syntactically and dropped (the star join is implicit in the
  storage model);
- aggregate items are ``SUM|COUNT|MIN|MAX|AVG(measure)``.

Example::

    SELECT product, month, SUM(dollar_sales)
    FROM sales, date
    WHERE category = 'clothes' AND month >= 'Jan' AND month <= 'Jun'
    GROUP BY product, month
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from repro.exceptions import SchemaError, SQLParseError
from repro.query.model import StarQuery
from repro.query.predicates import Interval, interval_intersect
from repro.schema.star import StarSchema

__all__ = ["parse_query", "render_query", "tokenize"]

_AGGREGATES = ("sum", "count", "min", "max", "avg")

_TOKEN_RE = re.compile(
    r"""
    \s*(
        (?P<string>'(?:[^']|'')*')      # 'quoted literal'
      | (?P<number>\d+(?:\.\d+)?)       # numeric literal
      | (?P<ident>[A-Za-z_][\w$]*)      # identifier / keyword
      | (?P<symbol><=|>=|<>|!=|[(),.=<>*])
    )
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str  # "string" | "number" | "ident" | "symbol" | "end"
    text: str

    @property
    def upper(self) -> str:
        return self.text.upper()


def tokenize(sql: str) -> list[_Token]:
    """Split a statement into tokens; raises on unrecognized input."""
    tokens: list[_Token] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            remainder = sql[pos:].strip()
            if not remainder:
                break
            raise SQLParseError(
                f"unrecognized input at position {pos}: {remainder[:20]!r}"
            )
        pos = match.end()
        for kind in ("string", "number", "ident", "symbol"):
            text = match.group(kind)
            if text is not None:
                if kind == "string":
                    text = text[1:-1].replace("''", "'")
                tokens.append(_Token(kind, text))
                break
    tokens.append(_Token("end", ""))
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, schema: StarSchema, sql: str) -> None:
        self.schema = schema
        self.tokens = tokenize(sql)
        self.pos = 0
        self._column_map = self._build_column_map()

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    @property
    def current(self) -> _Token:
        return self.tokens[self.pos]

    def advance(self) -> _Token:
        token = self.current
        self.pos += 1
        return token

    def expect_keyword(self, keyword: str) -> None:
        token = self.advance()
        if token.kind != "ident" or token.upper != keyword:
            raise SQLParseError(
                f"expected {keyword}, got {token.text!r}"
            )

    def expect_symbol(self, symbol: str) -> None:
        token = self.advance()
        if token.kind != "symbol" or token.text != symbol:
            raise SQLParseError(
                f"expected {symbol!r}, got {token.text!r}"
            )

    def at_keyword(self, keyword: str) -> bool:
        token = self.current
        return token.kind == "ident" and token.upper == keyword

    # ------------------------------------------------------------------
    # Column resolution
    # ------------------------------------------------------------------
    def _build_column_map(self) -> dict[str, list[tuple[int, int]]]:
        """Level name -> [(dimension position, level number)]."""
        mapping: dict[str, list[tuple[int, int]]] = {}
        for pos, dim in enumerate(self.schema.dimensions):
            for level in dim.hierarchy:
                mapping.setdefault(level.name.lower(), []).append(
                    (pos, level.number)
                )
            # A bare dimension name addresses its leaf level.
            mapping.setdefault(dim.name.lower(), []).append(
                (pos, dim.leaf_level)
            )
        return mapping

    def resolve_column(
        self, qualifier: str | None, name: str
    ) -> tuple[int, int]:
        """Resolve a (possibly qualified) column to (dim position, level)."""
        candidates = self._column_map.get(name.lower(), [])
        if qualifier is not None:
            try:
                dim_pos = self.schema.dimension_position(qualifier)
            except SchemaError:
                # Qualifier may name the fact table; fall through to the
                # unqualified candidates.
                dim_pos = None
            if dim_pos is not None:
                candidates = [c for c in candidates if c[0] == dim_pos]
        if not candidates:
            raise SQLParseError(f"unknown column {name!r}")
        if len(candidates) > 1:
            names = {
                self.schema.dimensions[pos].name for pos, _ in candidates
            }
            raise SQLParseError(
                f"ambiguous column {name!r} (found in dimensions "
                f"{sorted(names)}); qualify it as <dimension>.{name}"
            )
        return candidates[0]

    def read_column_ref(self) -> tuple[str | None, str]:
        """``ident`` or ``ident.ident``."""
        first = self.advance()
        if first.kind != "ident":
            raise SQLParseError(f"expected a column, got {first.text!r}")
        if self.current.kind == "symbol" and self.current.text == ".":
            self.advance()
            second = self.advance()
            if second.kind != "ident":
                raise SQLParseError(
                    f"expected a column after {first.text!r}., got "
                    f"{second.text!r}"
                )
            return first.text, second.text
        return None, first.text

    # ------------------------------------------------------------------
    # Grammar
    # ------------------------------------------------------------------
    def parse(self) -> StarQuery:
        self.expect_keyword("SELECT")
        projections, aggregates = self.parse_select_list()
        self.expect_keyword("FROM")
        self.parse_table_list()
        conditions: list[tuple[tuple[int, int], Interval]] = []
        if self.at_keyword("WHERE"):
            self.advance()
            conditions = self.parse_where()
        self.expect_keyword("GROUP")
        self.expect_keyword("BY")
        groupby_columns = self.parse_groupby_list()
        if self.current.kind != "end":
            raise SQLParseError(
                f"unexpected trailing input {self.current.text!r}"
            )
        return self.analyze(
            projections, aggregates, conditions, groupby_columns
        )

    def parse_select_list(
        self,
    ) -> tuple[list[tuple[int, int]], list[tuple[str, str]]]:
        projections: list[tuple[int, int]] = []
        aggregates: list[tuple[str, str]] = []
        while True:
            token = self.current
            if (
                token.kind == "ident"
                and token.upper.lower() in _AGGREGATES
                and self.tokens[self.pos + 1].text == "("
            ):
                aggregates.append(self.parse_aggregate())
            else:
                qualifier, name = self.read_column_ref()
                projections.append(self.resolve_column(qualifier, name))
            if self.current.text == ",":
                self.advance()
                continue
            break
        if not aggregates:
            raise SQLParseError(
                "the star-join template requires at least one aggregate "
                "in the SELECT list"
            )
        return projections, aggregates

    def parse_aggregate(self) -> tuple[str, str]:
        agg = self.advance().text.lower()
        self.expect_symbol("(")
        token = self.advance()
        if token.text == "*":
            if agg != "count":
                raise SQLParseError(f"{agg.upper()}(*) is not valid")
            measure = self.schema.measures[0].name
        else:
            if token.kind != "ident" or not self.schema.has_measure(token.text):
                raise SQLParseError(f"unknown measure {token.text!r}")
            measure = token.text
        self.expect_symbol(")")
        return measure, agg

    def parse_table_list(self) -> list[str]:
        tables = []
        while True:
            token = self.advance()
            if token.kind != "ident":
                raise SQLParseError(
                    f"expected a table name, got {token.text!r}"
                )
            tables.append(token.text)
            if self.current.text == ",":
                self.advance()
                continue
            break
        return tables

    def parse_where(self) -> list[tuple[tuple[int, int], Interval]]:
        """Conditions as ((dim position, level), ordinal interval).

        Join conditions (``a.x = b.y``) are validated and dropped.
        """
        conditions: list[tuple[tuple[int, int], Interval]] = []
        while True:
            condition = self.parse_condition()
            if condition is not None:
                conditions.append(condition)
            if self.at_keyword("AND"):
                self.advance()
                continue
            break
        return conditions

    def parse_condition(self) -> tuple[tuple[int, int], Interval] | None:
        qualifier, name = self.read_column_ref()
        token = self.advance()
        if token.kind == "ident" and token.upper == "BETWEEN":
            low = self.parse_literal()
            self.expect_keyword("AND")
            high = self.parse_literal()
            column = self.resolve_column(qualifier, name)
            return column, self._range(column, low, high)
        if token.kind != "symbol" or token.text not in (
            "=", "<=", ">=", "<", ">",
        ):
            raise SQLParseError(
                f"expected a comparison after {name!r}, got {token.text!r}"
            )
        operator = token.text
        # Join condition: rhs is another column reference.
        if operator == "=" and self.current.kind == "ident" and (
            self.tokens[self.pos + 1].text == "."
        ):
            self.read_column_ref()
            return None
        value = self.parse_literal()
        column = self.resolve_column(qualifier, name)
        return column, self._comparison(column, operator, value)

    def parse_literal(self) -> object:
        token = self.advance()
        if token.kind == "string":
            return token.text
        if token.kind == "number":
            return float(token.text) if "." in token.text else int(token.text)
        raise SQLParseError(f"expected a literal, got {token.text!r}")

    def parse_groupby_list(self) -> list[tuple[int, int]]:
        columns = []
        while True:
            qualifier, name = self.read_column_ref()
            columns.append(self.resolve_column(qualifier, name))
            if self.current.text == ",":
                self.advance()
                continue
            break
        return columns

    # ------------------------------------------------------------------
    # Predicates -> ordinal intervals
    # ------------------------------------------------------------------
    def _ordinal(self, column: tuple[int, int], value: object) -> int:
        dim_pos, level = column
        dim = self.schema.dimensions[dim_pos]
        index = dim.domain_index(level)
        if value in index:
            return index.ordinal_of(value)
        # Numeric literals may address integer-valued members.
        if isinstance(value, float) and value.is_integer():
            if int(value) in index:
                return index.ordinal_of(int(value))
        raise SQLParseError(
            f"unknown member {value!r} at level {level} of dimension "
            f"{dim.name!r}"
        )

    def _range(
        self, column: tuple[int, int], low: object, high: object
    ) -> Interval:
        lo = self._ordinal(column, low)
        hi = self._ordinal(column, high)
        if hi < lo:
            raise SQLParseError(
                f"BETWEEN bounds are reversed: {low!r} > {high!r}"
            )
        return (lo, hi + 1)

    def _comparison(
        self, column: tuple[int, int], operator: str, value: object
    ) -> Interval:
        dim_pos, level = column
        cardinality = self.schema.dimensions[dim_pos].cardinality(level)
        ordinal = self._ordinal(column, value)
        if operator == "=":
            return (ordinal, ordinal + 1)
        if operator == ">=":
            return (ordinal, cardinality)
        if operator == ">":
            return (ordinal + 1, cardinality)
        if operator == "<=":
            return (0, ordinal + 1)
        if operator == "<":
            return (0, ordinal)
        raise SQLParseError(f"unsupported operator {operator!r}")

    # ------------------------------------------------------------------
    # Semantic analysis (Section 5.2.1)
    # ------------------------------------------------------------------
    def analyze(
        self,
        projections: list[tuple[int, int]],
        aggregates: list[tuple[str, str]],
        conditions: list[tuple[tuple[int, int], Interval]],
        groupby_columns: list[tuple[int, int]],
    ) -> StarQuery:
        groupby = [0] * self.schema.num_dimensions
        for dim_pos, level in groupby_columns:
            if groupby[dim_pos] not in (0, level):
                dim = self.schema.dimensions[dim_pos]
                raise SQLParseError(
                    f"GROUP BY names two levels of dimension {dim.name!r}"
                )
            groupby[dim_pos] = level
        for dim_pos, level in projections:
            if groupby[dim_pos] != level:
                dim = self.schema.dimensions[dim_pos]
                raise SQLParseError(
                    f"projected column of dimension {dim.name!r} at level "
                    f"{level} is not in the GROUP BY"
                )

        selections: list[Interval] = [None] * self.schema.num_dimensions
        filters: list[Interval] = [None] * self.schema.num_dimensions
        for (dim_pos, level), interval in conditions:
            dim = self.schema.dimensions[dim_pos]
            group_level = groupby[dim_pos]
            if 0 < group_level and level <= group_level:
                # Selection on a group-by attribute (possibly at a coarser
                # level of the same hierarchy, e.g. category='clothes'
                # with GROUP BY product): hierarchical ordering maps it to
                # a contiguous interval at the group-by level, keeping it
                # a relaxable post-aggregation selection.
                lo, hi = interval
                lo = max(lo, 0)
                hi = min(hi, dim.cardinality(level))
                if hi <= lo:
                    raise SQLParseError(f"empty predicate on {dim.name!r}")
                if level < group_level:
                    interval = dim.map_range(level, (lo, hi), group_level)
                else:
                    interval = (lo, hi)
                merged = interval_intersect(selections[dim_pos], interval)
                if merged == "empty":
                    raise SQLParseError(
                        f"contradictory predicates on {dim.name!r}"
                    )
                selections[dim_pos] = merged
            else:
                # Selection on a non-group-by attribute: map to a leaf
                # interval and fold in before aggregation.
                lo, hi = interval
                if hi <= lo:
                    raise SQLParseError(
                        f"empty predicate on {dim.name!r}"
                    )
                leaf = dim.map_range(
                    level,
                    (max(lo, 0), min(hi, dim.cardinality(level))),
                    dim.leaf_level,
                )
                merged = interval_intersect(filters[dim_pos], leaf)
                if merged == "empty":
                    raise SQLParseError(
                        f"contradictory predicates on {dim.name!r}"
                    )
                filters[dim_pos] = merged

        # Clamp selections that comparison operators may have pushed past
        # the domain (e.g. "> last_member").
        for dim_pos, interval in enumerate(selections):
            if interval is None:
                continue
            level = groupby[dim_pos]
            cardinality = self.schema.dimensions[dim_pos].cardinality(level)
            lo, hi = interval
            if hi <= lo or lo >= cardinality or hi <= 0:
                raise SQLParseError(
                    f"predicate on "
                    f"{self.schema.dimensions[dim_pos].name!r} selects "
                    "nothing"
                )
        return StarQuery.build(
            self.schema,
            groupby,
            selections,
            aggregates,
            dim_filters=filters,
        )


def parse_query(schema: StarSchema, sql: str) -> StarQuery:
    """Parse one star-join SELECT statement into a :class:`StarQuery`.

    Raises:
        SQLParseError: On syntax errors, unknown columns/members, or
            statements outside the star-join template.
    """
    return _Parser(schema, sql).parse()


def render_query(schema: StarSchema, query: StarQuery) -> str:
    """Render an analyzed query back into star-join-template SQL.

    The output is fully qualified (``dimension.level``) and parses back
    to an equal :class:`StarQuery` via :func:`parse_query` — useful for
    logging, debugging, and the round-trip property tests.
    """
    select_parts: list[str] = []
    groupby_parts: list[str] = []
    where_parts: list[str] = []
    for dim, level, interval in zip(
        schema.dimensions, query.groupby, query.selections
    ):
        if level == 0:
            continue
        column = f"{dim.name}.{dim.hierarchy.level(level).name}"
        select_parts.append(column)
        groupby_parts.append(column)
        if interval is not None:
            low = _quote(dim.value_of(level, interval[0]))
            high = _quote(dim.value_of(level, interval[1] - 1))
            where_parts.append(f"{column} BETWEEN {low} AND {high}")
    filters = (
        query.effective_dim_filters(schema)
        if query.dim_filters
        else (None,) * schema.num_dimensions
    )
    for dim, leaf_filter in zip(schema.dimensions, filters):
        if leaf_filter is None:
            continue
        leaf = dim.leaf_level
        column = f"{dim.name}.{dim.hierarchy.level(leaf).name}"
        low = _quote(dim.value_of(leaf, leaf_filter[0]))
        high = _quote(dim.value_of(leaf, leaf_filter[1] - 1))
        where_parts.append(f"{column} BETWEEN {low} AND {high}")
    select_parts.extend(
        f"{aggregate.upper()}({measure})"
        for measure, aggregate in query.aggregates
    )
    if not groupby_parts:
        raise SQLParseError(
            "cannot render a query that aggregates every dimension away "
            "(the template requires a GROUP BY list)"
        )
    tables = ", ".join(
        [schema.name] + [dim.name for dim in schema.dimensions]
    )
    sql = f"SELECT {', '.join(select_parts)} FROM {tables}"
    if where_parts:
        sql += f" WHERE {' AND '.join(where_parts)}"
    sql += f" GROUP BY {', '.join(groupby_parts)}"
    return sql


def _quote(value: object) -> str:
    text = str(value).replace("'", "''")
    return f"'{text}'"
