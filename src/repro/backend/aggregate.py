"""Group-by aggregation operators.

The backend computes chunks and full query results by aggregating base
(or finer-level) tuples up to a target group-by.  This module provides:

- :class:`LevelMapper` — cached numpy lookup tables mapping ordinals
  between hierarchy levels of each dimension (leaf -> level for base
  tuples, level -> level for re-aggregation);
- :func:`aggregate_records` — hash aggregation of base tuples to any
  group-by, with an optional post-mapping ordinal filter;
- :func:`reaggregate` — combine already-aggregated rows to a coarser
  group-by (the paper's future-work extension of aggregating chunks in
  the middle tier, Section 7).

Aggregates supported: ``sum``, ``count``, ``min``, ``max``, ``avg``.
``avg`` over base tuples is computed as sum/count; re-aggregating an
``avg`` is rejected (the partial results are insufficient), matching how
real systems decompose averages.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import BackendError
from repro.query.predicates import Interval
from repro.schema.star import GroupBy, StarSchema
from repro.storage.record import RecordFormat, groupby_record_format

__all__ = [
    "LevelMapper",
    "aggregate_records",
    "reaggregate",
    "PARTIAL_AGGREGATES",
    "partials_format_aggregates",
    "finalize_partials",
]

#: The decomposable partials a materialized aggregate table stores for
#: every measure; any requested aggregate (including avg) is computable
#: from them.
PARTIAL_AGGREGATES = ("sum", "count", "min", "max")

#: Aggregates whose partial results can be merged by re-applying them.
_SELF_DECOMPOSABLE = {"sum", "min", "max"}


class LevelMapper:
    """Cached ordinal lookup tables between hierarchy levels.

    ``table(dim_position, from_level, to_level)`` returns an int64 array
    ``t`` with ``t[ordinal_at_from_level] == ordinal_at_to_level`` where
    ``to_level`` is at or above ``from_level``.  Tables are built lazily
    and memoized; the base parent tables come straight from each
    hierarchy's child-start arrays.
    """

    def __init__(self, schema: StarSchema) -> None:
        self.schema = schema
        self._tables: dict[tuple[int, int, int], np.ndarray] = {}

    def table(
        self, dim_position: int, from_level: int, to_level: int
    ) -> np.ndarray:
        """Lookup table mapping ``from_level`` ordinals to ``to_level``."""
        dim = self.schema.dimensions[dim_position]
        if not 1 <= to_level <= from_level <= dim.leaf_level:
            raise BackendError(
                f"cannot map level {from_level} to level {to_level} of "
                f"dimension {dim.name!r}"
            )
        key = (dim_position, from_level, to_level)
        cached = self._tables.get(key)
        if cached is not None:
            return cached
        table = np.arange(dim.cardinality(from_level), dtype=np.int64)
        for level in range(from_level, to_level, -1):
            table = self._parent_table(dim_position, level)[table]
        self._tables[key] = table
        return table

    def _parent_table(self, dim_position: int, level: int) -> np.ndarray:
        """Ordinal -> parent-ordinal table for one step up."""
        key = (dim_position, level, level - 1)
        cached = self._tables.get(key)
        if cached is not None:
            return cached
        dim = self.schema.dimensions[dim_position]
        counts = [
            dim.children_range(level - 1, parent)[1]
            - dim.children_range(level - 1, parent)[0]
            for parent in range(dim.cardinality(level - 1))
        ]
        table = np.repeat(
            np.arange(dim.cardinality(level - 1), dtype=np.int64), counts
        )
        self._tables[key] = table
        return table


def aggregate_records(
    schema: StarSchema,
    records: np.ndarray,
    groupby: Sequence[int],
    aggregates: Sequence[tuple[str, str]],
    mapper: LevelMapper,
    record_groupby: Sequence[int] | None = None,
    selection: Sequence[Interval] | None = None,
    leaf_filters: Sequence[Interval] | None = None,
) -> np.ndarray:
    """Aggregate tuples to a target group-by.

    Args:
        schema: The star schema.
        records: Structured array with one ordinal column per dimension
            (named after the dimension) plus raw measure columns.
        groupby: Target level per dimension.
        aggregates: ``(measure, aggregate)`` output list.
        mapper: Shared level mapper.
        record_groupby: Levels the record ordinals are at; defaults to the
            base group-by (leaf levels).  Must be at least as fine as the
            target on every dimension.
        selection: Optional per-dimension ordinal interval filters applied
            *at the target level* after mapping (the post-aggregation
            group-by selections of Section 5.2.1).
        leaf_filters: Optional per-dimension leaf-ordinal intervals
            applied to the raw records *before* aggregation (the
            non-group-by selections of Section 5.2.1).  Requires the
            filtered dimensions' record ordinals to be at leaf level.

    Returns:
        A structured array in :func:`groupby_record_format` order, sorted
        by the combined group key (row-major over retained dimensions).
    """
    groupby = schema.validate_groupby(groupby)
    if record_groupby is None:
        record_groupby = schema.base_groupby
    else:
        record_groupby = schema.validate_groupby(record_groupby)
    if not schema.is_rollup_of(groupby, record_groupby):
        raise BackendError(
            f"cannot aggregate records at {tuple(record_groupby)} "
            f"to {tuple(groupby)}"
        )
    out_format = groupby_record_format(schema, groupby, aggregates)

    # Pre-aggregation leaf filters (fold in before anything else).
    if leaf_filters is not None and any(f is not None for f in leaf_filters):
        pre_mask = np.ones(len(records), dtype=bool)
        for dim, r_level, leaf_filter in zip(
            schema.dimensions, record_groupby, leaf_filters
        ):
            if leaf_filter is None:
                continue
            if r_level != dim.leaf_level:
                raise BackendError(
                    f"leaf filter on {dim.name!r} requires leaf-level "
                    f"records, got level {r_level}"
                )
            column = records[dim.name]
            pre_mask &= (column >= leaf_filter[0]) & (
                column < leaf_filter[1]
            )
        if not pre_mask.all():
            records = records[pre_mask]

    # Map each retained dimension's ordinals to the target level and apply
    # the optional target-level filters.
    mapped: list[np.ndarray] = []
    radices: list[int] = []
    names: list[str] = []
    mask = np.ones(len(records), dtype=bool)
    for pos, (dim, t_level, r_level) in enumerate(
        zip(schema.dimensions, groupby, record_groupby)
    ):
        if t_level == 0:
            continue
        source = records[dim.name].astype(np.int64, copy=False)
        if t_level == r_level:
            ordinals = source
        else:
            ordinals = mapper.table(pos, r_level, t_level)[source]
        if selection is not None and selection[pos] is not None:
            lo, hi = selection[pos]  # type: ignore[misc]
            mask &= (ordinals >= lo) & (ordinals < hi)
        mapped.append(ordinals)
        radices.append(dim.cardinality(t_level))
        names.append(dim.name)

    if selection is not None and not mask.all():
        records = records[mask]
        mapped = [m[mask] for m in mapped]

    if len(records) == 0:
        return out_format.empty()

    # Combined mixed-radix group key, then one hash-group pass.
    if mapped:
        keys = np.zeros(len(records), dtype=np.int64)
        for ordinals, radix in zip(mapped, radices):
            keys = keys * radix + ordinals
        unique_keys, inverse = np.unique(keys, return_inverse=True)
    else:
        unique_keys = np.zeros(1, dtype=np.int64)
        inverse = np.zeros(len(records), dtype=np.int64)
    num_groups = len(unique_keys)

    result = out_format.empty(num_groups)
    # Decode group keys back into per-dimension ordinal columns.
    remaining = unique_keys.copy()
    for name, radix in zip(reversed(names), reversed(radices)):
        remaining, column = np.divmod(remaining, radix)
        result[name] = column

    for measure_name, aggregate in aggregates:
        column = f"{aggregate}_{measure_name}"
        values = records[measure_name]
        result[column] = _apply_aggregate(
            aggregate, values, inverse, num_groups
        )
    return result


def _apply_aggregate(
    aggregate: str, values: np.ndarray, inverse: np.ndarray, num_groups: int
) -> np.ndarray:
    if aggregate == "sum":
        return np.bincount(
            inverse, weights=values.astype(np.float64), minlength=num_groups
        )
    if aggregate == "count":
        return np.bincount(inverse, minlength=num_groups)
    if aggregate == "avg":
        sums = np.bincount(
            inverse, weights=values.astype(np.float64), minlength=num_groups
        )
        counts = np.bincount(inverse, minlength=num_groups)
        return sums / counts
    if aggregate == "min":
        out = np.full(num_groups, np.inf)
        np.minimum.at(out, inverse, values.astype(np.float64))
        return out
    if aggregate == "max":
        out = np.full(num_groups, -np.inf)
        np.maximum.at(out, inverse, values.astype(np.float64))
        return out
    raise BackendError(f"unknown aggregate {aggregate!r}")


def reaggregate(
    schema: StarSchema,
    rows: np.ndarray,
    from_groupby: Sequence[int],
    to_groupby: Sequence[int],
    aggregates: Sequence[tuple[str, str]],
    mapper: LevelMapper,
    selection: Sequence[Interval] | None = None,
) -> np.ndarray:
    """Combine aggregated rows to a coarser group-by.

    ``rows`` must be in the :func:`groupby_record_format` of
    ``from_groupby`` with the same ``aggregates``.  Only decomposable
    aggregates are supported: ``sum`` and ``count`` partials are summed,
    ``min``/``max`` partials are re-min/maxed; ``avg`` raises.

    This implements the middle-tier chunk aggregation the paper lists as
    future work (Section 7); see
    :meth:`repro.core.manager.ChunkCacheManager` for how it is used.
    """
    from_groupby = schema.validate_groupby(from_groupby)
    to_groupby = schema.validate_groupby(to_groupby)
    if not schema.is_rollup_of(to_groupby, from_groupby):
        raise BackendError(
            f"cannot re-aggregate {tuple(from_groupby)} to {tuple(to_groupby)}"
        )
    for measure_name, aggregate in aggregates:
        if aggregate == "avg":
            raise BackendError(
                "avg cannot be re-aggregated from partial averages; "
                "decompose it into sum and count"
            )

    out_format = groupby_record_format(schema, to_groupby, aggregates)
    mapped: list[np.ndarray] = []
    radices: list[int] = []
    names: list[str] = []
    mask = np.ones(len(rows), dtype=bool)
    for pos, (dim, t_level, f_level) in enumerate(
        zip(schema.dimensions, to_groupby, from_groupby)
    ):
        if t_level == 0:
            continue
        source = rows[dim.name].astype(np.int64, copy=False)
        ordinals = (
            source
            if t_level == f_level
            else mapper.table(pos, f_level, t_level)[source]
        )
        if selection is not None and selection[pos] is not None:
            lo, hi = selection[pos]  # type: ignore[misc]
            mask &= (ordinals >= lo) & (ordinals < hi)
        mapped.append(ordinals)
        radices.append(dim.cardinality(t_level))
        names.append(dim.name)

    if selection is not None and not mask.all():
        rows = rows[mask]
        mapped = [m[mask] for m in mapped]
    if len(rows) == 0:
        return out_format.empty()

    if mapped:
        keys = np.zeros(len(rows), dtype=np.int64)
        for ordinals, radix in zip(mapped, radices):
            keys = keys * radix + ordinals
        unique_keys, inverse = np.unique(keys, return_inverse=True)
    else:
        unique_keys = np.zeros(1, dtype=np.int64)
        inverse = np.zeros(len(rows), dtype=np.int64)
    num_groups = len(unique_keys)

    result = out_format.empty(num_groups)
    remaining = unique_keys.copy()
    for name, radix in zip(reversed(names), reversed(radices)):
        remaining, column = np.divmod(remaining, radix)
        result[name] = column

    for measure_name, aggregate in aggregates:
        column = f"{aggregate}_{measure_name}"
        partials = rows[column]
        # A count of counts is a sum; sums stay sums; min/max re-apply.
        merge = "sum" if aggregate in ("sum", "count") else aggregate
        merged = _apply_aggregate(merge, partials, inverse, num_groups)
        result[column] = merged
    return result


def partials_format_aggregates(schema: StarSchema) -> list[tuple[str, str]]:
    """The aggregate list a materialized table stores: all partials for
    every measure (``sum``, ``count``, ``min``, ``max`` per measure)."""
    return [
        (measure.name, aggregate)
        for measure in schema.measures
        for aggregate in PARTIAL_AGGREGATES
    ]


def finalize_partials(
    schema: StarSchema,
    rows: np.ndarray,
    from_groupby: Sequence[int],
    to_groupby: Sequence[int],
    requested: Sequence[tuple[str, str]],
    mapper: LevelMapper,
) -> np.ndarray:
    """Aggregate partials from a materialized table to a requested shape.

    ``rows`` must be in :func:`partials_format_aggregates` layout at
    ``from_groupby``.  Every requested aggregate — including ``avg``,
    which is finalized as merged sum over merged count — is derived from
    the stored partials, so a single materialized table serves any
    aggregate list (Section 2.4: "These tables will also be stored in a
    chunked format").
    """
    stored = partials_format_aggregates(schema)
    merged = reaggregate(
        schema, rows, from_groupby, to_groupby, stored, mapper
    )
    out_format = groupby_record_format(schema, to_groupby, requested)
    result = out_format.empty(len(merged))
    for dim, level in zip(schema.dimensions, to_groupby):
        if level > 0:
            result[dim.name] = merged[dim.name]
    for measure_name, aggregate in requested:
        column = f"{aggregate}_{measure_name}"
        if aggregate == "avg":
            counts = merged[f"count_{measure_name}"]
            with np.errstate(invalid="ignore", divide="ignore"):
                result[column] = merged[f"sum_{measure_name}"] / counts
        elif aggregate in PARTIAL_AGGREGATES:
            result[column] = merged[f"{aggregate}_{measure_name}"]
        else:
            raise BackendError(
                f"aggregate {aggregate!r} cannot be derived from partials"
            )
    return result
