"""The simulated relational backend engine and its operators."""

from repro.backend.aggregate import LevelMapper, aggregate_records, reaggregate
from repro.backend.engine import BackendEngine
from repro.backend.plans import CostReport, measure_cost
from repro.backend.sql import parse_query, render_query

__all__ = [
    "LevelMapper",
    "aggregate_records",
    "reaggregate",
    "BackendEngine",
    "CostReport",
    "measure_cost",
    "parse_query",
    "render_query",
]
