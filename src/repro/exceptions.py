"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A star schema, dimension, or hierarchy definition is invalid."""


class UnknownMemberError(SchemaError, KeyError):
    """A dimension member (value or ordinal) does not exist at a level."""


class ChunkingError(ReproError):
    """Chunk ranges or chunk numbering were used inconsistently."""


class StorageError(ReproError):
    """Base class for failures in the simulated storage engine."""


class PageError(StorageError):
    """A page id is out of range or a page payload is malformed."""


class BufferPoolError(StorageError):
    """The buffer pool cannot satisfy a pin request (all frames pinned)."""


class FileFormatError(StorageError):
    """A stored file (heap/fact/chunked) is structurally inconsistent."""


class ChunkLogError(StorageError):
    """The persistent chunk log was configured or used incorrectly."""


class ChunkLogCorruption(ChunkLogError):
    """A chunk-log record failed its integrity check.

    Raised when a stored record's CRC-32 does not match its payload
    (a torn or bit-rotted write).  The tiered cache responds by
    quarantining the entry — the record is dropped from the live
    manifest and the lookup degrades to a cache miss, never to a wrong
    answer.

    Attributes:
        token: Opaque record token whose payload failed verification.
    """

    def __init__(self, message: str, token: str = "") -> None:
        super().__init__(message)
        self.token = token


class IndexError_(StorageError):
    """A B-tree or bitmap index was queried or built incorrectly.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`IndexError`.
    """


class QueryError(ReproError):
    """A star query is malformed or incompatible with the schema."""


class SQLParseError(QueryError):
    """The mini-SQL parser rejected a statement."""


class CacheError(ReproError):
    """The chunk or query cache was configured or used incorrectly."""


class PipelineError(ReproError):
    """The staged query pipeline was miswired or left work unresolved."""


class BackendError(ReproError):
    """The backend engine could not evaluate a request."""


class ExperimentError(ReproError):
    """An experiment configuration is invalid or a run failed."""


class StackError(ReproError):
    """A :mod:`repro.api` stack configuration is invalid.

    Raised by the public facade for unknown schemes, missing inputs
    (no records and no pre-built backend) and scheme/parameter
    mismatches — before any layer is constructed.
    """


class ServeError(ReproError):
    """The concurrent serving layer was misconfigured or a run failed.

    Raised for invalid :mod:`repro.serve` configurations (bad worker or
    shard counts, duplicate stream names) and for runs that exceed their
    deadline — the soak harness treats a stuck worker as an error, not a
    hang.
    """


class AdmissionShed(ServeError):
    """The front door's bounded admission queue rejected a query.

    Part of the graceful-degradation contract: when the admission
    backlog is full, the offered query is *shed deterministically*
    rather than queued unboundedly or dropped silently.  The front door
    records every shed in its :class:`~repro.serve.front.FrontReport`
    (and the digest), so backpressure is reproducible, not racy.

    Attributes:
        depth: Backlog depth observed at the rejection (== the
            configured queue limit).
        seq: Canonical sequence number the query would have been
            admitted as.
        stream: Name of the user stream that offered the query.
    """

    def __init__(
        self, message: str, depth: int, seq: int, stream: str
    ) -> None:
        super().__init__(message)
        self.depth = depth
        self.seq = seq
        self.stream = stream


class FaultError(ReproError):
    """A fault-injection plan or injector was configured incorrectly."""


class InjectedFault(ReproError):
    """Base class for deliberately injected faults (:mod:`repro.faults`).

    Raised only by fault-injection hooks, never by production code paths
    on their own.  Carries the recovery-relevant metadata the pipeline's
    retry/degrade policy inspects:

    Attributes:
        transient: Whether a retry may succeed (transient faults are
            retried with deterministic backoff; permanent ones are not).
        site: The decision site that rolled the fault (e.g.
            ``"disk.read"``), for counters and reports.
        source_level: Filled in by the backend when the fault surfaced
            during chunk computation: ``"aggregate"`` when a
            materialized aggregate table was being read (the degrade
            path recomputes from base chunks), ``"base"`` otherwise.
        cost_report: Physical work charged to the failed attempt(s),
            attached by the backend / resolver so even failed queries
            conserve global I/O accounting.  Duck-typed (a
            :class:`repro.backend.plans.CostReport`) to keep this module
            a leaf.
    """

    def __init__(
        self,
        message: str,
        transient: bool = True,
        site: str = "",
    ) -> None:
        super().__init__(message)
        self.transient = transient
        self.site = site
        self.source_level: str | None = None
        self.cost_report: object | None = None


class DiskFault(InjectedFault, StorageError):
    """An injected page-read failure of the simulated disk.

    Attributes:
        page_id: The page whose read faulted.
    """

    def __init__(
        self, message: str, page_id: int, transient: bool, site: str = ""
    ) -> None:
        super().__init__(message, transient=transient, site=site)
        self.page_id = page_id


class BackendFault(InjectedFault, BackendError):
    """An injected query-level failure of the backend engine.

    Attributes:
        operation: The engine entry point that faulted
            (``"compute_chunks"`` or ``"answer"``).
    """

    def __init__(
        self, message: str, operation: str, transient: bool = True,
        site: str = "",
    ) -> None:
        super().__init__(message, transient=transient, site=site)
        self.operation = operation


class InvariantViolation(ReproError):
    """A runtime invariant check failed (see :mod:`repro.invariants`).

    Raised when internal state contradicts a property the design
    guarantees (chunk-range closure, partition coverage, cache byte
    conservation, trace conservation).  Always indicates a library bug,
    never a caller mistake.
    """
