"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A star schema, dimension, or hierarchy definition is invalid."""


class UnknownMemberError(SchemaError, KeyError):
    """A dimension member (value or ordinal) does not exist at a level."""


class ChunkingError(ReproError):
    """Chunk ranges or chunk numbering were used inconsistently."""


class StorageError(ReproError):
    """Base class for failures in the simulated storage engine."""


class PageError(StorageError):
    """A page id is out of range or a page payload is malformed."""


class BufferPoolError(StorageError):
    """The buffer pool cannot satisfy a pin request (all frames pinned)."""


class FileFormatError(StorageError):
    """A stored file (heap/fact/chunked) is structurally inconsistent."""


class IndexError_(StorageError):
    """A B-tree or bitmap index was queried or built incorrectly.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`IndexError`.
    """


class QueryError(ReproError):
    """A star query is malformed or incompatible with the schema."""


class SQLParseError(QueryError):
    """The mini-SQL parser rejected a statement."""


class CacheError(ReproError):
    """The chunk or query cache was configured or used incorrectly."""


class PipelineError(ReproError):
    """The staged query pipeline was miswired or left work unresolved."""


class BackendError(ReproError):
    """The backend engine could not evaluate a request."""


class ExperimentError(ReproError):
    """An experiment configuration is invalid or a run failed."""


class ServeError(ReproError):
    """The concurrent serving layer was misconfigured or a run failed.

    Raised for invalid :mod:`repro.serve` configurations (bad worker or
    shard counts, duplicate stream names) and for runs that exceed their
    deadline — the soak harness treats a stuck worker as an error, not a
    hang.
    """


class InvariantViolation(ReproError):
    """A runtime invariant check failed (see :mod:`repro.invariants`).

    Raised when internal state contradicts a property the design
    guarantees (chunk-range closure, partition coverage, cache byte
    conservation, trace conservation).  Always indicates a library bug,
    never a caller mistake.
    """
