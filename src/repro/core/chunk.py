"""Cache entries: cached chunks and cached query results.

A cached chunk is one cell of a group-by's chunk grid holding its
aggregated result rows.  Its identity (:class:`ChunkKey`) includes the
group-by, the aggregate list and the non-group-by predicate tags, because
results are only reusable when all three match (Section 5.2.1); only the
group-by *selections* may differ between the producing and consuming
queries.

The same module defines :class:`CachedQuery`, the entry type of the
query-level caching baseline, so both cache managers share the accounting
fields (size, benefit) the replacement policies consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.schema.star import GroupBy

if TYPE_CHECKING:
    from repro.query.model import StarQuery

__all__ = ["ChunkKey", "CachedChunk", "CachedQuery", "entry_size_bytes"]

#: Fixed per-entry bookkeeping overhead charged against the cache budget.
ENTRY_OVERHEAD_BYTES = 64


@dataclass(frozen=True)
class ChunkKey:
    """Identity of one cached chunk.

    Attributes:
        groupby: Level of aggregation of the chunk.
        number: Chunk number within that group-by's grid.
        aggregates: Aggregate list the rows were computed under.
        fixed_predicates: Non-group-by predicate tags folded into the rows.
    """

    groupby: GroupBy
    number: int
    aggregates: tuple[tuple[str, str], ...]
    fixed_predicates: frozenset[str] = frozenset()

    def compatible_key(self) -> tuple[object, ...]:
        """The shape part of the key (everything but the chunk number)."""
        return (self.groupby, self.aggregates, self.fixed_predicates)


def entry_size_bytes(rows: np.ndarray) -> int:
    """Bytes an entry is charged for: payload plus fixed overhead.

    Empty chunks still occupy ``ENTRY_OVERHEAD_BYTES`` — caching the fact
    that a chunk is empty is itself valuable information.
    """
    return int(rows.nbytes) + ENTRY_OVERHEAD_BYTES


@dataclass
class CachedChunk:
    """One chunk resident in the chunk cache.

    Attributes:
        key: The chunk's identity.
        rows: Aggregated result rows covering the whole chunk region.
        benefit: Replacement weight — the fraction of the base table the
            chunk represents (Section 5.4), i.e. proportional to its
            recomputation cost.
        compute_pages: Estimated backend data pages to recompute this chunk
            (used in cost-saving accounting).
    """

    key: ChunkKey
    rows: np.ndarray
    benefit: float
    compute_pages: float = 0.0

    @property
    def size_bytes(self) -> int:
        """Budgeted size of this entry."""
        return entry_size_bytes(self.rows)

    @property
    def num_rows(self) -> int:
        """Result rows stored in the chunk."""
        return len(self.rows)


@dataclass
class CachedQuery:
    """One whole query result resident in the query-level cache.

    Attributes:
        query: The cached query (used for containment tests).
        rows: Its complete result rows.
        benefit: Replacement weight — the estimated cost of recomputing
            the query at the backend (the [SSV]-style profit metric).
    """

    query: "StarQuery"
    rows: np.ndarray
    benefit: float

    @property
    def size_bytes(self) -> int:
        """Budgeted size of this entry."""
        return entry_size_bytes(self.rows)

    @property
    def num_rows(self) -> int:
        """Result rows stored for the query."""
        return len(self.rows)
