"""Cache replacement policies (Section 5.4).

Three policies are provided behind one interface:

- :class:`LRUPolicy` — exact least-recently-used;
- :class:`ClockPolicy` — the CLOCK (second chance) approximation of LRU
  the paper uses, necessary because the number of cached chunks is large;
- :class:`BenefitClockPolicy` — the paper's contribution: CLOCK weighted
  by chunk *benefit*.  A new entry starts with weight equal to its
  benefit; each pass of the clock arm reduces an entry's weight by the
  benefit of the incoming entry; entries whose weight has reached zero are
  evicted; re-access resets the weight.  Expensive (highly aggregated)
  chunks therefore survive more sweeps than cheap ones.

Policies track keys only; payloads live in :class:`repro.core.cache.ChunkCache`.
The clock ring is a doubly-linked list so eviction of arbitrary entries is
O(1), which matters when thousands of chunks are resident.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Hashable

from repro.exceptions import CacheError

__all__ = [
    "ReplacementPolicy",
    "LRUPolicy",
    "ClockPolicy",
    "BenefitClockPolicy",
    "make_policy",
]


class ReplacementPolicy(ABC):
    """Replacement bookkeeping over opaque hashable keys."""

    @abstractmethod
    def on_insert(self, key: Hashable, weight: float) -> None:
        """Register a newly cached entry with its benefit weight."""

    @abstractmethod
    def on_access(self, key: Hashable) -> None:
        """Record a cache hit on an entry."""

    @abstractmethod
    def remove(self, key: Hashable) -> None:
        """Forget an entry (external invalidation)."""

    @abstractmethod
    def victim(self, incoming_weight: float) -> Hashable:
        """Choose and forget the entry to evict for an incoming entry.

        Raises:
            CacheError: If the policy tracks no entries.
        """

    @abstractmethod
    def __len__(self) -> int:
        """Number of tracked entries."""


class LRUPolicy(ReplacementPolicy):
    """Exact LRU via an ordered dictionary."""

    def __init__(self) -> None:
        self._entries: OrderedDict[Hashable, None] = OrderedDict()

    def on_insert(self, key: Hashable, weight: float) -> None:
        if key in self._entries:
            raise CacheError(f"duplicate insert of {key!r}")
        self._entries[key] = None

    def on_access(self, key: Hashable) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)

    def remove(self, key: Hashable) -> None:
        self._entries.pop(key, None)

    def victim(self, incoming_weight: float) -> Hashable:
        if not self._entries:
            raise CacheError("no entries to evict")
        key, _ = self._entries.popitem(last=False)
        return key

    def __len__(self) -> int:
        return len(self._entries)


class _Node:
    __slots__ = ("key", "weight", "initial_weight", "prev", "next")

    def __init__(self, key: Hashable, weight: float) -> None:
        self.key = key
        self.weight = weight
        self.initial_weight = weight
        self.prev: "_Node | None" = None
        self.next: "_Node | None" = None


class _ClockRing:
    """Circular doubly-linked list with a hand pointer."""

    def __init__(self) -> None:
        self._nodes: dict[Hashable, _Node] = {}
        self._hand: _Node | None = None

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._nodes

    def node(self, key: Hashable) -> _Node:
        return self._nodes[key]

    def insert_behind_hand(self, node: _Node) -> None:
        """Insert just behind the hand (will be swept last)."""
        if node.key in self._nodes:
            raise CacheError(f"duplicate insert of {node.key!r}")
        self._nodes[node.key] = node
        if self._hand is None:
            node.prev = node.next = node
            self._hand = node
            return
        tail = self._hand.prev
        assert tail is not None
        tail.next = node
        node.prev = tail
        node.next = self._hand
        self._hand.prev = node

    def unlink(self, key: Hashable) -> _Node | None:
        node = self._nodes.pop(key, None)
        if node is None:
            return None
        if node.next is node:
            self._hand = None
        else:
            assert node.prev is not None and node.next is not None
            node.prev.next = node.next
            node.next.prev = node.prev
            if self._hand is node:
                self._hand = node.next
        node.prev = node.next = None
        return node

    @property
    def hand(self) -> _Node:
        if self._hand is None:
            raise CacheError("no entries to evict")
        return self._hand

    def advance(self) -> None:
        assert self._hand is not None and self._hand.next is not None
        self._hand = self._hand.next


class ClockPolicy(ReplacementPolicy):
    """Plain CLOCK (second chance): weights are 0/1 reference bits.

    This is the paper's "simple LRU" arm of the Figure 13 comparison —
    LRU approximated by CLOCK.
    """

    def __init__(self) -> None:
        self._ring = _ClockRing()

    def on_insert(self, key: Hashable, weight: float) -> None:
        self._ring.insert_behind_hand(_Node(key, 1.0))

    def on_access(self, key: Hashable) -> None:
        if key in self._ring:
            self._ring.node(key).weight = 1.0

    def remove(self, key: Hashable) -> None:
        self._ring.unlink(key)

    def victim(self, incoming_weight: float) -> Hashable:
        while True:
            node = self._ring.hand
            if node.weight > 0:
                node.weight = 0.0
                self._ring.advance()
            else:
                self._ring.advance()
                self._ring.unlink(node.key)
                return node.key

    def __len__(self) -> int:
        return len(self._ring)


class BenefitClockPolicy(ReplacementPolicy):
    """CLOCK weighted by benefit (the paper's replacement scheme).

    Entries enter with ``weight = benefit``.  The sweeping arm subtracts
    the *incoming* entry's benefit from each entry it passes; an entry
    whose weight is already exhausted is the victim.  Re-access restores
    the initial weight.
    """

    def __init__(self) -> None:
        self._ring = _ClockRing()

    def on_insert(self, key: Hashable, weight: float) -> None:
        if weight < 0:
            raise CacheError(f"negative benefit {weight} for {key!r}")
        self._ring.insert_behind_hand(_Node(key, weight))

    def on_access(self, key: Hashable) -> None:
        if key in self._ring:
            node = self._ring.node(key)
            node.weight = node.initial_weight

    def remove(self, key: Hashable) -> None:
        self._ring.unlink(key)

    def victim(self, incoming_weight: float) -> Hashable:
        if incoming_weight <= 0:
            # A non-positive incoming weight would sweep forever past
            # positive-weight entries; evict the lowest-weight entry
            # directly instead (one bounded pass).
            start = self._ring.hand
            weakest = start
            node = start.next
            assert node is not None
            while node is not start:
                if node.weight < weakest.weight:
                    weakest = node
                assert node.next is not None
                node = node.next
            self._ring.unlink(weakest.key)
            return weakest.key
        while True:
            node = self._ring.hand
            if node.weight <= 0:
                self._ring.advance()
                self._ring.unlink(node.key)
                return node.key
            node.weight -= incoming_weight
            self._ring.advance()

    def __len__(self) -> int:
        return len(self._ring)


_POLICIES = {
    "lru": LRUPolicy,
    "clock": ClockPolicy,
    "benefit": BenefitClockPolicy,
}


def make_policy(name: str) -> ReplacementPolicy:
    """Instantiate a policy by name: ``"lru"``, ``"clock"`` or ``"benefit"``."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise CacheError(
            f"unknown replacement policy {name!r}; "
            f"expected one of {sorted(_POLICIES)}"
        ) from None
