"""Performance metrics: per-query records, CSR, and summaries.

The paper evaluates caching schemes with two metrics (Section 6.1.3):

1. the average execution time of the **last 100 queries** of a stream
   (steady-state behaviour after warm-up), and
2. the **Cost Saving Ratio** [SSV]::

       CSR = sum_i(c_i * h_i) / sum_i(c_i * r_i)

   the fraction of total query *cost* saved by the cache — preferred over
   plain hit ratio because OLAP query costs vary by orders of magnitude
   with the level of aggregation.

For chunk-based caching a query can be a *partial* hit, so the natural
generalization used here charges each query its cost-to-compute estimate
``full_cost`` and credits ``saved_cost`` for the fraction served from the
cache; with whole-query hits/misses this reduces exactly to the [SSV]
formula.  Both the estimates (deterministic, buffer-independent) and the
measured simulated times (including buffer-pool effects) are recorded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from repro.exceptions import ExperimentError

if TYPE_CHECKING:
    from repro.analysis.cost import CostModel
    from repro.backend.plans import CostReport

__all__ = ["QueryRecord", "StreamMetrics", "account_answer"]


@dataclass(frozen=True)
class QueryRecord:
    """Outcome of one query through a cache manager.

    Attributes:
        time: Modelled execution time actually incurred (cost units).
        full_cost: Modelled cost had the cache been empty.
        saved_cost: Portion of ``full_cost`` served from the cache.
        chunks_total: Chunks the query decomposed into (1 for query-level
            caching).
        chunks_hit: Chunks served from the cache.
        chunks_derived: Chunks derived by middle-tier aggregation of other
            cached chunks (the future-work extension; 0 otherwise).
        pages_read: Physical backend pages read.
        result_rows: Rows returned to the client.
    """

    time: float
    full_cost: float
    saved_cost: float
    chunks_total: int
    chunks_hit: int
    chunks_derived: int = 0
    pages_read: int = 0
    result_rows: int = 0

    @property
    def is_full_hit(self) -> bool:
        """Whether the query never touched the backend."""
        return self.chunks_hit + self.chunks_derived >= self.chunks_total


def account_answer(
    cost_model: "CostModel",
    report: "CostReport",
    *,
    full_cost: float,
    saved_cost: float,
    chunks_total: int,
    chunks_hit: int,
    chunks_derived: int = 0,
    tuples_from_cache: int = 0,
    result_rows: int = 0,
) -> QueryRecord:
    """Price one answered query — the accounting shared by both schemes.

    The modelled execution time combines the physical work the backend
    actually performed (``report``) with the middle-tier cost of reading
    ``tuples_from_cache`` cached tuples; ``full_cost`` / ``saved_cost``
    feed the stream's Cost Saving Ratio.  Hoisted here so chunk caching
    and the query-caching baseline cannot drift apart in how a record is
    priced.
    """
    time = cost_model.time(report, tuples_from_cache=tuples_from_cache)
    return QueryRecord(
        time=time,
        full_cost=full_cost,
        saved_cost=saved_cost,
        chunks_total=chunks_total,
        chunks_hit=chunks_hit,
        chunks_derived=chunks_derived,
        pages_read=report.pages_read,
        result_rows=result_rows,
    )


class StreamMetrics:
    """Accumulates per-query records and derives the paper's metrics.

    Alongside the paper's aggregate numbers, the stream keeps every
    answer's :class:`~repro.pipeline.trace.ExecutionTrace` (when the
    caller supplies one) and aggregates them into per-stage and
    per-resolver totals.  Traces are consumed duck-typed — anything with
    ``.stages`` / ``.resolved_by`` of the right shape works — so this
    module never imports the pipeline package.
    """

    def __init__(self) -> None:
        self._records: list[QueryRecord] = []
        self._traces: list[Any] = []

    def record(self, record: QueryRecord, trace: Any = None) -> None:
        """Append one query outcome (and its execution trace, if any)."""
        if record.full_cost < 0 or record.time < 0:
            raise ExperimentError("costs must be non-negative")
        self._records.append(record)
        if trace is not None:
            self._traces.append(trace)

    def absorb(self, other: "StreamMetrics") -> None:
        """Append another stream's records and traces, preserving order.

        The concurrent serving layer accumulates one ``StreamMetrics``
        per user stream and merges them in *stream-name* order (never
        completion order), so a merged session is deterministic however
        the workers were scheduled.  All headline metrics here are
        order-independent sums or ratios of sums, so a merge equals the
        sequential interleaved run's totals exactly.
        """
        self._records.extend(other._records)
        self._traces.extend(other._traces)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> Sequence[QueryRecord]:
        """All records in arrival order."""
        return tuple(self._records)

    # ------------------------------------------------------------------
    # The paper's metrics
    # ------------------------------------------------------------------
    def cost_saving_ratio(self) -> float:
        """CSR over the whole stream (0.0 for an empty stream).

        ``full_cost`` is non-negative by :meth:`record`'s validation, so
        the float sum is compared by ordering rather than ``==`` (R002):
        a zero-cost stream has no savings to express, not a 0/0.
        """
        total = sum(r.full_cost for r in self._records)
        if total <= 0.0:
            return 0.0
        saved = sum(r.saved_cost for r in self._records)
        return saved / total

    def mean_time_last(self, n: int = 100) -> float:
        """Mean modelled execution time of the last ``n`` queries."""
        if n < 1:
            raise ExperimentError(f"n must be >= 1, got {n}")
        tail = self._records[-n:]
        if not tail:
            return 0.0
        return sum(r.time for r in tail) / len(tail)

    def mean_time(self) -> float:
        """Mean modelled execution time over the whole stream."""
        if not self._records:
            return 0.0
        return sum(r.time for r in self._records) / len(self._records)

    def total_time(self) -> float:
        """Total modelled execution time."""
        return sum(r.time for r in self._records)

    # ------------------------------------------------------------------
    # Secondary statistics
    # ------------------------------------------------------------------
    def chunk_hit_ratio(self) -> float:
        """Chunks served from cache over chunks requested."""
        total = sum(r.chunks_total for r in self._records)
        if not total:
            return 0.0
        hit = sum(r.chunks_hit + r.chunks_derived for r in self._records)
        return hit / total

    def full_hit_ratio(self) -> float:
        """Queries answered without touching the backend."""
        if not self._records:
            return 0.0
        hits = sum(1 for r in self._records if r.is_full_hit)
        return hits / len(self._records)

    def total_pages_read(self) -> int:
        """Total physical backend pages read."""
        return sum(r.pages_read for r in self._records)

    # ------------------------------------------------------------------
    # Per-stage instrumentation
    # ------------------------------------------------------------------
    @property
    def traces(self) -> Sequence[Any]:
        """All recorded execution traces, in arrival order."""
        return tuple(self._traces)

    def stage_summary(self) -> dict[str, dict[str, float]]:
        """Per-stage totals over all recorded traces.

        Returns ``stage name -> {"calls", "wall_seconds",
        "modelled_time", "partitions", "pages_read", "tuples_scanned",
        "lock_wait_seconds", "faults", "retries", "degraded",
        "backoff_seconds", "coalesce_seconds"}`` summed across the
        stream, in first-seen stage order.  ``lock_wait_seconds``, the
        fault counters and ``coalesce_seconds`` are read duck-typed
        (defaulting to 0) so pre-serving and pre-fault traces aggregate
        unchanged.
        """
        totals: dict[str, dict[str, float]] = {}
        for trace in self._traces:
            for entry in trace.stages:
                bucket = totals.setdefault(
                    entry.name,
                    {
                        "calls": 0.0,
                        "wall_seconds": 0.0,
                        "modelled_time": 0.0,
                        "partitions": 0.0,
                        "pages_read": 0.0,
                        "tuples_scanned": 0.0,
                        "lock_wait_seconds": 0.0,
                        "faults": 0.0,
                        "retries": 0.0,
                        "degraded": 0.0,
                        "backoff_seconds": 0.0,
                        "coalesce_seconds": 0.0,
                    },
                )
                bucket["calls"] += 1
                bucket["wall_seconds"] += entry.wall_seconds
                bucket["modelled_time"] += entry.modelled_time
                bucket["partitions"] += entry.partitions
                bucket["pages_read"] += entry.pages_read
                bucket["tuples_scanned"] += entry.tuples_scanned
                bucket["lock_wait_seconds"] += float(
                    getattr(entry, "lock_wait_seconds", 0.0)
                )
                bucket["faults"] += float(getattr(entry, "faults", 0))
                bucket["retries"] += float(getattr(entry, "retries", 0))
                bucket["degraded"] += float(
                    getattr(entry, "degraded", 0)
                )
                bucket["backoff_seconds"] += float(
                    getattr(entry, "backoff_seconds", 0.0)
                )
                bucket["coalesce_seconds"] += float(
                    getattr(entry, "coalesce_seconds", 0.0)
                )
        return totals

    def resolver_summary(self) -> dict[str, int]:
        """Partitions resolved per resolver, summed over the stream."""
        totals: dict[str, int] = {}
        for trace in self._traces:
            for name, count in trace.resolved_by.items():
                totals[name] = totals.get(name, 0) + count
        return totals

    def summary(self) -> dict[str, float]:
        """All headline numbers in one dictionary (for reports)."""
        return {
            "queries": float(len(self._records)),
            "csr": self.cost_saving_ratio(),
            "mean_time": self.mean_time(),
            "mean_time_last_100": self.mean_time_last(100),
            "chunk_hit_ratio": self.chunk_hit_ratio(),
            "full_hit_ratio": self.full_hit_ratio(),
            "pages_read": float(self.total_pages_read()),
        }
