"""Query-level caching — the baseline scheme of Section 6.1.4.

:class:`QueryCacheManager` caches *entire query results* and answers a new
query from the cache only when some cached query **contains** it
(:func:`repro.query.containment.query_contains`).  Misses are evaluated at
the backend through its bitmap access path (the paper builds a bitmap
index on the fact table for exactly this purpose) and the whole result is
admitted to the cache.

The scheme executes through the same staged pipeline as chunk caching
(:mod:`repro.pipeline`), as its degenerate case: analysis yields a single
whole-result partition, and the resolver chain has two links — the
containment lookup and the backend.  Replacement is benefit-based like
the chunk scheme's ("the replacement policy is benefit based, as
described for chunks"): an entry's weight is the estimated backend cost
of recomputing it, run through the same benefit-weighted CLOCK.  This
isolates the experiment's variable — the *unit* of caching — from both
the replacement policy and the execution machinery.

The two structural drawbacks the paper attributes to this scheme emerge
naturally here:

- **no partial reuse** — a query overlapping but not contained in cached
  results recomputes everything; and
- **redundant storage** — overlapping cached results store shared regions
  multiple times, shrinking the effective cache (measured by
  :meth:`QueryCacheManager.redundancy_ratio`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro import invariants
from repro.analysis.cost import CostModel
from repro.backend.engine import BackendEngine
from repro.core.chunk import CachedQuery
from repro.core.manager import Answer
from repro.core.metrics import QueryRecord, StreamMetrics, account_answer
from repro.core.replacement import ReplacementPolicy, make_policy
from repro.core.snapshot import (
    QueryCacheSnapshot,
    ShapeUsage,
    Snapshot,
    collect_resolved,
    collect_stages,
)
from repro.exceptions import CacheError, QueryError
from repro.pipeline.executor import StagedPipeline
from repro.pipeline.resolvers import (
    WHOLE_RESULT,
    QueryBackendResolver,
    QueryHitResolver,
)
from repro.pipeline.stages import (
    AnalyzedQuery,
    ChunkPlan,
    Resolution,
    select_exact,
)
from repro.pipeline.work import estimate_query_full_cost
from repro.query.containment import query_contains
from repro.query.model import QueryKey, StarQuery
from repro.query.predicates import Selection, selection_cardinality
from repro.schema.star import StarSchema

__all__ = ["QueryCacheManager"]


class _QueryAnalyzer:
    """Analysis stage: one whole-result partition, full cost annotated.

    The estimated cold cost rides along in ``meta["full_cost"]`` so the
    backend resolver (admission benefit) and the accountant (CSR
    numerators) price the query identically.
    """

    def __init__(self, manager: "QueryCacheManager") -> None:
        self.manager = manager

    def analyze(self, query: StarQuery) -> AnalyzedQuery:
        manager = self.manager
        full_cost = estimate_query_full_cost(
            manager.backend, manager.cost_model, query
        )
        return AnalyzedQuery.from_query(
            query, (WHOLE_RESULT,), full_cost=full_cost
        )


class _QueryAssembler:
    """Assembly stage: trim a cached superset to the exact selection.

    Backend results are already exact; cached payloads are trimmed and
    never handed out by reference (``copy_on_full``).
    """

    def __init__(self, schema: StarSchema) -> None:
        self.schema = schema

    def assemble(
        self, analyzed: AnalyzedQuery, resolution: Resolution
    ) -> np.ndarray:
        part = resolution.parts[WHOLE_RESULT]
        if part.resolver != "cache":
            return part.rows
        return select_exact(
            self.schema, analyzed.query, part.rows, copy_on_full=True
        )


class _QueryAccountant:
    """Accounting stage: all-or-nothing CSR, shared pricing."""

    def __init__(self, cost_model: CostModel) -> None:
        self.cost_model = cost_model

    def account(
        self,
        analyzed: AnalyzedQuery,
        resolution: Resolution,
        plan: ChunkPlan,
        result_rows: int,
    ) -> QueryRecord:
        full_cost = analyzed.meta["full_cost"]
        part = resolution.parts[WHOLE_RESULT]
        return account_answer(
            self.cost_model,
            resolution.report,
            full_cost=full_cost,
            saved_cost=full_cost if part.saved else 0.0,
            chunks_total=1,
            chunks_hit=len(plan.present),
            tuples_from_cache=part.tuples_from_cache,
            result_rows=result_rows,
        )


class QueryCacheManager:
    """Answers star queries from a whole-query-result cache.

    Args:
        schema: The star schema.
        backend: A loaded backend engine (any organization; misses use the
            bitmap path when available, else a scan).
        capacity_bytes: Cache budget.
        cost_model: Converts physical work into modelled time.
        policy: Replacement policy instance or name (default: the same
            benefit-weighted CLOCK the chunk scheme uses).
        miss_path: Backend access path on a miss (``"auto"`` picks bitmap
            when selections exist).
    """

    def __init__(
        self,
        schema: StarSchema,
        backend: BackendEngine,
        capacity_bytes: int,
        cost_model: CostModel | None = None,
        policy: ReplacementPolicy | str = "benefit",
        miss_path: str = "auto",
    ) -> None:
        if capacity_bytes < 0:
            raise CacheError(f"negative capacity {capacity_bytes}")
        self.schema = schema
        self.backend = backend
        self.capacity_bytes = capacity_bytes
        self.cost_model = cost_model or CostModel()
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self.miss_path = miss_path
        self.metrics = StreamMetrics()
        self._entries: dict[QueryKey, CachedQuery] = {}
        self._by_shape: dict[QueryKey, list[QueryKey]] = {}
        self._used_bytes = 0
        self.pipeline = StagedPipeline(
            analyzer=_QueryAnalyzer(self),
            resolvers=[QueryHitResolver(self), QueryBackendResolver(self)],
            assembler=_QueryAssembler(schema),
            accountant=_QueryAccountant(self.cost_model),
            cost_model=self.cost_model,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def used_bytes(self) -> int:
        """Bytes currently charged against the budget."""
        return self._used_bytes

    def snapshot(self) -> Snapshot:
        """A typed snapshot of cache composition and stream aggregates.

        Single pass over the entries, mirroring the chunk scheme's
        snapshot: byte usage, entry count, a per-shape breakdown, the
        redundancy ratio, and the stream's per-stage / per-resolver
        trace aggregates — as a :class:`repro.core.snapshot.Snapshot`.
        """
        per_shape: dict[QueryKey, dict[str, float]] = {}
        for entry in self._entries.values():
            bucket = per_shape.setdefault(
                entry.query.cache_compatible_key(),
                {"results": 0, "bytes": 0, "benefit": 0.0},
            )
            bucket["results"] += 1
            bucket["bytes"] += entry.size_bytes
            bucket["benefit"] += entry.benefit
        usages = tuple(
            ShapeUsage(
                key=key,
                results=int(bucket["results"]),
                bytes=int(bucket["bytes"]),
                benefit=bucket["benefit"],
            )
            for key, bucket in sorted(
                per_shape.items(),
                key=lambda item: item[1]["bytes"],
                reverse=True,
            )
        )
        return Snapshot(
            kind="query",
            cache=QueryCacheSnapshot(
                used_bytes=self._used_bytes,
                capacity_bytes=self.capacity_bytes,
                entries=len(self._entries),
                redundancy_ratio=self.redundancy_ratio(),
                per_shape=usages,
                stages=collect_stages(self.metrics),
                resolved_by=collect_resolved(self.metrics),
            ),
        )

    def describe_cache(self) -> dict[str, object]:
        """Deprecated: the pre-:class:`Snapshot` report dictionary.

        A thin shim over :meth:`snapshot` that reproduces the legacy
        shape bit-for-bit.  New code should use the typed tree.
        """
        return self.snapshot().legacy_dict()

    def redundancy_ratio(self) -> float:
        """Stored cells over distinct cells across cached results.

        1.0 means no overlap; higher values quantify the redundant storage
        of overlapping query results (cells are counted in selection
        space, pairwise via inclusion–exclusion is avoided by exact
        enumeration per shape, which is fine at experiment scale).
        """
        stored = 0
        distinct = 0
        for shape, keys in self._by_shape.items():
            entries = [self._entries[k] for k in keys if k in self._entries]
            if not entries:
                continue
            domain_sizes = [
                dim.cardinality(level) if level > 0 else 1
                for dim, level in zip(
                    self.schema.dimensions, entries[0].query.groupby
                )
            ]
            cells: set[tuple[int, ...]] = set()
            for entry in entries:
                count = selection_cardinality(
                    entry.query.selections, domain_sizes
                )
                stored += count
                cells.update(
                    self._cell_ids(entry.query.selections, domain_sizes)
                )
            distinct += len(cells)
        if distinct == 0:
            return 1.0
        return stored / distinct

    @staticmethod
    def _cell_ids(
        selections: Selection, domain_sizes: Sequence[int]
    ) -> set[tuple[int, ...]]:
        spans: list[range] = []
        for interval, size in zip(selections, domain_sizes):
            if interval is None:
                spans.append(range(size))
            else:
                spans.append(range(interval[0], interval[1]))
        cells = {()}
        for span in spans:
            cells = {cell + (i,) for cell in cells for i in span}
        return cells

    # ------------------------------------------------------------------
    # Invalidation after base-table updates
    # ------------------------------------------------------------------
    def invalidate_base_chunks(self, base_numbers: list[int]) -> int:
        """Drop cached query results whose region covers updated data.

        A cached result is stale iff its leaf-level selection region
        intersects any updated base chunk's cell block.

        Returns:
            Number of entries invalidated.
        """
        if not base_numbers:
            return 0
        base_grid = (
            self.backend.space.base_grid
            if self.backend.chunked_file is not None
            else None
        )
        if base_grid is None:
            # Without chunk geometry the safe answer is "drop everything".
            removed = len(self._entries)
            for key in list(self._entries):
                self._drop(key)
            return removed
        blocks = []
        for number in base_numbers:
            ranges = base_grid.cell_ranges(number)
            blocks.append(
                tuple((r.lo, r.hi) for r in ranges if r is not None)
            )
        removed = 0
        for key in list(self._entries):
            entry = self._entries[key]
            try:
                region = entry.query.leaf_selection(self.schema)
            except QueryError:
                # A provably-empty selection intersects nothing, but the
                # conservative invalidation treatment is "overlaps
                # everything" — correctness over retention.
                region = (None,) * self.schema.num_dimensions
            for block in blocks:
                if all(
                    interval is None
                    or (interval[0] < hi and lo < interval[1])
                    for interval, (lo, hi) in zip(region, block)
                ):
                    self._drop(key)
                    removed += 1
                    break
        return removed

    def _drop(self, key: QueryKey) -> None:
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        self._used_bytes -= entry.size_bytes
        self.policy.remove(key)
        keys = self._by_shape.get(entry.query.cache_compatible_key())
        if keys is not None and key in keys:
            keys.remove(key)
        self._check_accounting()

    def _check_accounting(self) -> None:
        """Byte/benefit conservation after a mutation (see invariants)."""
        if invariants.enabled():
            invariants.check_cache_accounting(
                self._used_bytes,
                self.capacity_bytes,
                self._entries.values() if invariants.deep() else None,
                owner="query cache",
            )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def answer(self, query: StarQuery) -> Answer:
        """Answer a query, reusing and updating the query cache."""
        result = self.pipeline.execute(query)
        self.metrics.record(result.record, result.trace)
        return Answer(
            rows=result.rows, record=result.record, trace=result.trace
        )

    # ------------------------------------------------------------------
    # The QueryResultStore protocol (consumed by the resolver links)
    # ------------------------------------------------------------------
    def find_containing(self, query: StarQuery) -> CachedQuery | None:
        """A cached entry whose query contains ``query``, if any."""
        shape = query.cache_compatible_key()
        for key in self._by_shape.get(shape, ()):  # insertion order
            entry = self._entries.get(key)
            if entry is not None and query_contains(entry.query, query):
                return entry
        return None

    def note_hit(self, entry: CachedQuery) -> None:
        """Tell the replacement policy ``entry`` was referenced."""
        self.policy.on_access(entry.query.exact_key())

    def admit(
        self, query: StarQuery, rows: np.ndarray, benefit: float
    ) -> None:
        """Admit a freshly computed whole result (evicting as needed)."""
        entry = CachedQuery(query=query, rows=rows, benefit=benefit)
        if entry.size_bytes > self.capacity_bytes:
            return
        key = query.exact_key()
        if key in self._entries:
            self._used_bytes -= self._entries[key].size_bytes
            self._entries[key] = entry
            self._used_bytes += entry.size_bytes
            self.policy.on_access(key)
            return
        while self._used_bytes + entry.size_bytes > self.capacity_bytes:
            self._evict_one(benefit)
        self._entries[key] = entry
        self._used_bytes += entry.size_bytes
        shape = query.cache_compatible_key()
        self._by_shape.setdefault(shape, []).append(key)
        self.policy.on_insert(key, benefit)
        self._check_accounting()

    def _evict_one(self, incoming_benefit: float) -> None:
        if not self._entries:
            raise CacheError(
                "eviction requested but the query cache holds no entries "
                "(budget cannot be satisfied)"
            )
        victim_key = self.policy.victim(incoming_benefit)
        victim = self._entries.pop(victim_key, None)
        if victim is None:
            raise CacheError(
                "policy evicted unknown query key (state diverged)"
            )
        self._used_bytes -= victim.size_bytes
        shape = victim.query.cache_compatible_key()
        keys = self._by_shape.get(shape)
        if keys is not None:
            try:
                keys.remove(victim_key)
            except ValueError:
                pass
