"""The two-tier chunk cache: in-memory L1 over a persistent L2 backend.

:class:`TieredChunkCache` implements the
:class:`~repro.core.cache.ChunkStore` protocol by layering the existing
in-memory cache (a :class:`~repro.core.cache.ChunkCache` or the serving
layer's sharded store) over any durable
:class:`~repro.storage.l2.L2Backend` — the append-only
:class:`~repro.storage.chunklog.ChunkLog` by default, or the
:class:`~repro.storage.sqlitelog.SqliteBackend` (see ``docs/TIERING.md``
§Backends):

- **Spill on eviction.**  The L1 store's eviction observer
  (``evict_hook``) fires for every victim; victims whose CLOCK benefit
  clears ``demote_min_benefit`` are *demoted* — encoded and appended to
  the log as a charged write.  Low-benefit victims are simply dropped,
  exactly as before (DynaMat's "don't trash your intermediates" policy,
  applied only where the intermediate is worth the pages).
- **Promote on L2 hit.**  An L1 miss whose key is live in the log reads
  the record back (a charged, CRC-verified read), re-inserts the chunk
  into L1 and returns it.  The caller sees a hit; the page cost of the
  promotion is attributed to the L2 tier's accounting disk, never
  hidden (see :meth:`tiers`).
- **Warm restart.**  :meth:`reopen` rebuilds the L2 key map from the
  log manifest, trims the live set to the benefit-ranked prefix that
  fits ``l2_budget_bytes`` (when a budget is set), and refills L1
  highest-benefit-first until the budget is reached, so a restarted
  stack starts warm instead of cold.
- **L2 byte budget.**  ``l2_budget_bytes`` caps live payload bytes in
  the backend: a spill that would overflow first evicts the
  lowest-benefit live records (charged tombstones; ties broken by
  insertion order), and a single record larger than the whole budget
  is never spilled (``budget_skipped``).  ``None`` (the default)
  leaves the tier unbounded, exactly as before.
- **Compaction trigger.**  With ``compact_threshold`` set, any
  operation that grows dead space (spill supersede, invalidate,
  budget eviction, clear) checks the backend's dead/total page ratio
  and runs :meth:`~repro.storage.l2.L2Backend.compact` once it crosses
  the threshold.  ``None`` (the default) never compacts — existing
  digests cannot move.
- **Degrade, never corrupt.**  Spill/promote I/O faults are retried
  once when transient and otherwise dropped (a failed spill loses a
  *copy*, never the truth; a failed promote is an L2 miss).  A CRC
  mismatch quarantines the record.  A streak of ``failure_limit``
  consecutive L2 I/O failures disables the tier entirely — the cache
  degrades to plain L1 behaviour rather than hammering a poisoned log.

Locking: the tier's own bookkeeping lock (witness level ``"tiered"``)
nests inside L1 shard locks (the spill hook fires under the victim's
shard lock) and outside the backend lock — the documented order is
``shard -> tiered -> l2`` (``tests/tools/lockorder.txt``).  The
promote path releases the tier lock *before* re-inserting into L1, so
no path ever takes a shard lock while holding ``tiered``.

With ``evict_hook`` left uninstalled (single-tier stacks) none of this
module is on any code path — 1-tier behaviour is bit-identical to a
build without it.
"""

from __future__ import annotations

import json
import struct
import threading
from typing import TYPE_CHECKING

import numpy as np

from repro.core.cache import ChunkCacheStats, ChunkStore
from repro.core.chunk import CachedChunk, ChunkKey
from repro.exceptions import (
    CacheError,
    ChunkLogCorruption,
    ChunkLogError,
    DiskFault,
)
from repro.lockorder import witness
from repro.storage.l2 import L2Backend, check_l2_conservation

if TYPE_CHECKING:
    from repro.core.cache import FaultHook

__all__ = [
    "TieredChunkCache",
    "chunk_token",
    "token_key",
    "encode_chunk",
    "decode_chunk",
]

_META_LEN = struct.Struct("<I")


def chunk_token(key: ChunkKey) -> str:
    """Canonical, deterministic string identity of a chunk key.

    Used as the chunk-log record token; :func:`token_key` inverts it.
    Canonical JSON (sorted keys, no whitespace, sorted predicate set) so
    equal keys always map to byte-equal tokens across processes.
    """
    return json.dumps(
        {
            "a": [list(pair) for pair in key.aggregates],
            "g": list(key.groupby),
            "n": key.number,
            "p": sorted(key.fixed_predicates),
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def token_key(token: str) -> ChunkKey:
    """Rebuild the :class:`ChunkKey` a :func:`chunk_token` encodes."""
    data = json.loads(token)
    return ChunkKey(
        groupby=tuple(int(level) for level in data["g"]),
        number=int(data["n"]),
        aggregates=tuple(
            (str(name), str(agg)) for name, agg in data["a"]
        ),
        fixed_predicates=frozenset(str(tag) for tag in data["p"]),
    )


def _dtype_to_json(dtype: np.dtype) -> object:
    if dtype.names is None:
        return dtype.str
    return [list(field) for field in dtype.descr]


def _dtype_from_json(spec: object) -> np.dtype:
    if isinstance(spec, str):
        return np.dtype(spec)
    if not isinstance(spec, list):
        raise ChunkLogError(f"malformed dtype spec {spec!r}")
    fields: list[tuple[str, str] | tuple[str, str, tuple[int, ...]]] = []
    for field in spec:
        if len(field) == 2:
            fields.append((str(field[0]), str(field[1])))
        else:
            fields.append(
                (
                    str(field[0]),
                    str(field[1]),
                    tuple(int(n) for n in field[2]),
                )
            )
    return np.dtype(fields)


def encode_chunk(entry: CachedChunk) -> bytes:
    """Serialize a cached chunk's value into a chunk-log payload.

    Layout: meta length (u32) + canonical-JSON meta + raw row bytes.
    Floats travel as ``float.hex()`` so the round trip is exact, and
    the dtype spec carries explicit byte order — the payload is a pure
    function of the entry, suitable for golden-file pinning.
    """
    rows = np.ascontiguousarray(entry.rows)
    meta = json.dumps(
        {
            "b": entry.benefit.hex(),
            "c": entry.compute_pages.hex(),
            "d": _dtype_to_json(rows.dtype),
            "s": list(rows.shape),
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    return _META_LEN.pack(len(meta)) + meta + rows.tobytes()


def decode_chunk(key: ChunkKey, payload: bytes) -> CachedChunk:
    """Inverse of :func:`encode_chunk` for a known key.

    Raises :class:`~repro.exceptions.ChunkLogError` on a malformed
    payload — callers treat that like a corrupt record (quarantine).
    """
    if len(payload) < _META_LEN.size:
        raise ChunkLogError("chunk payload too short for its meta header")
    (meta_len,) = _META_LEN.unpack_from(payload, 0)
    meta_end = _META_LEN.size + meta_len
    if meta_end > len(payload):
        raise ChunkLogError("chunk payload meta extends past the record")
    try:
        meta = json.loads(payload[_META_LEN.size : meta_end])
        dtype = _dtype_from_json(meta["d"])
        shape = tuple(int(n) for n in meta["s"])
        rows = (
            np.frombuffer(payload[meta_end:], dtype=dtype)
            .reshape(shape)
            .copy()
        )
        benefit = float.fromhex(meta["b"])
        compute_pages = float.fromhex(meta["c"])
    except (KeyError, ValueError, TypeError) as exc:
        raise ChunkLogError(f"malformed chunk payload: {exc}") from exc
    return CachedChunk(
        key=key, rows=rows, benefit=benefit, compute_pages=compute_pages
    )


class TieredChunkCache:
    """A :class:`ChunkStore` layering an in-memory L1 over an L2 backend.

    Args:
        l1: The in-memory tier — any ``ChunkStore`` exposing either a
            ``set_evict_hook`` method (the sharded store) or an
            ``evict_hook`` attribute (the plain cache).
        log: The persistent tier — any
            :class:`~repro.storage.l2.L2Backend`.  The tiered cache
            owns it from here on (:meth:`close` closes it).
        demote_min_benefit: Spill threshold — victims whose benefit is
            below it are dropped, not demoted.  ``0.0`` demotes every
            victim (all real benefits are positive).
        failure_limit: Consecutive L2 I/O failures (spill or promote)
            before the tier disables itself and degrades to L1-only.
        l2_budget_bytes: Cap on live payload bytes in the backend.
            Spills evict the lowest-benefit live records to make room
            (charged tombstones); a record larger than the whole
            budget is never spilled.  ``None`` = unbounded (the PR 8
            behaviour, bit-identical).
        compact_threshold: Dead-space ratio (``dead / (dead + live)``
            pages) at which dead-space-growing operations trigger a
            backend compaction.  ``None`` = never compact.

    ``capacity_bytes``/``used_bytes`` are the L1 budget.  ``stats``
    folds L2 hits into the combined hit/miss counters: a lookup served
    by promotion counts as a hit of the store, not a miss, which is
    what the cost model should see.
    """

    def __init__(
        self,
        l1: ChunkStore,
        log: L2Backend,
        demote_min_benefit: float = 0.0,
        failure_limit: int = 8,
        l2_budget_bytes: int | None = None,
        compact_threshold: float | None = None,
    ) -> None:
        if demote_min_benefit < 0.0:
            raise CacheError(
                f"negative demotion threshold {demote_min_benefit}"
            )
        if failure_limit < 1:
            raise CacheError(f"failure_limit must be >= 1, got {failure_limit}")
        if l2_budget_bytes is not None and l2_budget_bytes < 0:
            raise CacheError(
                f"negative L2 byte budget {l2_budget_bytes}"
            )
        if compact_threshold is not None and not (
            0.0 < compact_threshold <= 1.0
        ):
            raise CacheError(
                f"compact_threshold must be in (0, 1], got {compact_threshold}"
            )
        self._l1 = l1
        self.log = log
        self.demote_min_benefit = demote_min_benefit
        self.failure_limit = failure_limit
        self.l2_budget_bytes = l2_budget_bytes
        self.compact_threshold = compact_threshold
        self._lock = threading.Lock()
        # All fields below are guarded by _lock.
        self._l2_keys: dict[str, ChunkKey] = {}
        self._l2_meta: dict[str, tuple[float, int]] = {}
        self._l2_bytes = 0
        self._l2_enabled = True
        self._failure_streak = 0
        self._warming = False
        self._l2_hits = 0
        self._l2_misses = 0
        self._spills = 0
        self._spill_skipped = 0
        self._spill_faults = 0
        self._promotes = 0
        self._promote_faults = 0
        self._quarantined = 0
        self._warm_loaded = 0
        self._l2_evictions = 0
        self._budget_skipped = 0
        self._compact_faults = 0
        hook_setter = getattr(l1, "set_evict_hook", None)
        if callable(hook_setter):
            hook_setter(self._on_evict)
        else:
            setattr(l1, "evict_hook", self._on_evict)
        # No lock: the object is not published until __init__ returns,
        # so construction has the exclusive access _locked helpers need.
        self._rebuild_keys_locked()

    # ------------------------------------------------------------------
    # ChunkStore protocol
    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        """The L1 byte budget (see ``l2_budget_bytes`` for the L2 cap)."""
        return self._l1.capacity_bytes

    @property
    def used_bytes(self) -> int:
        """Bytes charged against the L1 budget."""
        return self._l1.used_bytes

    @property
    def stats(self) -> ChunkCacheStats:
        """Combined counters: L2 promotions count as hits, not misses."""
        base = self._l1.stats
        with self._lock, witness("tiered"):
            l2_hits = self._l2_hits
        return ChunkCacheStats(
            hits=base.hits + l2_hits,
            misses=base.misses - l2_hits,
            insertions=base.insertions,
            evictions=base.evictions,
            rejected=base.rejected,
            poisoned=base.poisoned,
            pressure_evictions=base.pressure_evictions,
        )

    def __len__(self) -> int:
        return len(self._l1) + len(self._l2_only_keys())

    def __contains__(self, key: ChunkKey) -> bool:
        if key in self._l1:
            return True
        with self._lock, witness("tiered"):
            return self._l2_enabled and chunk_token(key) in self._l2_keys

    def get(self, key: ChunkKey) -> CachedChunk | None:
        """L1 lookup, falling back to a charged L2 promote on miss."""
        entry = self._l1.get(key)
        if entry is not None:
            return entry
        return self._promote(key)

    def peek(self, key: ChunkKey) -> CachedChunk | None:
        """Uncharged lookup across both tiers; no stats, no promotion."""
        entry = self._l1.peek(key)
        if entry is not None:
            return entry
        token = chunk_token(key)
        with self._lock, witness("tiered"):
            if not self._l2_enabled or token not in self._l2_keys:
                return None
            return self._decode_locked(token, key, self.log.peek(token))

    def put(self, entry: CachedChunk) -> bool:
        """Insert into L1; demotion happens via the eviction spill hook."""
        return self._l1.put(entry)

    def invalidate(self, key: ChunkKey) -> bool:
        """Drop a key from both tiers (the L2 drop is a charged tombstone)."""
        removed = self._l1.invalidate(key)
        token = chunk_token(key)
        with self._lock, witness("tiered"):
            if self._l2_keys.pop(token, None) is not None:
                self._forget_meta_locked(token)
                try:
                    removed = self.log.delete(token) or removed
                except DiskFault:
                    # The tombstone write faulted: the record stays on
                    # disk but is dead to this process; a restart scan
                    # resurrects it, which invalidation semantics accept
                    # for a *cache* (the base data re-derives the truth).
                    self._spill_faults += 1
                    self._note_failure_locked()
                removed = True
                self._maybe_compact_locked()
        return removed

    def clear(self) -> None:
        """Drop both tiers (one charged clear-all record in the log)."""
        self._l1.clear()
        with self._lock, witness("tiered"):
            self._l2_keys.clear()
            self._l2_meta.clear()
            self._l2_bytes = 0
            try:
                self.log.clear()
            except DiskFault:
                self._spill_faults += 1
                self._note_failure_locked()
            self._maybe_compact_locked()

    def keys(self) -> list[ChunkKey]:
        """L1 keys, then L2-only keys in manifest order (snapshot)."""
        found = self._l1.keys()
        found.extend(self._l2_only_keys())
        return found

    def snapshot(self) -> list[tuple[ChunkKey, CachedChunk]]:
        """Point-in-time pairs across both tiers (L2 decodes uncharged)."""
        pairs = self._l1.snapshot()
        resident = {key for key, _ in pairs}
        with self._lock, witness("tiered"):
            if not self._l2_enabled:
                return pairs
            for token, key in list(self._l2_keys.items()):
                if key in resident:
                    continue
                try:
                    payload = self.log.peek(token)
                    entry = self._decode_locked(token, key, payload)
                except (ChunkLogCorruption, ChunkLogError):
                    entry = None
                if entry is not None:
                    pairs.append((key, entry))
        return pairs

    def contention(self) -> dict[str, object]:
        """The L1 store's contention counters (the log is lock-serial)."""
        return self._l1.contention()

    def tiers(self) -> dict[str, object]:
        """Per-tier counters — the snapshot tree renders these when
        non-empty (single-tier stores return ``{}``)."""
        l1_stats = self._l1.stats
        l1: dict[str, object] = {
            "entries": len(self._l1),
            "used_bytes": int(self._l1.used_bytes),
            "capacity_bytes": int(self._l1.capacity_bytes),
            "hits": l1_stats.hits,
            "misses": l1_stats.misses,
            "evictions": l1_stats.evictions,
        }
        log_stats = self.log.stats
        disk_stats = self.log.disk.stats
        space = self.log.counters()
        with self._lock, witness("tiered"):
            lookups = self._l2_hits + self._l2_misses
            l2: dict[str, object] = {
                "entries": len(self._l2_keys),
                "live_bytes": self.log.live_bytes,
                "hits": self._l2_hits,
                "misses": self._l2_misses,
                "hit_ratio": self._l2_hits / lookups if lookups else 0.0,
                "spills": self._spills,
                "spill_skipped": self._spill_skipped,
                "spill_faults": self._spill_faults,
                "promotes": self._promotes,
                "promote_faults": self._promote_faults,
                "quarantined": self._quarantined,
                "warm_loaded": self._warm_loaded,
                "degraded": not self._l2_enabled,
                "pages_written": disk_stats.writes,
                "pages_read": disk_stats.reads,
                "scan_pages": log_stats.scan_pages,
                "live_pages": space["live_pages"],
                "dead_pages": space["dead_pages"],
                "compactions": space["compactions"],
                "reclaimed_pages": space["reclaimed_pages"],
                "compact_faults": self._compact_faults,
                "evictions": self._l2_evictions,
                "budget_skipped": self._budget_skipped,
                "budget_bytes": self.l2_budget_bytes,
            }
        return {
            "l1": l1,
            "l2": l2,
            "demote_min_benefit": self.demote_min_benefit,
        }

    # ------------------------------------------------------------------
    # Tier plumbing
    # ------------------------------------------------------------------
    def set_fault_hook(self, hook: "FaultHook | None") -> None:
        """Forward the cache-put fault hook to the L1 store."""
        setter = getattr(self._l1, "set_fault_hook", None)
        if callable(setter):
            setter(hook)
        else:
            setattr(self._l1, "fault_hook", hook)

    def check_conservation(self) -> None:
        """L1 conservation plus exact L2 page reconciliation.

        The log's logical page counters must equal its accounting
        disk's counters *exactly* — spills, promotions, tombstones and
        restart scans account for every page, even pages charged by
        operations a fault later aborted.
        """
        checker = getattr(self._l1, "check_conservation", None)
        if callable(checker):
            checker()
        check_l2_conservation(self.log)

    def reopen(self) -> int:
        """Warm-start: rebuild the L2 key map and refill L1 from the log.

        With ``l2_budget_bytes`` set, the live set is first trimmed to
        the **benefit-ranked prefix** that fits the budget (ties broken
        by manifest order): ranking stops at the first record that
        does not fit and everything ranked below it is dropped with
        charged tombstones — a zero budget drops everything, a single
        record larger than the budget is dropped even when alone.

        L1 candidates then load highest-benefit-first (ties broken by
        manifest order, so the fill is deterministic) and stop charging
        the L1 budget exactly at capacity — an entry that does not fit
        is skipped, smaller ones may still fit.  Decodes ride on the
        open scan's already-charged reads (no double charge); corrupt
        records are quarantined, not fatal.  Returns entries loaded.
        """
        with self._lock, witness("tiered"):
            self._rebuild_keys_locked()
            self._enforce_budget_on_reopen_locked()
            candidates = sorted(
                (
                    (-benefit, index, token)
                    for index, (token, benefit, _size) in enumerate(
                        self.log.scan_keys()
                    )
                    if token in self._l2_keys
                ),
            )
            self._warming = True
        loaded = 0
        try:
            for _neg_benefit, _index, token in candidates:
                with self._lock, witness("tiered"):
                    key = self._l2_keys.get(token)
                    if key is None:
                        continue
                    try:
                        payload = self.log.peek(token)
                        entry = self._decode_locked(token, key, payload)
                    except (ChunkLogCorruption, ChunkLogError):
                        entry = None
                    if entry is None:
                        continue
                if key in self._l1:
                    continue
                if (
                    self._l1.used_bytes + entry.size_bytes
                    > self._l1.capacity_bytes
                ):
                    continue
                if self._l1.put(entry):
                    loaded += 1
        finally:
            with self._lock, witness("tiered"):
                self._warming = False
                self._warm_loaded += loaded
        return loaded

    def close(self) -> None:
        """Detach the spill hook and close the log (idempotent)."""
        hook_setter = getattr(self._l1, "set_evict_hook", None)
        if callable(hook_setter):
            hook_setter(None)
        else:
            setattr(self._l1, "evict_hook", None)
        self.log.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _promote(self, key: ChunkKey) -> CachedChunk | None:
        """Charged L2 read on an L1 miss; releases the tier lock before
        re-inserting into L1 (no path holds ``tiered`` around a shard
        lock)."""
        token = chunk_token(key)
        entry: CachedChunk | None = None
        with self._lock, witness("tiered"):
            if not self._l2_enabled or token not in self._l2_keys:
                self._l2_misses += 1
                return None
            try:
                payload = self._read_with_retry(token)
            except ChunkLogCorruption:
                self._quarantine_locked(token)
                self._l2_misses += 1
                return None
            except DiskFault:
                self._promote_faults += 1
                self._l2_misses += 1
                self._note_failure_locked()
                return None
            except ChunkLogError:
                self._l2_keys.pop(token, None)
                self._l2_misses += 1
                return None
            self._failure_streak = 0
            entry = self._decode_locked(token, key, payload)
            if entry is None:
                self._l2_misses += 1
                return None
            self._l2_hits += 1
            self._promotes += 1
        self._l1.put(entry)
        return entry

    def _on_evict(self, victim: CachedChunk) -> None:
        """Eviction observer: demote the victim when its benefit clears
        the threshold.  Fires under the evicting L1 shard's lock and
        never raises — a failed spill loses a copy, not the truth."""
        with self._lock, witness("tiered"):
            if self._warming or not self._l2_enabled:
                return
            if victim.benefit < self.demote_min_benefit:
                self._spill_skipped += 1
                return
            token = chunk_token(victim.key)
            payload = encode_chunk(victim)
            if not self._make_room_locked(token, len(payload)):
                self._budget_skipped += 1
                return
            try:
                self._append_with_retry(token, payload, victim.benefit)
            except DiskFault:
                self._spill_faults += 1
                self._note_failure_locked()
                return
            self._failure_streak = 0
            self._spills += 1
            self._l2_keys[token] = victim.key
            self._forget_meta_locked(token)
            self._l2_meta[token] = (victim.benefit, len(payload))
            self._l2_bytes += len(payload)
            self._maybe_compact_locked()

    def _make_room_locked(self, token: str, need: int) -> bool:
        """Evict lowest-benefit live records until ``need`` payload
        bytes fit the L2 budget.  Returns False when the record alone
        exceeds the budget (never spilled).  Evictions are charged
        tombstones; ties break by insertion order."""
        if self.l2_budget_bytes is None:
            return True
        if need > self.l2_budget_bytes:
            return False
        # A re-spill of a live token replaces it: its current bytes
        # come back before the new payload is charged.
        current = self._l2_bytes
        existing = self._l2_meta.get(token)
        if existing is not None:
            current -= existing[1]
        while current + need > self.l2_budget_bytes:
            victim_token: str | None = None
            victim_benefit = 0.0
            for candidate, (benefit, _size) in self._l2_meta.items():
                if candidate == token:
                    continue
                if victim_token is None or benefit < victim_benefit:
                    victim_token = candidate
                    victim_benefit = benefit
            if victim_token is None:
                break
            current -= self._l2_meta[victim_token][1]
            self._evict_l2_locked(victim_token)
        return True

    def _evict_l2_locked(self, token: str) -> None:
        """Budget eviction: charged tombstone + manifest removal."""
        self._l2_keys.pop(token, None)
        self._forget_meta_locked(token)
        try:
            self.log.delete(token)
        except DiskFault:
            # The tombstone faulted: the record is dead to this process
            # either way (a restart resurrects it — cache semantics
            # accept that, the base data re-derives the truth).
            self._spill_faults += 1
            self._note_failure_locked()
        self._l2_evictions += 1

    def _maybe_compact_locked(self) -> None:
        """Run a backend compaction once dead space crosses the
        configured ratio.  A faulted compaction leaves the backend
        unchanged (its contract) — count it and move on; no degrade,
        nothing was lost."""
        if self.compact_threshold is None:
            return
        space = self.log.counters()
        total = space["live_pages"] + space["dead_pages"]
        if total <= 0 or space["dead_pages"] / total < self.compact_threshold:
            return
        try:
            self.log.compact()
        except DiskFault:
            self._compact_faults += 1

    def _enforce_budget_on_reopen_locked(self) -> None:
        """Trim the recovered live set to the benefit-ranked prefix
        that fits ``l2_budget_bytes`` (strict prefix: ranking stops at
        the first record that does not fit)."""
        if self.l2_budget_bytes is None:
            return
        ranked = sorted(
            (-benefit, index, token, size)
            for index, (token, (benefit, size)) in enumerate(
                self._l2_meta.items()
            )
        )
        kept = 0
        fits = True
        for _neg_benefit, _index, token, size in ranked:
            if fits and kept + size <= self.l2_budget_bytes:
                kept += size
                continue
            fits = False
            self._evict_l2_locked(token)
        self._maybe_compact_locked()

    def _read_with_retry(self, token: str) -> bytes:
        try:
            return self.log.get(token)
        except DiskFault as fault:
            if not fault.transient:
                raise
            return self.log.get(token)

    def _append_with_retry(
        self, token: str, payload: bytes, benefit: float
    ) -> int:
        try:
            return self.log.put(token, payload, benefit)
        except DiskFault as fault:
            if not fault.transient:
                raise
            return self.log.put(token, payload, benefit)

    def _decode_locked(
        self, token: str, key: ChunkKey, payload: bytes
    ) -> CachedChunk | None:
        """Decode a record, quarantining it on a malformed payload."""
        try:
            return decode_chunk(key, payload)
        except ChunkLogError:
            self._quarantine_locked(token)
            return None

    def _quarantine_locked(self, token: str) -> None:
        self.log.drop(token)
        self._l2_keys.pop(token, None)
        self._forget_meta_locked(token)
        self._quarantined += 1

    def _forget_meta_locked(self, token: str) -> None:
        meta = self._l2_meta.pop(token, None)
        if meta is not None:
            self._l2_bytes -= meta[1]

    def _note_failure_locked(self) -> None:
        self._failure_streak += 1
        if self._failure_streak >= self.failure_limit:
            self._l2_enabled = False

    def _rebuild_keys_locked(self) -> None:
        """Regenerate token -> key from the log manifest (lock held,
        or construction-exclusive from ``__init__``)."""
        self._l2_keys.clear()
        self._l2_meta.clear()
        self._l2_bytes = 0
        for token, benefit, size in self.log.scan_keys():
            try:
                self._l2_keys[token] = token_key(token)
            except (ValueError, KeyError, TypeError):
                # A token this build cannot parse is quarantined: the
                # record may belong to a future key schema.
                self.log.drop(token)
                self._quarantined += 1
                continue
            self._l2_meta[token] = (benefit, size)
            self._l2_bytes += size

    def _l2_only_keys(self) -> list[ChunkKey]:
        with self._lock, witness("tiered"):
            if not self._l2_enabled:
                return []
            keys = list(self._l2_keys.values())
        return [key for key in keys if key not in self._l1]
