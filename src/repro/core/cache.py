"""The byte-budgeted chunk cache.

:class:`ChunkCache` maps :class:`~repro.core.chunk.ChunkKey` to
:class:`~repro.core.chunk.CachedChunk` under a byte budget, delegating
victim selection to a pluggable
:class:`~repro.core.replacement.ReplacementPolicy`.  It knows nothing about
queries — the split of a query into present and missing chunks lives in
:class:`~repro.core.manager.ChunkCacheManager`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, runtime_checkable

from repro import invariants
from repro.core.chunk import CachedChunk, ChunkKey
from repro.core.replacement import ReplacementPolicy, make_policy
from repro.exceptions import CacheError

__all__ = ["ChunkCacheStats", "ChunkStore", "ChunkCache", "EvictHook"]

#: A cache fault hook inspects a put and returns None (no fault),
#: ``("poison", 0)`` (reject the put, cache unchanged) or
#: ``("pressure", n)`` (forcibly evict up to ``n`` entries first).
FaultHook = Callable[[CachedChunk], "tuple[str, int] | None"]

#: An eviction observer: called with each victim *after* it has been
#: removed and the byte accounting settled.  The tiered cache installs
#: one to spill high-benefit victims to the persistent L2 tier; the
#: hook must never raise (spill failures are the observer's problem,
#: not the evicting cache's).
EvictHook = Callable[[CachedChunk], None]


@dataclass
class ChunkCacheStats:
    """Hit/miss/eviction counters of a chunk cache.

    ``poisoned`` and ``pressure_evictions`` count injected-fault
    outcomes (see :mod:`repro.faults`); both stay zero on fault-free
    runs.
    """

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    rejected: int = 0
    poisoned: int = 0
    pressure_evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Chunk-level hit ratio (0.0 when never used)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


@runtime_checkable
class ChunkStore(Protocol):
    """What the manager and resolver chain need from a chunk cache.

    :class:`ChunkCache` is the canonical single-threaded implementation;
    :class:`repro.serve.ShardedChunkCache` is the lock-striped concurrent
    one.  The pipeline layers are typed against this protocol so either
    store plugs into :class:`~repro.core.manager.ChunkCacheManager`
    unchanged — the serving layer stays above, never inside, the core.
    """

    @property
    def capacity_bytes(self) -> int:
        """Total byte budget across the whole store."""
        ...

    @property
    def used_bytes(self) -> int:
        """Bytes currently charged against the budget."""
        ...

    @property
    def stats(self) -> "ChunkCacheStats":
        """Hit/miss/eviction counters (aggregated for sharded stores)."""
        ...

    def __len__(self) -> int: ...

    def __contains__(self, key: ChunkKey) -> bool: ...

    def get(self, key: ChunkKey) -> CachedChunk | None:
        """Lookup one chunk; hits refresh its replacement state."""
        ...

    def peek(self, key: ChunkKey) -> CachedChunk | None:
        """Entry lookup without touching stats or replacement state."""
        ...

    def put(self, entry: CachedChunk) -> bool:
        """Insert a chunk, evicting as needed; False if rejected."""
        ...

    def invalidate(self, key: ChunkKey) -> bool:
        """Drop one entry; False if absent."""
        ...

    def clear(self) -> None:
        """Drop everything (stats are kept)."""
        ...

    def keys(self) -> list[ChunkKey]:
        """All resident chunk keys (snapshot)."""
        ...

    def snapshot(self) -> list[tuple[ChunkKey, CachedChunk]]:
        """Point-in-time ``(key, entry)`` pairs."""
        ...

    def contention(self) -> dict[str, object]:
        """Lock-contention / shard-skew counters.

        Declared on the protocol so consumers (the serving layer, the
        snapshot tree) never probe for it with ``getattr``.  Unsharded
        stores return ``{}`` — "nothing to report", distinct from a
        sharded store's populated mapping.
        """
        ...

    def tiers(self) -> dict[str, object]:
        """Per-tier counters of a multi-tier store.

        Same contract shape as :meth:`contention`: single-tier stores
        return ``{}`` ("nothing to report"), and the snapshot tree only
        renders a tiers node when the mapping is non-empty — so adding
        this method changes no single-tier output byte.
        :class:`repro.core.tiered.TieredChunkCache` returns its L1/L2
        spill/promote/quarantine counters.
        """
        ...


class ChunkCache:
    """A byte-budgeted cache of chunks with pluggable replacement.

    Args:
        capacity_bytes: Total budget; entries are charged their payload
            size plus a fixed overhead.
        policy: A policy instance or name (``"lru"``, ``"clock"``,
            ``"benefit"``).
    """

    def __init__(
        self,
        capacity_bytes: int,
        policy: ReplacementPolicy | str = "benefit",
    ) -> None:
        if capacity_bytes < 0:
            raise CacheError(f"negative capacity {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self.stats = ChunkCacheStats()
        self._entries: dict[ChunkKey, CachedChunk] = {}
        self._used_bytes = 0
        # Fault-injection hook (repro.faults installs it; production
        # code never does).  Consulted at the top of put().
        self.fault_hook: FaultHook | None = None
        # Eviction observer (the tiered cache installs it to spill
        # victims to L2).  Called after each eviction settles; must not
        # raise.  None on single-tier stacks — behaviour is then
        # bit-identical to a hook-free cache.
        self.evict_hook: EvictHook | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: ChunkKey) -> bool:
        return key in self._entries

    @property
    def used_bytes(self) -> int:
        """Bytes currently charged against the budget."""
        return self._used_bytes

    def keys(self) -> list[ChunkKey]:
        """All resident chunk keys (snapshot)."""
        return list(self._entries)

    def peek(self, key: ChunkKey) -> CachedChunk | None:
        """Entry lookup without touching stats or replacement state."""
        return self._entries.get(key)

    def snapshot(self) -> list[tuple[ChunkKey, CachedChunk]]:
        """Point-in-time ``(key, entry)`` pairs in insertion order.

        A single pass over the table that touches neither statistics nor
        replacement state — the building block for
        ``describe_cache()``-style reporting.
        """
        return list(self._entries.items())

    def contention(self) -> dict[str, object]:
        """No contention counters: this store is single-threaded."""
        return {}

    def tiers(self) -> dict[str, object]:
        """No tier counters: this store is a single in-memory tier."""
        return {}

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def get(self, key: ChunkKey) -> CachedChunk | None:
        """Lookup one chunk; hits refresh its replacement state."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self.policy.on_access(key)
        return entry

    def put(self, entry: CachedChunk) -> bool:
        """Insert a chunk, evicting as needed; False if it was rejected.

        An entry larger than the whole budget is rejected (admission
        control).  Re-inserting a resident key refreshes its payload: the
        old entry is retired first, so the refresh re-enters replacement
        state at the entry's *current* benefit, can never evict itself,
        and an over-budget refresh leaves the key absent rather than
        silently serving the stale payload.

        An installed fault hook is consulted first: a poisoned put is
        rejected with the cache byte-for-byte unchanged; a pressure
        fault forcibly sheds entries before the put proceeds normally.
        """
        if self.fault_hook is not None:
            fault = self.fault_hook(entry)
            if fault is not None:
                fault_kind, amount = fault
                if fault_kind == "poison":
                    self.stats.poisoned += 1
                    return False
                if fault_kind == "pressure":
                    self.shed(amount)
                else:
                    raise CacheError(
                        f"unknown cache fault kind {fault_kind!r}"
                    )
        size = entry.size_bytes
        existing = self._entries.pop(entry.key, None)
        if existing is not None:
            self._used_bytes -= existing.size_bytes
            self.policy.remove(entry.key)
        if size > self.capacity_bytes:
            self.stats.rejected += 1
            return False
        while self._used_bytes + size > self.capacity_bytes:
            self._evict_one(entry.benefit)
        self._entries[entry.key] = entry
        self._used_bytes += size
        self.policy.on_insert(entry.key, entry.benefit)
        if existing is None:
            self.stats.insertions += 1
        self._check_accounting()
        return True

    def invalidate(self, key: ChunkKey) -> bool:
        """Drop one entry (e.g. after a base-table update); False if absent."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self._used_bytes -= entry.size_bytes
        self.policy.remove(key)
        self._check_accounting()
        return True

    def clear(self) -> None:
        """Drop everything (stats are kept)."""
        for key in list(self._entries):
            self.invalidate(key)

    def shed(self, count: int) -> int:
        """Forcibly evict up to ``count`` entries (injected pressure).

        Victims are what the replacement policy values least (the
        benefit-weighted policy takes its bounded weakest-entry path for
        a non-positive incoming weight, leaving other entries' sweep
        state untouched).  Returns the number actually evicted (bounded
        by residency); byte accounting is re-checked after.
        """
        shed = 0
        while shed < count and self._entries:
            self._evict_one(0.0)
            self.stats.pressure_evictions += 1
            shed += 1
        self._check_accounting()
        return shed

    def _evict_one(self, incoming_benefit: float) -> None:
        if not self._entries:
            raise CacheError(
                "eviction requested but the cache holds no entries "
                "(budget cannot be satisfied)"
            )
        victim_key = self.policy.victim(incoming_benefit)
        victim = self._entries.pop(victim_key, None)
        if victim is None:
            raise CacheError(
                f"policy evicted unknown key {victim_key!r} "
                "(cache/policy state diverged)"
            )
        self._used_bytes -= victim.size_bytes
        self.stats.evictions += 1
        if self.evict_hook is not None:
            self.evict_hook(victim)

    def _check_accounting(self) -> None:
        """Byte/benefit conservation after a mutation (see invariants)."""
        if invariants.enabled():
            invariants.check_cache_accounting(
                self._used_bytes,
                self.capacity_bytes,
                self._entries.values() if invariants.deep() else None,
                owner="chunk cache",
            )
