"""The middle-tier chunk cache manager — the paper's core contribution.

:class:`ChunkCacheManager` answers star queries through the staged
pipeline of Section 5.2 (:mod:`repro.pipeline`):

1. **Query analysis** (:class:`ChunkAnalyzer`) — a cached chunk is
   reusable only when group-by, aggregate list and non-group-by
   predicates match (conditions 1–3); these three components are baked
   into every :class:`~repro.core.chunk.ChunkKey`.  Analysis also runs
   **ComputeChunkNums**: the query's group-by selections become the list
   of chunk numbers forming its bounding envelope
   (:meth:`~repro.chunks.grid.ChunkGrid.chunk_numbers_for_selection`),
   and the recomputation work of all those chunks is memoized in one
   batched backend probe.
2. **Resolver chain** — *query splitting* and *missing-chunk
   computation* are links of a chain
   (:mod:`repro.pipeline.resolvers`): direct cache lookup, optional
   in-cache derivation and drill-down prefetch (the Section 7
   future-work extensions), and the terminal backend computation via the
   chunk interface (closure property + chunked file).
3. **Assembly** (:class:`ChunkAssembler`) — chunk rows are concatenated
   and boundary rows outside the exact selection are filtered out
   (chunks are a bounding envelope, Section 5.2.3).
4. **Accounting** (:class:`ChunkAccountant`) — the answer is priced
   through the shared :func:`repro.core.metrics.account_answer`.

Every answer carries a :class:`~repro.core.metrics.QueryRecord` plus a
per-stage :class:`~repro.pipeline.trace.ExecutionTrace`, so streams
accumulate the paper's CSR and mean-time metrics *and* per-stage /
per-resolver attribution as they run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import invariants
from repro.analysis.cost import CostModel
from repro.backend.engine import BackendEngine
from repro.chunks.grid import ChunkSpace
from repro.chunks.closure import source_spans
from repro.core.cache import ChunkStore
from repro.core.metrics import QueryRecord, StreamMetrics, account_answer
from repro.core.snapshot import Snapshot, build_chunk_snapshot
from repro.exceptions import CacheError
from repro.pipeline.executor import StagedPipeline
from repro.pipeline.resolvers import (
    BackendChunkResolver,
    CacheHitResolver,
    ChunkAdmitter,
    DerivationResolver,
    PartitionResolver,
    PrefetchResolver,
)
from repro.pipeline.stages import (
    AnalyzedQuery,
    ChunkPlan,
    Resolution,
    select_exact,
)
from repro.pipeline.trace import ExecutionTrace
from repro.pipeline.work import ChunkWorkEstimator
from repro.query.model import StarQuery
from repro.schema.star import GroupBy, StarSchema

__all__ = [
    "Answer",
    "ChunkAnalyzer",
    "ChunkAssembler",
    "ChunkAccountant",
    "ChunkCacheManager",
]


@dataclass
class Answer:
    """Result of answering one query through a cache manager.

    Attributes:
        rows: The query's result rows (exact — boundary tuples filtered).
        record: The accounting record also appended to the manager's
            :class:`~repro.core.metrics.StreamMetrics`.
        trace: Per-stage instrumentation of how the answer was produced
            (None only for answerers outside the staged pipeline).
    """

    rows: np.ndarray
    record: QueryRecord
    trace: ExecutionTrace | None = None


class ChunkAnalyzer:
    """Analysis stage: conditions 1–3 plus ComputeChunkNums.

    Also warms the work estimator for every chunk the query touches in
    one batched backend probe, so admission and accounting downstream
    are pure memo lookups.
    """

    def __init__(
        self, space: ChunkSpace, estimator: ChunkWorkEstimator
    ) -> None:
        self.space = space
        self.estimator = estimator

    def analyze(self, query: StarQuery) -> AnalyzedQuery:
        grid = self.space.grid(query.groupby)
        numbers = grid.chunk_numbers_for_selection(query.selections)
        self.estimator.ensure(query.groupby, numbers)
        analyzed = AnalyzedQuery.from_query(query, tuple(numbers))
        if invariants.deep():
            invariants.check_partition(analyzed, grid)
        return analyzed


class ChunkAssembler:
    """Assembly stage: concatenate chunk rows, trim boundary rows."""

    def __init__(self, schema: StarSchema) -> None:
        self.schema = schema

    def assemble(
        self, analyzed: AnalyzedQuery, resolution: Resolution
    ) -> np.ndarray:
        parts = [
            resolution.parts[number].rows
            for number in analyzed.partitions
        ]
        non_empty = [p for p in parts if len(p)]
        if not non_empty:
            return analyzed.query.result_format(self.schema).empty()
        rows = np.concatenate(non_empty)
        return select_exact(self.schema, analyzed.query, rows)


class ChunkAccountant:
    """Accounting stage: per-chunk CSR numerators, shared pricing."""

    def __init__(
        self, cost_model: CostModel, estimator: ChunkWorkEstimator
    ) -> None:
        self.cost_model = cost_model
        self.estimator = estimator

    def account(
        self,
        analyzed: AnalyzedQuery,
        resolution: Resolution,
        plan: ChunkPlan,
        result_rows: int,
    ) -> QueryRecord:
        work = self.estimator.ensure(
            analyzed.groupby, analyzed.partitions
        )
        full_cost = 0.0
        saved_cost = 0.0
        for number in analyzed.partitions:
            pages, tuples = work[number]
            chunk_cost = self.cost_model.backend_time(pages, tuples)
            full_cost += chunk_cost
            if resolution.parts[number].saved:
                saved_cost += chunk_cost
        return account_answer(
            self.cost_model,
            resolution.report,
            full_cost=full_cost,
            saved_cost=saved_cost,
            chunks_total=len(analyzed.partitions),
            chunks_hit=len(plan.present),
            chunks_derived=len(plan.derived),
            tuples_from_cache=resolution.tuples_from_cache(),
            result_rows=result_rows,
        )


class ChunkCacheManager:
    """Answers star queries from a chunk cache backed by a chunked file.

    Args:
        schema: The star schema.
        space: Shared chunk geometry (the same object the backend uses).
        backend: A loaded chunked-organization backend engine.
        cache: The chunk cache (policy and budget live there).
        cost_model: Converts physical work into modelled time.
        aggregate_in_cache: Enable the future-work extension — derive
            missing chunks by aggregating cached chunks of finer
            group-bys before falling back to the backend (Section 7).
        prefetch_drilldown: Enable the paper's second future-work idea:
            "more aggressive caching schemes, which fetch data at more
            detail than what is required ... particularly useful for
            drill down queries" (Section 7).  When the backend computes
            missing chunks, it computes them one hierarchy level *finer*
            on every grouped dimension (same base I/O — the base chunks
            are identical), caches the detailed chunks, and derives the
            requested level in the middle tier; a subsequent drill-down
            then hits the cache.  Implies the derivation machinery, so
            it forces ``aggregate_in_cache`` on and only engages for
            decomposable aggregates.
    """

    def __init__(
        self,
        schema: StarSchema,
        space: ChunkSpace,
        backend: BackendEngine,
        cache: ChunkStore,
        cost_model: CostModel | None = None,
        aggregate_in_cache: bool = False,
        prefetch_drilldown: bool = False,
    ) -> None:
        if backend.chunked_file is None:
            raise CacheError(
                "ChunkCacheManager requires a chunked-organization backend"
            )
        self.schema = schema
        self.space = space
        self.backend = backend
        self.cache = cache
        self.cost_model = cost_model or CostModel()
        self.aggregate_in_cache = aggregate_in_cache or prefetch_drilldown
        self.prefetch_drilldown = prefetch_drilldown
        self.metrics = StreamMetrics()
        self.estimator = ChunkWorkEstimator(backend)
        self.admitter = ChunkAdmitter(space, cache, self.estimator)
        self.pipeline = StagedPipeline(
            analyzer=ChunkAnalyzer(space, self.estimator),
            resolvers=self._build_chain(),
            assembler=ChunkAssembler(schema),
            accountant=ChunkAccountant(self.cost_model, self.estimator),
            cost_model=self.cost_model,
        )

    def _build_chain(self) -> list[PartitionResolver]:
        """cache-hit → [derive] → [prefetch] → backend."""
        chain: list[PartitionResolver] = [CacheHitResolver(self.cache)]
        if self.aggregate_in_cache:
            chain.append(
                DerivationResolver(
                    self.schema, self.space, self.cache,
                    self.backend, self.admitter,
                )
            )
        if self.prefetch_drilldown:
            chain.append(
                PrefetchResolver(
                    self.schema, self.space, self.backend, self.admitter
                )
            )
        chain.append(
            BackendChunkResolver(self.schema, self.backend, self.admitter)
        )
        return chain

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def answer(self, query: StarQuery) -> Answer:
        """Answer a query, reusing and updating the chunk cache."""
        result = self.pipeline.execute(query)
        self.metrics.record(result.record, result.trace)
        return Answer(
            rows=result.rows, record=result.record, trace=result.trace
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def snapshot(self) -> Snapshot:
        """A typed snapshot of cache composition and stream aggregates.

        The tree (:class:`repro.core.snapshot.Snapshot`) covers byte
        usage, entry count, a per-group-by breakdown (resident chunks,
        bytes, total benefit) — handy for seeing what the replacement
        policy is protecting — the stream's per-stage / per-resolver
        trace aggregates, the injected-fault summary, and (for sharded
        stores; see :meth:`repro.core.cache.ChunkStore.contention`)
        lock-contention and shard-skew metrics.
        """
        return build_chunk_snapshot(self.cache, self.metrics)

    def describe_cache(self) -> dict[str, object]:
        """Deprecated: the pre-:class:`Snapshot` report dictionary.

        A thin shim over :meth:`snapshot` that reproduces the legacy
        shape bit-for-bit (same keys, same order, same numeric types).
        New code should use the typed tree.
        """
        return self.snapshot().legacy_dict()

    # ------------------------------------------------------------------
    # Invalidation after base-table updates
    # ------------------------------------------------------------------
    def invalidate_base_chunks(self, base_numbers: list[int]) -> int:
        """Drop every cached chunk whose region covers updated base data.

        ``base_numbers`` is what
        :meth:`repro.backend.engine.BackendEngine.append_records`
        returns.  A cached chunk of any group-by is stale iff its
        source-span block (closure property) contains one of the updated
        base chunks; containment is a per-dimension coordinate check, so
        the pass is O(cache size x updates).

        Returns:
            Number of chunks invalidated.
        """
        if not base_numbers:
            return 0
        # Updated data also changes recomputation costs: drop the
        # memoized per-chunk work estimates along with the stale chunks.
        self.estimator.clear()
        base_grid = self.space.base_grid
        coords = [base_grid.coords_of(number) for number in base_numbers]
        removed = 0
        spans_cache: dict[tuple[GroupBy, int], list[tuple[int, int]]] = {}
        for key in self.cache.keys():
            spans = spans_cache.get((key.groupby, key.number))
            if spans is None:
                spans = source_spans(
                    self.space, key.groupby, key.number
                )
                spans_cache[(key.groupby, key.number)] = spans
            for coordinate in coords:
                if all(
                    lo <= x < hi
                    for x, (lo, hi) in zip(coordinate, spans)
                ):
                    self.cache.invalidate(key)
                    removed += 1
                    break
        return removed
