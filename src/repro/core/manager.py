"""The middle-tier chunk cache manager — the paper's core contribution.

:class:`ChunkCacheManager` sits between query streams and the backend
engine and implements the full pipeline of Section 5.2:

1. **Query analysis** — a cached chunk is reusable only when group-by,
   aggregate list and non-group-by predicates match (conditions 1–3);
   these three components are baked into every
   :class:`~repro.core.chunk.ChunkKey`.
2. **ComputeChunkNums** — the query's group-by selections become the list
   of chunk numbers forming its bounding envelope
   (:meth:`~repro.chunks.grid.ChunkGrid.chunk_numbers_for_selection`).
3. **Query splitting** — the list is partitioned into cache-resident
   chunks (``CNumsPresent``) and missing chunks (``CNumsMissing``).
4. **Missing-chunk computation** — missing chunks are computed by the
   backend through the chunk interface (closure property + chunked file);
   optionally, the middle tier first tries to *derive* a missing chunk by
   aggregating cached chunks of a finer group-by (the paper's Section 7
   future-work extension, off by default).
5. **Assembly** — chunk rows are concatenated and boundary rows outside
   the exact selection are filtered out (chunks are a bounding envelope,
   Section 5.2.3); newly computed chunks enter the cache under the
   benefit-weighted replacement policy.

Every answer carries a :class:`~repro.core.metrics.QueryRecord` so streams
accumulate the paper's CSR and mean-time metrics as they run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.cost import CostModel
from repro.backend.aggregate import reaggregate
from repro.backend.engine import BackendEngine
from repro.backend.plans import CostReport
from repro.core.cache import ChunkCache
from repro.core.chunk import CachedChunk, ChunkKey
from repro.chunks.closure import source_chunk_numbers, source_spans
from repro.chunks.grid import ChunkSpace
from repro.core.metrics import QueryRecord, StreamMetrics
from repro.exceptions import CacheError
from repro.query.model import StarQuery
from repro.schema.star import GroupBy, StarSchema

__all__ = ["Answer", "ChunkCacheManager"]

#: Aggregates whose chunk partials can be merged in the middle tier.
_DERIVABLE_AGGREGATES = {"sum", "count", "min", "max"}


@dataclass
class Answer:
    """Result of answering one query through a cache manager.

    Attributes:
        rows: The query's result rows (exact — boundary tuples filtered).
        record: The accounting record also appended to the manager's
            :class:`~repro.core.metrics.StreamMetrics`.
    """

    rows: np.ndarray
    record: QueryRecord


class ChunkCacheManager:
    """Answers star queries from a chunk cache backed by a chunked file.

    Args:
        schema: The star schema.
        space: Shared chunk geometry (the same object the backend uses).
        backend: A loaded chunked-organization backend engine.
        cache: The chunk cache (policy and budget live there).
        cost_model: Converts physical work into modelled time.
        aggregate_in_cache: Enable the future-work extension — derive
            missing chunks by aggregating cached chunks of finer
            group-bys before falling back to the backend (Section 7).
        prefetch_drilldown: Enable the paper's second future-work idea:
            "more aggressive caching schemes, which fetch data at more
            detail than what is required ... particularly useful for
            drill down queries" (Section 7).  When the backend computes
            missing chunks, it computes them one hierarchy level *finer*
            on every grouped dimension (same base I/O — the base chunks
            are identical), caches the detailed chunks, and derives the
            requested level in the middle tier; a subsequent drill-down
            then hits the cache.  Implies the derivation machinery, so
            it forces ``aggregate_in_cache`` on and only engages for
            decomposable aggregates.
    """

    def __init__(
        self,
        schema: StarSchema,
        space: ChunkSpace,
        backend: BackendEngine,
        cache: ChunkCache,
        cost_model: CostModel | None = None,
        aggregate_in_cache: bool = False,
        prefetch_drilldown: bool = False,
    ) -> None:
        if backend.chunked_file is None:
            raise CacheError(
                "ChunkCacheManager requires a chunked-organization backend"
            )
        self.schema = schema
        self.space = space
        self.backend = backend
        self.cache = cache
        self.cost_model = cost_model or CostModel()
        self.aggregate_in_cache = aggregate_in_cache or prefetch_drilldown
        self.prefetch_drilldown = prefetch_drilldown
        self.metrics = StreamMetrics()
        # Memoized per-chunk recomputation work: (groupby, number) ->
        # (pages, base_tuples).  Exact and immutable once the file is
        # loaded, so memoization is safe.
        self._chunk_work: dict[tuple[GroupBy, int], tuple[int, int]] = {}
        # Group-bys ever cached per compatibility key, for derivation.
        self._seen_groupbys: dict[tuple, set[GroupBy]] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def answer(self, query: StarQuery) -> Answer:
        """Answer a query, reusing and updating the chunk cache."""
        grid = self.space.grid(query.groupby)
        numbers = grid.chunk_numbers_for_selection(query.selections)

        present: dict[int, CachedChunk] = {}
        missing: list[int] = []
        for number in numbers:
            key = ChunkKey(
                query.groupby, number, query.aggregates,
                query.fixed_predicates,
            )
            entry = self.cache.get(key)
            if entry is None:
                missing.append(number)
            else:
                present[number] = entry

        derived: dict[int, np.ndarray] = {}
        derived_tuples = 0
        if self.aggregate_in_cache and missing:
            missing, derived, derived_tuples = self._derive_from_cache(
                query, missing
            )

        computed: dict[int, np.ndarray] = {}
        report = CostReport(access_path="chunk")
        if missing:
            prefetched = None
            if self.prefetch_drilldown:
                prefetched = self._compute_with_prefetch(query, missing)
            if prefetched is not None:
                computed, report = prefetched
            else:
                computed, report = self.backend.compute_chunks(
                    query.groupby, missing, query.aggregates,
                    leaf_filters=query.effective_dim_filters(self.schema),
                )

        self._admit(query, computed)
        self._admit(query, derived)

        parts: list[np.ndarray] = []
        cached_tuples = 0
        for number in numbers:
            if number in present:
                parts.append(present[number].rows)
                cached_tuples += present[number].num_rows
            elif number in derived:
                parts.append(derived[number])
            else:
                parts.append(computed[number])
        rows = self._assemble(query, parts)

        record = self._account(
            query, numbers, present, derived, report,
            cached_tuples, derived_tuples, len(rows),
        )
        self.metrics.record(record)
        return Answer(rows=rows, record=record)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def describe_cache(self) -> dict:
        """A snapshot of cache composition for debugging and reports.

        Returns a dictionary with the byte usage, entry count, and a
        per-group-by breakdown (resident chunks, bytes, total benefit) —
        handy for seeing what the replacement policy is protecting.
        """
        per_groupby: dict[GroupBy, dict[str, float]] = {}
        for key in self.cache.keys():
            entry = self.cache.peek(key)
            if entry is None:
                continue
            bucket = per_groupby.setdefault(
                key.groupby, {"chunks": 0, "bytes": 0, "benefit": 0.0}
            )
            bucket["chunks"] += 1
            bucket["bytes"] += entry.size_bytes
            bucket["benefit"] += entry.benefit
        return {
            "used_bytes": self.cache.used_bytes,
            "capacity_bytes": self.cache.capacity_bytes,
            "entries": len(self.cache),
            "hit_ratio": self.cache.stats.hit_ratio,
            "evictions": self.cache.stats.evictions,
            "per_groupby": dict(
                sorted(
                    per_groupby.items(),
                    key=lambda item: item[1]["bytes"],
                    reverse=True,
                )
            ),
        }

    # ------------------------------------------------------------------
    # Invalidation after base-table updates
    # ------------------------------------------------------------------
    def invalidate_base_chunks(self, base_numbers: list[int]) -> int:
        """Drop every cached chunk whose region covers updated base data.

        ``base_numbers`` is what
        :meth:`repro.backend.engine.BackendEngine.append_records`
        returns.  A cached chunk of any group-by is stale iff its
        source-span block (closure property) contains one of the updated
        base chunks; containment is a per-dimension coordinate check, so
        the pass is O(cache size x updates).

        Returns:
            Number of chunks invalidated.
        """
        if not base_numbers:
            return 0
        # Updated data also changes recomputation costs: drop the
        # memoized per-chunk work estimates along with the stale chunks.
        self._chunk_work.clear()
        base_grid = self.space.base_grid
        coords = [base_grid.coords_of(number) for number in base_numbers]
        removed = 0
        spans_cache: dict[tuple[GroupBy, int], list[tuple[int, int]]] = {}
        for key in self.cache.keys():
            spans = spans_cache.get((key.groupby, key.number))
            if spans is None:
                spans = source_spans(
                    self.space, key.groupby, key.number
                )
                spans_cache[(key.groupby, key.number)] = spans
            for coordinate in coords:
                if all(
                    lo <= x < hi
                    for x, (lo, hi) in zip(coordinate, spans)
                ):
                    self.cache.invalidate(key)
                    removed += 1
                    break
        return removed

    # ------------------------------------------------------------------
    # Aggressive prefetching (Section 7 extension)
    # ------------------------------------------------------------------
    def _prefetch_groupby(self, groupby: GroupBy) -> GroupBy | None:
        """One level finer on every grouped dimension, or None if there is
        no finer level anywhere (already at full detail)."""
        finer = tuple(
            min(level + 1, dim.leaf_level) if level > 0 else 0
            for dim, level in zip(self.schema.dimensions, groupby)
        )
        return finer if finer != tuple(groupby) else None

    def _compute_with_prefetch(
        self, query: StarQuery, missing: list[int]
    ) -> tuple[dict[int, np.ndarray], CostReport] | None:
        """Compute missing chunks via a finer group-by and cache both.

        Returns None when prefetching does not apply (non-decomposable
        aggregates or already at full detail), in which case the caller
        falls back to the direct computation.
        """
        if not all(a in _DERIVABLE_AGGREGATES for _, a in query.aggregates):
            return None
        finer = self._prefetch_groupby(query.groupby)
        if finer is None:
            return None
        # The fine chunks tiling each missing coarse chunk.
        fine_numbers: set[int] = set()
        sources: dict[int, list[int]] = {}
        for number in missing:
            numbers = source_chunk_numbers(
                self.space, query.groupby, number, finer
            )
            sources[number] = numbers
            fine_numbers.update(numbers)
        fine_chunks, report = self.backend.compute_chunks(
            finer, sorted(fine_numbers), query.aggregates,
            leaf_filters=query.effective_dim_filters(self.schema),
        )
        # Cache the detailed chunks (the aggressive part).
        fine_query = StarQuery(
            groupby=finer,
            selections=(None,) * self.schema.num_dimensions,
            aggregates=query.aggregates,
            dim_filters=query.dim_filters,
            fixed_predicates=query.fixed_predicates,
        )
        self._admit(fine_query, fine_chunks)
        # Derive the requested chunks in the middle tier.
        computed: dict[int, np.ndarray] = {}
        for number in missing:
            parts = [
                fine_chunks[src] for src in sources[number]
                if len(fine_chunks[src])
            ]
            if parts:
                stacked = np.concatenate(parts)
                report.tuples_scanned += len(stacked)
                computed[number] = reaggregate(
                    self.schema,
                    stacked,
                    finer,
                    query.groupby,
                    query.aggregates,
                    self.backend.mapper,
                )
            else:
                computed[number] = query.result_format(
                    self.schema
                ).empty()
        return computed, report

    # ------------------------------------------------------------------
    # Derivation from finer cached chunks (Section 7 extension)
    # ------------------------------------------------------------------
    def _derive_from_cache(
        self, query: StarQuery, missing: list[int]
    ) -> tuple[list[int], dict[int, np.ndarray], int]:
        """Try to aggregate cached finer-level chunks into missing chunks.

        A missing chunk is derivable when *all* of its source chunks under
        some finer cached group-by are resident; the closure property
        guarantees the sources exactly tile the target.  Returns the still
        missing numbers, the derived rows, and the source tuples consumed.
        """
        if not all(a in _DERIVABLE_AGGREGATES for _, a in query.aggregates):
            return missing, {}, 0
        shape = (query.aggregates, query.fixed_predicates)
        candidates = [
            groupby
            for groupby in self._seen_groupbys.get(shape, ())
            if groupby != query.groupby
            and self.schema.is_rollup_of(query.groupby, groupby)
        ]
        if not candidates:
            return missing, {}, 0
        derived: dict[int, np.ndarray] = {}
        tuples_used = 0
        still_missing: list[int] = []
        for number in missing:
            outcome = self._derive_one(query, number, candidates)
            if outcome is None:
                still_missing.append(number)
            else:
                rows, source_tuples = outcome
                derived[number] = rows
                tuples_used += source_tuples
        return still_missing, derived, tuples_used

    def _derive_one(
        self,
        query: StarQuery,
        number: int,
        candidates: list[GroupBy],
    ) -> tuple[np.ndarray, int] | None:
        for source_groupby in candidates:
            source_numbers = source_chunk_numbers(
                self.space, query.groupby, number, source_groupby
            )
            entries = []
            for source_number in source_numbers:
                key = ChunkKey(
                    source_groupby, source_number, query.aggregates,
                    query.fixed_predicates,
                )
                entry = self.cache.peek(key)
                if entry is None:
                    entries = None
                    break
                entries.append(entry)
            if entries is None:
                continue
            # All sources resident: touch them (they earned their keep)
            # and merge.
            for entry in entries:
                self.cache.get(entry.key)
            source_rows = [e.rows for e in entries if len(e.rows)]
            if source_rows:
                stacked = np.concatenate(source_rows)
            else:
                stacked = entries[0].rows
            merged = reaggregate(
                self.schema,
                stacked,
                source_groupby,
                query.groupby,
                query.aggregates,
                self.backend.mapper,
            )
            return merged, len(stacked)
        return None

    # ------------------------------------------------------------------
    # Admission and assembly
    # ------------------------------------------------------------------
    def _admit(self, query: StarQuery, chunks: dict[int, np.ndarray]) -> None:
        if not chunks:
            return
        benefit = self.space.chunk_benefit(query.groupby)
        for number, rows in chunks.items():
            pages, _ = self._work(query.groupby, number)
            key = ChunkKey(
                query.groupby, number, query.aggregates,
                query.fixed_predicates,
            )
            self.cache.put(
                CachedChunk(
                    key=key, rows=rows, benefit=benefit,
                    compute_pages=float(pages),
                )
            )
        shape = (query.aggregates, query.fixed_predicates)
        self._seen_groupbys.setdefault(shape, set()).add(query.groupby)

    def _assemble(
        self, query: StarQuery, parts: list[np.ndarray]
    ) -> np.ndarray:
        non_empty = [p for p in parts if len(p)]
        if not non_empty:
            return query.result_format(self.schema).empty()
        rows = np.concatenate(non_empty)
        mask = np.ones(len(rows), dtype=bool)
        for dim, level, interval in zip(
            self.schema.dimensions, query.groupby, query.selections
        ):
            if level == 0 or interval is None:
                continue
            column = rows[dim.name]
            mask &= (column >= interval[0]) & (column < interval[1])
        if mask.all():
            return rows
        return rows[mask]

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _work(self, groupby: GroupBy, number: int) -> tuple[int, int]:
        key = (groupby, number)
        cached = self._chunk_work.get(key)
        if cached is None:
            cached = self.backend.estimate_chunk_work(groupby, [number])
            self._chunk_work[key] = cached
        return cached

    def _account(
        self,
        query: StarQuery,
        numbers: list[int],
        present: dict[int, CachedChunk],
        derived: dict[int, np.ndarray],
        report: CostReport,
        cached_tuples: int,
        derived_tuples: int,
        result_rows: int,
    ) -> QueryRecord:
        full_cost = 0.0
        saved_cost = 0.0
        for number in numbers:
            pages, tuples = self._work(query.groupby, number)
            chunk_cost = self.cost_model.backend_time(pages, tuples)
            full_cost += chunk_cost
            if number in present or number in derived:
                saved_cost += chunk_cost
        time = self.cost_model.time(
            report, tuples_from_cache=cached_tuples + derived_tuples
        )
        return QueryRecord(
            time=time,
            full_cost=full_cost,
            saved_cost=saved_cost,
            chunks_total=len(numbers),
            chunks_hit=len(present),
            chunks_derived=len(derived),
            pages_read=report.pages_read,
            result_rows=result_rows,
        )
