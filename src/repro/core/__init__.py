"""The paper's contribution: chunk-based caching of multidimensional queries.

Chunk geometry (:mod:`~repro.chunks.ranges`, :mod:`~repro.chunks.grid`,
:mod:`~repro.chunks.closure`), the chunk cache with benefit-weighted
replacement (:mod:`~repro.core.cache`, :mod:`~repro.core.replacement`),
the middle-tier cache manager (:mod:`~repro.core.manager`), the
query-level caching baseline (:mod:`~repro.core.query_cache`) and the
evaluation metrics (:mod:`~repro.core.metrics`).
"""

from repro.core.cache import ChunkCache, ChunkCacheStats
from repro.core.chunk import CachedChunk, CachedQuery, ChunkKey
from repro.chunks.closure import (
    source_chunk_count,
    source_chunk_numbers,
    source_spans,
)
from repro.chunks.grid import ChunkGrid, ChunkSpace
from repro.core.manager import Answer, ChunkCacheManager
from repro.core.metrics import QueryRecord, StreamMetrics
from repro.core.query_cache import QueryCacheManager
from repro.chunks.ranges import (
    ChunkRange,
    DimensionChunking,
    create_chunk_ranges,
    desired_sizes_for_ratio,
    uniform_division,
)
from repro.core.replacement import (
    BenefitClockPolicy,
    ClockPolicy,
    LRUPolicy,
    ReplacementPolicy,
    make_policy,
)
from repro.core.snapshot import (
    CacheContention,
    ChunkCacheSnapshot,
    FaultStats,
    GroupByUsage,
    QueryCacheSnapshot,
    ShapeUsage,
    ShardStats,
    Snapshot,
    StageStats,
)

__all__ = [
    "ChunkRange",
    "uniform_division",
    "create_chunk_ranges",
    "desired_sizes_for_ratio",
    "DimensionChunking",
    "ChunkGrid",
    "ChunkSpace",
    "source_spans",
    "source_chunk_numbers",
    "source_chunk_count",
    "ChunkKey",
    "CachedChunk",
    "CachedQuery",
    "ChunkCache",
    "ChunkCacheStats",
    "ReplacementPolicy",
    "LRUPolicy",
    "ClockPolicy",
    "BenefitClockPolicy",
    "make_policy",
    "Answer",
    "ChunkCacheManager",
    "QueryCacheManager",
    "QueryRecord",
    "StreamMetrics",
    "CacheContention",
    "ChunkCacheSnapshot",
    "FaultStats",
    "GroupByUsage",
    "QueryCacheSnapshot",
    "ShapeUsage",
    "ShardStats",
    "Snapshot",
    "StageStats",
]
