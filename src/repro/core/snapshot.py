"""The typed snapshot tree behind every cache-report surface.

Historically each report surface grew its own ``dict[str, object]``:
``ChunkCacheManager.describe_cache()``,
``QueryCacheManager.describe_cache()``,
``StreamMetrics.stage_summary()`` and the sharded store's
``contention()`` all returned ad-hoc nested dictionaries whose shapes
lived only in docstrings.  This module consolidates them behind one
frozen dataclass tree rooted at :class:`Snapshot`:

- ``manager.snapshot()`` (both schemes) returns a :class:`Snapshot`;
- :meth:`Snapshot.to_json` renders one canonical JSON-serializable
  form for tooling;
- :meth:`Snapshot.legacy_dict` reproduces the exact pre-snapshot
  dictionary — same keys, same insertion order, same numeric types —
  so ``describe_cache()`` survives as a thin deprecation shim and
  every existing consumer (fig9, csr_sim, the fault reports) stays
  bit-for-bit identical.

The tree is built *from* the same accumulation passes the legacy
dictionaries used (same iteration order), so even float sums are
bit-identical, not merely approximately equal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.cache import ChunkStore
from repro.core.metrics import StreamMetrics
from repro.schema.star import GroupBy

__all__ = [
    "CacheContention",
    "ChunkCacheSnapshot",
    "FaultStats",
    "GroupByUsage",
    "QueryCacheSnapshot",
    "ShapeUsage",
    "ShardStats",
    "Snapshot",
    "StageStats",
    "build_chunk_snapshot",
]

#: The fixed per-stage bucket key order of the legacy
#: ``stage_summary()`` dictionaries (and of ``StageStats`` fields).
_STAGE_FIELDS = (
    "calls",
    "wall_seconds",
    "modelled_time",
    "partitions",
    "pages_read",
    "tuples_scanned",
    "lock_wait_seconds",
    "faults",
    "retries",
    "degraded",
    "backoff_seconds",
    "coalesce_seconds",
)


@dataclass(frozen=True)
class StageStats:
    """Per-stage totals over a stream's execution traces.

    One entry per pipeline stage, in first-seen stage order — the typed
    form of one ``stage_summary()`` bucket.
    """

    name: str
    calls: float
    wall_seconds: float
    modelled_time: float
    partitions: float
    pages_read: float
    tuples_scanned: float
    lock_wait_seconds: float
    faults: float
    retries: float
    degraded: float
    backoff_seconds: float
    coalesce_seconds: float

    @classmethod
    def from_bucket(
        cls, name: str, bucket: Mapping[str, float]
    ) -> "StageStats":
        """Typed view of one legacy ``stage_summary()`` bucket."""
        return cls(name=name, **{f: bucket[f] for f in _STAGE_FIELDS})

    def legacy_bucket(self) -> dict[str, float]:
        """The original ``stage_summary()`` bucket, key order included."""
        return {f: getattr(self, f) for f in _STAGE_FIELDS}


@dataclass(frozen=True)
class GroupByUsage:
    """Cache residency of one group-by (chunk scheme).

    ``chunks`` and ``bytes`` are exact integers; ``benefit`` is the
    float sum of the resident entries' benefit values, accumulated in
    cache-snapshot order.
    """

    groupby: GroupBy
    chunks: int
    bytes: int
    benefit: float


@dataclass(frozen=True)
class ShapeUsage:
    """Cache residency of one query shape (query-caching baseline).

    ``key`` is the shape's cache-compatibility key (an opaque hashable;
    stringified by :meth:`Snapshot.to_json`).
    """

    key: object
    results: int
    bytes: int
    benefit: float


@dataclass(frozen=True)
class FaultStats:
    """Injected-fault outcomes summed over the stream (zeros when
    fault-free).

    The counters mirror the legacy ``describe_cache()["faults"]``
    entry: cache-level outcomes (``poisoned_puts``,
    ``pressure_evictions``) come from the store's statistics, the rest
    are sums over the per-stage totals.
    """

    poisoned_puts: int
    pressure_evictions: int
    faults: float
    retries: float
    degraded: float
    backoff_seconds: float


@dataclass(frozen=True)
class ShardStats:
    """One shard's counters inside a sharded store's contention report."""

    shard: int
    capacity_bytes: int
    used_bytes: int
    entries: int
    hits: int
    misses: int
    evictions: int
    lock_wait_seconds: float
    lock_acquisitions: int
    quarantined: bool
    quarantines: int
    readmissions: int
    quarantine_rejects: int

    def legacy_bucket(self) -> dict[str, object]:
        return {
            "shard": self.shard,
            "capacity_bytes": self.capacity_bytes,
            "used_bytes": self.used_bytes,
            "entries": self.entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "lock_wait_seconds": self.lock_wait_seconds,
            "lock_acquisitions": self.lock_acquisitions,
            "quarantined": self.quarantined,
            "quarantines": self.quarantines,
            "readmissions": self.readmissions,
            "quarantine_rejects": self.quarantine_rejects,
        }


@dataclass(frozen=True)
class CacheContention:
    """A sharded store's lock-contention and skew report, typed.

    The typed form of :meth:`repro.serve.ShardedChunkCache.contention`;
    an unsharded store (``contention() == {}``) simply has no
    contention node in its snapshot.
    """

    num_shards: int
    lock_wait_seconds: float
    lock_acquisitions: int
    hit_skew: float
    quarantines: int
    readmissions: int
    quarantine_rejects: int
    per_shard: tuple[ShardStats, ...]

    @classmethod
    def from_mapping(
        cls, raw: Mapping[str, object]
    ) -> "CacheContention":
        """Parse a store's ``contention()`` dictionary."""
        shards = []
        per_shard = raw.get("per_shard")
        if isinstance(per_shard, Sequence):
            for entry in per_shard:
                if isinstance(entry, Mapping):
                    shards.append(
                        ShardStats(
                            shard=int(entry["shard"]),  # type: ignore[call-overload]
                            capacity_bytes=int(entry["capacity_bytes"]),  # type: ignore[call-overload]
                            used_bytes=int(entry["used_bytes"]),  # type: ignore[call-overload]
                            entries=int(entry["entries"]),  # type: ignore[call-overload]
                            hits=int(entry["hits"]),  # type: ignore[call-overload]
                            misses=int(entry["misses"]),  # type: ignore[call-overload]
                            evictions=int(entry["evictions"]),  # type: ignore[call-overload]
                            lock_wait_seconds=float(
                                entry["lock_wait_seconds"]  # type: ignore[arg-type]
                            ),
                            lock_acquisitions=int(
                                entry["lock_acquisitions"]  # type: ignore[call-overload]
                            ),
                            quarantined=bool(entry["quarantined"]),
                            quarantines=int(entry["quarantines"]),  # type: ignore[call-overload]
                            readmissions=int(entry["readmissions"]),  # type: ignore[call-overload]
                            quarantine_rejects=int(
                                entry["quarantine_rejects"]  # type: ignore[call-overload]
                            ),
                        )
                    )
        return cls(
            num_shards=int(raw.get("num_shards", 0)),  # type: ignore[call-overload]
            lock_wait_seconds=float(raw.get("lock_wait_seconds", 0.0)),  # type: ignore[arg-type]
            lock_acquisitions=int(raw.get("lock_acquisitions", 0)),  # type: ignore[call-overload]
            hit_skew=float(raw.get("hit_skew", 0.0)),  # type: ignore[arg-type]
            quarantines=int(raw.get("quarantines", 0)),  # type: ignore[call-overload]
            readmissions=int(raw.get("readmissions", 0)),  # type: ignore[call-overload]
            quarantine_rejects=int(raw.get("quarantine_rejects", 0)),  # type: ignore[call-overload]
            per_shard=tuple(shards),
        )

    def legacy_dict(self) -> dict[str, object]:
        return {
            "num_shards": self.num_shards,
            "lock_wait_seconds": self.lock_wait_seconds,
            "lock_acquisitions": self.lock_acquisitions,
            "hit_skew": self.hit_skew,
            "quarantines": self.quarantines,
            "readmissions": self.readmissions,
            "quarantine_rejects": self.quarantine_rejects,
            "per_shard": [s.legacy_bucket() for s in self.per_shard],
        }


@dataclass(frozen=True)
class ChunkCacheSnapshot:
    """Composition and stream aggregates of a chunk-cache manager."""

    used_bytes: int
    capacity_bytes: int
    entries: int
    hit_ratio: float
    evictions: int
    per_groupby: tuple[GroupByUsage, ...]
    stages: tuple[StageStats, ...]
    resolved_by: tuple[tuple[str, int], ...]
    poisoned_puts: int
    pressure_evictions: int
    contention: CacheContention | None
    # Per-tier counters of a multi-tier store (the raw ``tiers()``
    # mapping); None for single-tier stores so their rendered output
    # stays byte-identical to the pre-tiering tree.
    tiers: Mapping[str, object] | None = None

    def fault_stats(self) -> FaultStats:
        """The fault summary, derived from the per-stage totals.

        Sums are taken in stage order, exactly as the legacy
        ``describe_cache()["faults"]`` entry computed them.
        """
        return FaultStats(
            poisoned_puts=self.poisoned_puts,
            pressure_evictions=self.pressure_evictions,
            faults=sum(s.faults for s in self.stages),
            retries=sum(s.retries for s in self.stages),
            degraded=sum(s.degraded for s in self.stages),
            backoff_seconds=sum(s.backoff_seconds for s in self.stages),
        )

    def legacy_dict(self) -> dict[str, object]:
        """The pre-snapshot ``describe_cache()`` dictionary, exactly."""
        faults = self.fault_stats()
        out: dict[str, object] = {
            "used_bytes": self.used_bytes,
            "capacity_bytes": self.capacity_bytes,
            "entries": self.entries,
            "hit_ratio": self.hit_ratio,
            "evictions": self.evictions,
            "per_groupby": {
                usage.groupby: {
                    "chunks": usage.chunks,
                    "bytes": usage.bytes,
                    "benefit": usage.benefit,
                }
                for usage in self.per_groupby
            },
            "stages": {
                stage.name: stage.legacy_bucket()
                for stage in self.stages
            },
            "resolved_by": dict(self.resolved_by),
        }
        out["faults"] = {
            "poisoned_puts": faults.poisoned_puts,
            "pressure_evictions": faults.pressure_evictions,
            "faults": faults.faults,
            "retries": faults.retries,
            "degraded": faults.degraded,
            "backoff_seconds": faults.backoff_seconds,
        }
        if self.contention is not None:
            out["shards"] = self.contention.legacy_dict()
        if self.tiers:
            out["tiers"] = dict(self.tiers)
        return out

    def to_json(self) -> dict[str, object]:
        faults = self.fault_stats()
        out: dict[str, object] = {
            "used_bytes": self.used_bytes,
            "capacity_bytes": self.capacity_bytes,
            "entries": self.entries,
            "hit_ratio": self.hit_ratio,
            "evictions": self.evictions,
            "per_groupby": [
                {
                    "groupby": list(usage.groupby),
                    "chunks": usage.chunks,
                    "bytes": usage.bytes,
                    "benefit": usage.benefit,
                }
                for usage in self.per_groupby
            ],
            "stages": {
                stage.name: stage.legacy_bucket()
                for stage in self.stages
            },
            "resolved_by": dict(self.resolved_by),
            "faults": {
                "poisoned_puts": faults.poisoned_puts,
                "pressure_evictions": faults.pressure_evictions,
                "faults": float(faults.faults),
                "retries": float(faults.retries),
                "degraded": float(faults.degraded),
                "backoff_seconds": float(faults.backoff_seconds),
            },
        }
        if self.contention is not None:
            out["contention"] = self.contention.legacy_dict()
        if self.tiers:
            out["tiers"] = dict(self.tiers)
        return out


@dataclass(frozen=True)
class QueryCacheSnapshot:
    """Composition and stream aggregates of the query-caching baseline."""

    used_bytes: int
    capacity_bytes: int
    entries: int
    redundancy_ratio: float
    per_shape: tuple[ShapeUsage, ...]
    stages: tuple[StageStats, ...]
    resolved_by: tuple[tuple[str, int], ...]

    def legacy_dict(self) -> dict[str, object]:
        """The pre-snapshot ``describe_cache()`` dictionary, exactly."""
        return {
            "used_bytes": self.used_bytes,
            "capacity_bytes": self.capacity_bytes,
            "entries": self.entries,
            "redundancy_ratio": self.redundancy_ratio,
            "per_shape": {
                usage.key: {
                    "results": usage.results,
                    "bytes": usage.bytes,
                    "benefit": usage.benefit,
                }
                for usage in self.per_shape
            },
            "stages": {
                stage.name: stage.legacy_bucket()
                for stage in self.stages
            },
            "resolved_by": dict(self.resolved_by),
        }

    def to_json(self) -> dict[str, object]:
        return {
            "used_bytes": self.used_bytes,
            "capacity_bytes": self.capacity_bytes,
            "entries": self.entries,
            "redundancy_ratio": self.redundancy_ratio,
            "per_shape": [
                {
                    "key": str(usage.key),
                    "results": usage.results,
                    "bytes": usage.bytes,
                    "benefit": usage.benefit,
                }
                for usage in self.per_shape
            ],
            "stages": {
                stage.name: stage.legacy_bucket()
                for stage in self.stages
            },
            "resolved_by": dict(self.resolved_by),
        }


@dataclass(frozen=True)
class Snapshot:
    """Root of the typed report tree: one cache manager, one instant.

    Attributes:
        kind: ``"chunk"`` or ``"query"`` — which caching scheme the
            snapshot describes.
        cache: The scheme-specific subtree.
    """

    kind: str
    cache: ChunkCacheSnapshot | QueryCacheSnapshot

    def to_json(self) -> dict[str, object]:
        """One canonical JSON-serializable rendering of the tree."""
        return {"kind": self.kind, "cache": self.cache.to_json()}

    def legacy_dict(self) -> dict[str, object]:
        """The scheme's original ``describe_cache()`` dictionary.

        Bit-for-bit identical to the pre-snapshot code path: same keys,
        same insertion order, same numeric types and float values.
        """
        return self.cache.legacy_dict()


def collect_stages(metrics: StreamMetrics) -> tuple[StageStats, ...]:
    """Typed per-stage totals, in first-seen stage order."""
    summary = metrics.stage_summary()
    return tuple(
        StageStats.from_bucket(name, bucket)
        for name, bucket in summary.items()
    )


def collect_resolved(
    metrics: StreamMetrics,
) -> tuple[tuple[str, int], ...]:
    """Typed per-resolver totals, in first-seen resolver order."""
    return tuple(metrics.resolver_summary().items())


def build_chunk_snapshot(
    cache: ChunkStore, metrics: StreamMetrics
) -> Snapshot:
    """Snapshot a chunk-scheme cache and its stream aggregates.

    Accumulates the per-group-by breakdown in the same single pass (and
    order) the legacy ``describe_cache()`` used, so the float benefit
    sums are bit-identical, then sorts by resident bytes descending
    (stable, preserving first-seen order among ties).
    """
    per_groupby: dict[GroupBy, dict[str, float]] = {}
    for key, entry in cache.snapshot():
        bucket = per_groupby.setdefault(
            key.groupby, {"chunks": 0, "bytes": 0, "benefit": 0.0}
        )
        bucket["chunks"] += 1
        bucket["bytes"] += entry.size_bytes
        bucket["benefit"] += entry.benefit
    usages = tuple(
        GroupByUsage(
            groupby=groupby,
            chunks=int(bucket["chunks"]),
            bytes=int(bucket["bytes"]),
            benefit=bucket["benefit"],
        )
        for groupby, bucket in sorted(
            per_groupby.items(),
            key=lambda item: item[1]["bytes"],
            reverse=True,
        )
    )
    stats = cache.stats
    raw_contention = cache.contention()
    raw_tiers = cache.tiers()
    return Snapshot(
        kind="chunk",
        cache=ChunkCacheSnapshot(
            used_bytes=cache.used_bytes,
            capacity_bytes=cache.capacity_bytes,
            entries=len(cache),
            hit_ratio=stats.hit_ratio,
            evictions=stats.evictions,
            per_groupby=usages,
            stages=collect_stages(metrics),
            resolved_by=collect_resolved(metrics),
            poisoned_puts=stats.poisoned,
            pressure_evictions=stats.pressure_evictions,
            contention=(
                CacheContention.from_mapping(raw_contention)
                if raw_contention
                else None
            ),
            tiers=raw_tiers if raw_tiers else None,
        ),
    )
