"""Checkable runtime invariants of the chunk-caching design.

The paper's algorithms rest on a handful of structural properties —
chunk-range **closure** (Section 3.4), exact partition **coverage** by
``ComputeChunkNums`` (Section 5.2.2), byte conservation in the
byte-budgeted caches, and conservation between an answer's trace and its
accounting record.  This module makes those properties *checkable at
runtime*: subsystems call in at their mutation points and a failed check
raises :class:`~repro.exceptions.InvariantViolation`, which always means
a library bug.

Checking is controlled by the ``REPRO_INVARIANTS`` environment variable
(read at import; tests and tools can override via :func:`set_mode`):

- ``off`` — no checking at all;
- ``cheap`` (the default; ``on``/``1``/``true`` are aliases) — O(1)-ish
  assertions at subsystem boundaries, always safe to leave on;
- ``deep`` (``full`` is an alias) — full structural verification:
  closure per hierarchy level pair, partition disjointness/coverage per
  analyzed query, per-entry cache byte/benefit conservation.

Everything here is duck-typed on purpose: the module imports only
:mod:`repro.exceptions` at runtime, so every layer (``chunks``,
``core``, ``pipeline``) may call it without creating import cycles, and
:mod:`tools.reprolint`'s layering rule (R001) stays intact.
"""

from __future__ import annotations

import math
import os
from typing import TYPE_CHECKING, Any, Iterable

from repro.exceptions import InvariantViolation

if TYPE_CHECKING:
    from repro.chunks.grid import ChunkGrid
    from repro.chunks.ranges import DimensionChunking
    from repro.core.metrics import QueryRecord
    from repro.pipeline.stages import AnalyzedQuery
    from repro.pipeline.trace import ExecutionTrace

__all__ = [
    "OFF",
    "CHEAP",
    "DEEP",
    "mode",
    "set_mode",
    "enabled",
    "deep",
    "counters",
    "reset_counters",
    "require",
    "check_closure",
    "check_partition",
    "check_cache_accounting",
    "check_shard_accounting",
    "check_trace_conservation",
]

OFF = "off"
CHEAP = "cheap"
DEEP = "deep"

_ALIASES = {
    "": CHEAP,
    "on": CHEAP,
    "1": CHEAP,
    "true": CHEAP,
    "cheap": CHEAP,
    "default": CHEAP,
    "off": OFF,
    "0": OFF,
    "false": OFF,
    "none": OFF,
    "deep": DEEP,
    "full": DEEP,
}

#: Checks executed since import / the last :func:`reset_counters`.
_counters = {"cheap": 0, "deep": 0}


def _resolve(raw: str | None) -> str:
    value = (raw or "").strip().lower()
    try:
        return _ALIASES[value]
    except KeyError:
        raise InvariantViolation(
            f"unknown REPRO_INVARIANTS mode {raw!r}; expected one of "
            f"{sorted(set(_ALIASES.values()))}"
        ) from None


_mode = _resolve(os.environ.get("REPRO_INVARIANTS"))


def mode() -> str:
    """The active checking mode (``off`` / ``cheap`` / ``deep``)."""
    return _mode


def set_mode(value: str) -> str:
    """Override the checking mode; returns the previous mode.

    Intended for tests and tools; library code never calls this.
    """
    global _mode
    previous = _mode
    _mode = _resolve(value)
    return previous


def enabled() -> bool:
    """Whether any checking (cheap or deep) is active."""
    return _mode != OFF


def deep() -> bool:
    """Whether deep structural checking is active."""
    return _mode == DEEP


def counters() -> dict[str, int]:
    """How many cheap / deep checks have executed (for tests)."""
    return dict(_counters)


def reset_counters() -> None:
    """Zero the check counters."""
    _counters["cheap"] = 0
    _counters["deep"] = 0


def require(condition: bool, message: str) -> None:
    """Raise :class:`InvariantViolation` unless ``condition`` holds."""
    if not condition:
        raise InvariantViolation(message)


# ----------------------------------------------------------------------
# Closure property (Section 3.4)
# ----------------------------------------------------------------------
def check_closure(chunking: "DimensionChunking") -> None:
    """Verify the closure property of one dimension's chunk ranges.

    For every level: the ranges are disjoint, contiguous, and complete
    (they tile ``[0, cardinality)`` in order).  For every adjacent level
    pair: each parent range's child span is non-empty, the spans tile
    the child index space in order (disjointness + coverage), and each
    span's ordinal extent equals what the hierarchy maps the parent
    range to.
    """
    _counters["deep"] += 1
    dimension = chunking.dimension
    hierarchy = dimension.hierarchy
    name = dimension.name
    for level in range(1, hierarchy.size + 1):
        ranges = chunking.ranges(level)
        cardinality = dimension.cardinality(level)
        require(
            len(ranges) > 0,
            f"{name!r} level {level}: no chunk ranges",
        )
        require(
            ranges[0].lo == 0,
            f"{name!r} level {level}: first range starts at "
            f"{ranges[0].lo}, not 0",
        )
        require(
            ranges[-1].hi == cardinality,
            f"{name!r} level {level}: last range ends at "
            f"{ranges[-1].hi}, not the cardinality {cardinality}",
        )
        for prev, cur in zip(ranges, ranges[1:]):
            require(
                prev.hi == cur.lo,
                f"{name!r} level {level}: ranges [{prev.lo}, {prev.hi}) "
                f"and [{cur.lo}, {cur.hi}) are not contiguous/disjoint",
            )
    for level in range(1, hierarchy.size):
        child_ranges = chunking.ranges(level + 1)
        cursor = 0
        for index, parent in enumerate(chunking.ranges(level)):
            ilo, ihi = chunking.child_span(level, index)
            require(
                ilo == cursor,
                f"{name!r} level {level} range {index}: child span "
                f"starts at {ilo}, expected {cursor} (spans must tile "
                "the child level in order)",
            )
            require(
                ihi > ilo,
                f"{name!r} level {level} range {index}: empty child span",
            )
            lo, hi = hierarchy.map_range(
                level, (parent.lo, parent.hi), level + 1
            )
            require(
                child_ranges[ilo].lo == lo
                and child_ranges[ihi - 1].hi == hi,
                f"{name!r} level {level} range {index}: child span "
                f"covers [{child_ranges[ilo].lo}, "
                f"{child_ranges[ihi - 1].hi}) but the hierarchy maps the "
                f"parent to [{lo}, {hi})",
            )
            cursor = ihi
        require(
            cursor == len(child_ranges),
            f"{name!r} level {level}: child spans cover {cursor} of "
            f"{len(child_ranges)} ranges at level {level + 1}",
        )


# ----------------------------------------------------------------------
# Partition disjointness / coverage (Section 5.2.2)
# ----------------------------------------------------------------------
def check_partition(analyzed: "AnalyzedQuery", grid: "ChunkGrid") -> None:
    """Verify an analyzed query's partitions against the chunk grid.

    The partition list must be strictly ascending (unique chunk numbers
    — grid cells are disjoint by construction, so uniqueness is
    geometric disjointness), every number's coordinates must lie inside
    the selection's per-dimension chunk spans, the count must equal the
    spans' cross-product size (with membership and uniqueness this is
    exact coverage), and every chunk's cell ranges must genuinely
    intersect the selection intervals (the bounding envelope is tight at
    chunk granularity).
    """
    _counters["deep"] += 1
    partitions = list(analyzed.partitions)
    for prev, cur in zip(partitions, partitions[1:]):
        require(
            prev < cur,
            f"partitions not strictly ascending: {prev} before {cur}",
        )
    selections = analyzed.query.selections
    spans = grid.selection_spans(selections)
    expected = math.prod(hi - lo for lo, hi in spans)
    require(
        len(partitions) == expected,
        f"partition count {len(partitions)} != {expected} chunks in the "
        f"selection's spans {spans}",
    )
    for number in partitions:
        coords = grid.coords_of(number)
        for axis, (coord, (lo, hi)) in enumerate(zip(coords, spans)):
            require(
                lo <= coord < hi,
                f"chunk {number} coordinate {coord} on dimension {axis} "
                f"outside the selection span [{lo}, {hi})",
            )
        for axis, (rng, interval) in enumerate(
            zip(grid.cell_ranges(number), selections)
        ):
            if rng is None or interval is None:
                continue
            require(
                rng.lo < interval[1] and interval[0] < rng.hi,
                f"chunk {number} range [{rng.lo}, {rng.hi}) on dimension "
                f"{axis} does not intersect the selection "
                f"[{interval[0]}, {interval[1]})",
            )


# ----------------------------------------------------------------------
# Cache byte / benefit conservation
# ----------------------------------------------------------------------
def check_cache_accounting(
    used_bytes: int,
    capacity_bytes: int,
    entries: Iterable[Any] | None = None,
    owner: str = "cache",
) -> None:
    """Verify a byte-budgeted cache's accounting after a mutation.

    Cheap: the charged bytes are within ``[0, capacity]``.  Deep (pass
    ``entries``, anything with ``size_bytes`` and ``benefit``): the
    charged bytes equal the sum of resident entry sizes exactly, and
    every entry carries a finite, non-negative benefit weight.
    """
    _counters["cheap"] += 1
    require(
        used_bytes >= 0,
        f"{owner}: used_bytes went negative ({used_bytes})",
    )
    require(
        used_bytes <= capacity_bytes,
        f"{owner}: used_bytes {used_bytes} exceeds capacity "
        f"{capacity_bytes}",
    )
    if entries is None:
        return
    _counters["deep"] += 1
    total = 0
    count = 0
    for entry in entries:
        size = entry.size_bytes
        require(
            size >= 0,
            f"{owner}: entry with negative size {size}",
        )
        benefit = entry.benefit
        require(
            math.isfinite(benefit) and benefit >= 0.0,
            f"{owner}: entry with non-finite or negative benefit "
            f"{benefit!r}",
        )
        total += size
        count += 1
    require(
        total == used_bytes,  # reprolint: ignore[R002] exact byte counts
        f"{owner}: used_bytes {used_bytes} != {total} summed over "
        f"{count} resident entries (byte conservation)",
    )


def check_shard_accounting(
    shard_used: Iterable[int],
    shard_capacities: Iterable[int],
    global_used: int,
    global_capacity: int,
    owner: str = "sharded cache",
) -> None:
    """Verify a lock-striped cache's global accounting against its shards.

    The caller must present a consistent snapshot (all shard locks held,
    plus the accounting lock).  Checks: every shard charge lies within
    its own budget, the shard budgets sum to the global capacity, and the
    shard charges sum to the global byte counter — the cross-shard
    conservation that the per-shard :func:`check_cache_accounting` calls
    cannot see.
    """
    _counters["cheap"] += 1
    used = list(shard_used)
    capacities = list(shard_capacities)
    require(
        len(used) == len(capacities),
        f"{owner}: {len(used)} shard charges vs {len(capacities)} budgets",
    )
    for index, (charged, budget) in enumerate(zip(used, capacities)):
        require(
            0 <= charged <= budget,
            f"{owner}: shard {index} charged {charged} outside its "
            f"budget [0, {budget}]",
        )
    require(
        sum(capacities) == global_capacity,  # reprolint: ignore[R002] bytes
        f"{owner}: shard budgets sum to {sum(capacities)}, not the "
        f"global capacity {global_capacity}",
    )
    require(
        sum(used) == global_used,  # reprolint: ignore[R002] exact bytes
        f"{owner}: shard charges sum to {sum(used)} but the global "
        f"counter says {global_used} (cross-shard byte conservation)",
    )


# ----------------------------------------------------------------------
# Trace conservation
# ----------------------------------------------------------------------
def check_trace_conservation(
    trace: "ExecutionTrace", record: "QueryRecord"
) -> None:
    """Verify an execution trace is conserved against its record.

    Stage page counts must sum to the trace's backend total, which must
    equal the record's; resolver attribution must sum to the partition
    total, which must equal the record's chunk total; and the record's
    costs must be non-negative with savings bounded by the full cost
    (tolerating float-summation rounding only).
    """
    _counters["cheap"] += 1
    stage_pages = sum(entry.pages_read for entry in trace.stages)
    require(
        stage_pages == trace.backend_pages,
        f"stage pages_read sum {stage_pages} != trace backend_pages "
        f"{trace.backend_pages}",
    )
    require(
        trace.backend_pages == record.pages_read,
        f"trace backend_pages {trace.backend_pages} != record "
        f"pages_read {record.pages_read}",
    )
    resolved = sum(trace.resolved_by.values())
    require(
        resolved == trace.partitions_total,  # reprolint: ignore[R002] ints
        f"resolver attribution sums to {resolved} of "
        f"{trace.partitions_total} partitions",
    )
    require(
        # integer partition counts, not float cost values
        trace.partitions_total == record.chunks_total,  # reprolint: ignore[R002] int counts
        f"trace partitions_total {trace.partitions_total} != record "
        f"chunks_total {record.chunks_total}",
    )
    require(
        record.time >= 0.0 and record.full_cost >= 0.0,
        f"record has negative cost (time={record.time!r}, "
        f"full_cost={record.full_cost!r})",
    )
    slack = 1e-9 * record.full_cost + 1e-12
    require(
        record.saved_cost <= record.full_cost + slack,
        f"record saved_cost {record.saved_cost!r} exceeds full_cost "
        f"{record.full_cost!r}",
    )
