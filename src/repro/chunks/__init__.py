"""Chunk geometry: hierarchy-aware ranges, grids and the closure property.

This package is the dimensional arithmetic of the paper — it knows nothing
about storage or caching, which lets both the storage layer (the chunked
file) and the middle tier (the chunk cache) build on one shared geometry.
"""

from repro.chunks.closure import (
    source_chunk_count,
    source_chunk_numbers,
    source_spans,
)
from repro.chunks.grid import ChunkGrid, ChunkSpace
from repro.chunks.ranges import (
    ChunkRange,
    DimensionChunking,
    create_chunk_ranges,
    desired_sizes_for_ratio,
    uniform_division,
)

__all__ = [
    "ChunkRange",
    "uniform_division",
    "create_chunk_ranges",
    "desired_sizes_for_ratio",
    "DimensionChunking",
    "ChunkGrid",
    "ChunkSpace",
    "source_spans",
    "source_chunk_numbers",
    "source_chunk_count",
]
