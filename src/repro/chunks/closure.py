"""The closure property: mapping chunks between levels of aggregation.

Section 3.2 (benefit 3) of the paper: because chunk ranges at one level map
to whole ranges at the next level (:mod:`repro.chunks.ranges`), a chunk of any
group-by corresponds to a *rectangular block* of chunks of any finer
group-by.  This gives the cache manager an exact recipe for computing a
missing chunk: aggregate precisely the base-table chunks in that block
(the paper's Figure 3 — chunk 1 of ``(Time)`` is the aggregate of chunks
4, 5, 6, 7 of ``(Product, Time)``).

:func:`source_spans` returns the per-dimension chunk-index spans of the
block, and :func:`source_chunk_numbers` enumerates the source chunk numbers
— the inverse-``getChNum`` / re-``ComputeChunkNums`` pipeline of
Section 5.2.3.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.chunks.grid import ChunkGrid, ChunkSpace
from repro.exceptions import ChunkingError
from repro.schema.star import GroupBy

__all__ = ["source_spans", "source_chunk_numbers", "source_chunk_count"]


def source_spans(
    space: ChunkSpace,
    target_groupby: Sequence[int],
    chunk_number: int,
    source_groupby: Sequence[int] | None = None,
) -> list[tuple[int, int]]:
    """Per-dimension source-chunk-index spans for one target chunk.

    Args:
        space: The shared chunk geometry.
        target_groupby: Group-by of the chunk being computed.
        chunk_number: Its chunk number within the target grid.
        source_groupby: Group-by to compute from; defaults to the base
            fact table.  Must be at least as fine as the target on every
            dimension (``schema.is_rollup_of(target, source)``).

    Returns:
        For each dimension, the half-open span of chunk indices in the
        source grid whose union covers the target chunk.
    """
    schema = space.schema
    target = schema.validate_groupby(target_groupby)
    if source_groupby is None:
        source: GroupBy = schema.base_groupby
    else:
        source = schema.validate_groupby(source_groupby)
    if not schema.is_rollup_of(target, source):
        raise ChunkingError(
            f"group-by {target} cannot be computed from {source}: the "
            "source must be at least as fine on every dimension"
        )
    target_grid = space.grid(target)
    coords = target_grid.coords_of(chunk_number)
    spans: list[tuple[int, int]] = []
    for chunking, t_level, s_level, coord in zip(
        space.chunkings, target, source, coords
    ):
        if s_level == 0:
            # Source dimension is also aggregated away: single slot.
            spans.append((0, 1))
        elif t_level == 0:
            # Target aggregates the dimension away: need all source chunks.
            spans.append((0, chunking.num_chunks(s_level)))
        else:
            spans.append(chunking.descend_span(t_level, coord, s_level))
    return spans


def source_chunk_numbers(
    space: ChunkSpace,
    target_groupby: Sequence[int],
    chunk_number: int,
    source_groupby: Sequence[int] | None = None,
) -> list[int]:
    """Source chunk numbers whose aggregation yields one target chunk.

    The enumeration order is row-major over the source grid, matching
    :meth:`ChunkGrid.chunk_numbers_for_selection`.
    """
    schema = space.schema
    if source_groupby is None:
        source_groupby = schema.base_groupby
    spans = source_spans(space, target_groupby, chunk_number, source_groupby)
    source_grid = space.grid(source_groupby)
    return _enumerate(source_grid, spans)


def source_chunk_count(
    space: ChunkSpace,
    target_groupby: Sequence[int],
    chunk_number: int,
    source_groupby: Sequence[int] | None = None,
) -> int:
    """How many source chunks one target chunk aggregates, cheaply."""
    spans = source_spans(space, target_groupby, chunk_number, source_groupby)
    return math.prod(hi - lo for lo, hi in spans)


def _enumerate(grid: ChunkGrid, spans: Sequence[tuple[int, int]]) -> list[int]:
    numbers: list[int] = []

    def recurse(dim: int, base: int) -> None:
        if dim == len(spans):
            numbers.append(base)
            return
        lo, hi = spans[dim]
        stride = grid.strides[dim]
        for coord in range(lo, hi):
            recurse(dim + 1, base + coord * stride)

    recurse(0, 0)
    return numbers
