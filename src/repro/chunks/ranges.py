"""Chunk ranges: hierarchy-aware division of a dimension into intervals.

This module implements Section 3.4 of the paper.  To chunk the
multidimensional space, the ordered distinct values of each dimension level
are divided into *chunk ranges*.  A naive uniform division breaks the
correspondence between levels (the paper's Figure 5): a range at level 2
could straddle two ranges at level 3, so chunks at level 2 could not be
computed from whole chunks at level 3.

The paper's ``CreateChunkRanges`` algorithm (Figure 6) fixes this by
dividing level 1 uniformly and then, for every chunk range at level ``l``,
dividing only the value range *it maps to* at level ``l + 1``.  The result
satisfies the **closure property**: every chunk range maps to a disjoint,
contiguous set of whole ranges at the next level.

:class:`DimensionChunking` stores the computed ranges for every level of a
dimension together with the parent-range -> child-range spans, and offers
the lookups the rest of the library needs (ordinal -> chunk index, ordinal
interval -> chunk-index interval, descend a chunk range to the leaf level).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro import invariants
from repro.exceptions import ChunkingError
from repro.schema.dimension import Dimension

__all__ = [
    "ChunkRange",
    "uniform_division",
    "create_chunk_ranges",
    "desired_sizes_for_ratio",
    "DimensionChunking",
]


@dataclass(frozen=True)
class ChunkRange:
    """A half-open ordinal interval ``[lo, hi)`` at one hierarchy level."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo < 0 or self.hi <= self.lo:
            raise ChunkingError(f"invalid chunk range [{self.lo}, {self.hi})")

    def __len__(self) -> int:
        return self.hi - self.lo

    def __contains__(self, ordinal: int) -> bool:
        return self.lo <= ordinal < self.hi


def uniform_division(lo: int, hi: int, size: int) -> list[ChunkRange]:
    """Divide ``[lo, hi)`` into consecutive ranges of ``size`` ordinals.

    The last range may be shorter.  ``size`` must be positive.
    """
    if size < 1:
        raise ChunkingError(f"range size must be >= 1, got {size}")
    if hi <= lo:
        raise ChunkingError(f"empty interval [{lo}, {hi})")
    return [
        ChunkRange(start, min(start + size, hi))
        for start in range(lo, hi, size)
    ]


def desired_sizes_for_ratio(dimension: Dimension, ratio: float) -> dict[int, int]:
    """Per-level desired chunk-range sizes proportional to level cardinality.

    Implements the sizing rule of Section 5.1: the chunk range at any level
    should be proportional to the number of distinct values at that level.
    ``ratio`` is the fraction of the level's domain one range should cover
    (the x-axis of the paper's Figure 12).  Sizes are clamped to
    ``[1, cardinality]``.
    """
    if not 0 < ratio <= 1:
        raise ChunkingError(f"ratio must be in (0, 1], got {ratio}")
    sizes = {}
    for level in dimension.hierarchy:
        size = max(1, round(ratio * level.cardinality))
        sizes[level.number] = min(size, level.cardinality)
    return sizes


def create_chunk_ranges(
    dimension: Dimension,
    desired_sizes: Mapping[int, int] | Sequence[int],
) -> dict[int, list[ChunkRange]]:
    """The paper's ``CreateChunkRanges`` algorithm (Section 3.4).

    Args:
        dimension: The dimension to chunk.
        desired_sizes: Desired range size per level, either a mapping from
            level number to size or a sequence indexed by ``level - 1``.

    Returns:
        A mapping from level number to its list of chunk ranges, ordered by
        ``lo``.  Ranges at level ``l + 1`` are generated per parent range at
        level ``l``, so each parent range maps to whole child ranges (the
        closure property).
    """
    sizes = _normalize_sizes(dimension, desired_sizes)
    hierarchy = dimension.hierarchy
    ranges: dict[int, list[ChunkRange]] = {}
    # Divide level 1 into uniform ranges.
    ranges[1] = uniform_division(0, hierarchy.cardinality(1), sizes[1])
    # For each chunk range at level l, divide the value range it maps to at
    # level l + 1 into uniform ranges.
    for level in range(1, hierarchy.size):
        child_ranges: list[ChunkRange] = []
        for parent_range in ranges[level]:
            lo, hi = hierarchy.map_range(
                level, (parent_range.lo, parent_range.hi), level + 1
            )
            child_ranges.extend(uniform_division(lo, hi, sizes[level + 1]))
        ranges[level + 1] = child_ranges
    return ranges


def _normalize_sizes(
    dimension: Dimension,
    desired_sizes: Mapping[int, int] | Sequence[int],
) -> dict[int, int]:
    hierarchy = dimension.hierarchy
    if isinstance(desired_sizes, Mapping):
        sizes = dict(desired_sizes)
    else:
        sizes = {i + 1: s for i, s in enumerate(desired_sizes)}
    missing = set(range(1, hierarchy.size + 1)) - set(sizes)
    if missing:
        raise ChunkingError(
            f"no desired chunk-range size for levels {sorted(missing)} of "
            f"dimension {dimension.name!r}"
        )
    for level, size in sizes.items():
        if level not in range(1, hierarchy.size + 1):
            raise ChunkingError(
                f"desired size given for unknown level {level} of "
                f"dimension {dimension.name!r}"
            )
        if size < 1:
            raise ChunkingError(
                f"desired size for level {level} must be >= 1, got {size}"
            )
    return sizes


class DimensionChunking:
    """Chunk ranges for every level of one dimension.

    Built from :func:`create_chunk_ranges`; additionally precomputes, for
    every range at level ``l``, the contiguous *span* of range indices at
    level ``l + 1`` that it maps to, and validates the closure property.

    Level ``0`` (the ``ALL`` level, dimension aggregated away) is handled
    uniformly: it has exactly one chunk slot whose span covers all ranges of
    level 1 (and transitively the whole dimension).
    """

    def __init__(
        self,
        dimension: Dimension,
        desired_sizes: Mapping[int, int] | Sequence[int],
    ) -> None:
        self.dimension = dimension
        self._ranges = create_chunk_ranges(dimension, desired_sizes)
        # Boundary arrays for bisect-based ordinal -> chunk-index lookup.
        self._starts: dict[int, list[int]] = {
            level: [r.lo for r in level_ranges]
            for level, level_ranges in self._ranges.items()
        }
        self._child_spans = self._compute_child_spans()
        if invariants.deep():
            invariants.check_closure(self)

    def _compute_child_spans(self) -> dict[int, list[tuple[int, int]]]:
        """For each level ``l`` range index, its range-index span at ``l+1``.

        Raises:
            ChunkingError: If a parent range does not map to whole child
                ranges (closure property violation — cannot happen for
                output of :func:`create_chunk_ranges`, but this class also
                accepts hand-built ranges in tests).
        """
        spans: dict[int, list[tuple[int, int]]] = {}
        hierarchy = self.dimension.hierarchy
        for level in range(1, hierarchy.size):
            child_starts = self._starts[level + 1]
            child_ranges = self._ranges[level + 1]
            level_spans: list[tuple[int, int]] = []
            for parent_range in self._ranges[level]:
                lo, hi = hierarchy.map_range(
                    level, (parent_range.lo, parent_range.hi), level + 1
                )
                ilo = bisect_right(child_starts, lo) - 1
                ihi = bisect_right(child_starts, hi - 1)
                if (
                    ilo < 0
                    or child_ranges[ilo].lo != lo
                    or child_ranges[ihi - 1].hi != hi
                ):
                    raise ChunkingError(
                        f"closure property violated: range "
                        f"[{parent_range.lo}, {parent_range.hi}) at level "
                        f"{level} of {self.dimension.name!r} maps to "
                        f"[{lo}, {hi}) at level {level + 1}, which is not a "
                        "whole number of child ranges"
                    )
                level_spans.append((ilo, ihi))
            spans[level] = level_spans
        return spans

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def num_chunks(self, level: int) -> int:
        """Number of chunk ranges at ``level`` (1 for the ALL level 0)."""
        if level == 0:
            return 1
        return len(self._level_ranges(level))

    def ranges(self, level: int) -> tuple[ChunkRange, ...]:
        """All chunk ranges at ``level`` in ordinal order."""
        return tuple(self._level_ranges(level))

    def range_at(self, level: int, index: int) -> ChunkRange:
        """The ``index``-th chunk range at ``level``."""
        level_ranges = self._level_ranges(level)
        if not 0 <= index < len(level_ranges):
            raise ChunkingError(
                f"chunk index {index} out of range at level {level} of "
                f"{self.dimension.name!r} ({len(level_ranges)} ranges)"
            )
        return level_ranges[index]

    def range_starts(self, level: int) -> tuple[int, ...]:
        """The ``lo`` boundary of every range at ``level``, ascending.

        Useful for vectorized ordinal -> chunk-index mapping via
        ``numpy.searchsorted(starts, ordinals, side="right") - 1``.
        """
        self._level_ranges(level)  # existence check
        return tuple(self._starts[level])

    def chunk_index_of(self, level: int, ordinal: int) -> int:
        """Chunk index containing ``ordinal`` at ``level``.

        This is the paper's ``x / c_i`` map generalized to hierarchy-aware
        (non-uniform) ranges via binary search.
        """
        if not 0 <= ordinal < self.dimension.cardinality(level):
            raise ChunkingError(
                f"ordinal {ordinal} out of range at level {level} of "
                f"{self.dimension.name!r}"
            )
        return bisect_right(self._starts[level], ordinal) - 1

    def chunk_span_for_interval(
        self, level: int, interval: tuple[int, int]
    ) -> tuple[int, int]:
        """Chunk-index span ``[ilo, ihi)`` covering ordinal ``[lo, hi)``.

        The returned chunks form the paper's *bounding envelope*: they may
        contain ordinals outside the interval at either end.
        """
        lo, hi = interval
        if hi <= lo:
            raise ChunkingError(f"empty ordinal interval [{lo}, {hi})")
        return (
            self.chunk_index_of(level, lo),
            self.chunk_index_of(level, hi - 1) + 1,
        )

    def child_span(self, level: int, index: int) -> tuple[int, int]:
        """Range-index span at ``level + 1`` of range ``index`` at ``level``.

        For ``level == 0`` the span covers all ranges of level 1.
        """
        if level == 0:
            return (0, self.num_chunks(1))
        if level >= self.dimension.leaf_level:
            raise ChunkingError("leaf level has no child ranges")
        self.range_at(level, index)  # bounds check
        return self._child_spans[level][index]

    def descend_span(
        self, level: int, index: int, target_level: int
    ) -> tuple[int, int]:
        """Range-index span at ``target_level`` under one range at ``level``.

        Repeatedly applies :meth:`child_span`; the closure property
        guarantees the result stays a contiguous span.  ``level`` may be 0
        (ALL), in which case the span covers all of ``target_level``.
        """
        if target_level < level or target_level > self.dimension.leaf_level:
            raise ChunkingError(
                f"cannot descend from level {level} to level {target_level}"
            )
        if level == target_level:
            if level > 0:
                self.range_at(level, index)  # bounds check
            elif index != 0:
                raise ChunkingError("the ALL level has a single chunk slot 0")
            return (index, index + 1)
        lo, hi = self.child_span(level, index)
        for lv in range(level + 1, target_level):
            lo = self._child_spans[lv][lo][0]
            hi = self._child_spans[lv][hi - 1][1]
        return (lo, hi)

    def leaf_span(self, level: int, index: int) -> tuple[int, int]:
        """Range-index span at the leaf level under one range at ``level``."""
        return self.descend_span(level, index, self.dimension.leaf_level)

    def _level_ranges(self, level: int) -> list[ChunkRange]:
        try:
            return self._ranges[level]
        except KeyError:
            raise ChunkingError(
                f"dimension {self.dimension.name!r} has no level {level}"
            ) from None

    def __repr__(self) -> str:
        counts = {level: len(r) for level, r in self._ranges.items()}
        return f"DimensionChunking({self.dimension.name!r}, chunks={counts})"
