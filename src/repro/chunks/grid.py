"""Chunk grids: chunk numbering within a group-by.

Once every dimension is divided into chunk ranges
(:mod:`repro.chunks.ranges`), the multidimensional space of each group-by is a
grid of chunks.  This module implements the paper's Section 5.2.2:

- ``getChNum`` — map a tuple of per-dimension chunk indices to a single
  chunk number via row-major ordering (the paper's Figure 8), and its
  inverse;
- ``ComputeChunkNums`` — convert the selection predicates of a query into
  the list of chunk numbers whose union covers the selection (the
  *bounding envelope*).

:class:`ChunkSpace` is the factory that owns one
:class:`~repro.chunks.ranges.DimensionChunking` per dimension and hands out
(and memoizes) a :class:`ChunkGrid` per group-by.  It also computes the
*benefit* of a chunk (Section 5.4): the fraction of the base table one
chunk of a group-by represents.
"""

from __future__ import annotations

import math
from typing import Iterator, Mapping, Sequence

from repro.chunks.ranges import ChunkRange, DimensionChunking, desired_sizes_for_ratio
from repro.exceptions import ChunkingError
from repro.schema.star import GroupBy, StarSchema

__all__ = ["ChunkGrid", "ChunkSpace"]

#: Per-dimension ordinal selection: half-open interval, or None for "all".
Selection = Sequence[tuple[int, int] | None]


class ChunkGrid:
    """The chunk grid of one group-by.

    Args:
        chunkings: One :class:`DimensionChunking` per schema dimension.
        groupby: Level per dimension (0 == ALL).

    The grid's *shape* has one entry per dimension: the number of chunk
    ranges at that dimension's level (1 for ALL dimensions).  Chunk numbers
    enumerate grid cells in row-major order, matching the paper's
    ``getChNum``.
    """

    def __init__(
        self, chunkings: Sequence[DimensionChunking], groupby: GroupBy
    ) -> None:
        if len(chunkings) != len(groupby):
            raise ChunkingError(
                f"{len(chunkings)} chunkings for group-by of arity "
                f"{len(groupby)}"
            )
        self.chunkings = tuple(chunkings)
        self.groupby = tuple(groupby)
        self.shape: tuple[int, ...] = tuple(
            chunking.num_chunks(level)
            for chunking, level in zip(self.chunkings, self.groupby)
        )
        # Row-major strides: the last dimension varies fastest.
        strides = [1] * len(self.shape)
        for i in range(len(self.shape) - 2, -1, -1):
            strides[i] = strides[i + 1] * self.shape[i + 1]
        self.strides: tuple[int, ...] = tuple(strides)
        self.num_chunks: int = math.prod(self.shape)

    # ------------------------------------------------------------------
    # Numbering (getChNum and inverse)
    # ------------------------------------------------------------------
    def chunk_number(self, coords: Sequence[int]) -> int:
        """Row-major chunk number of per-dimension chunk indices.

        The paper's ``getChNum()`` (Figure 8).
        """
        if len(coords) != len(self.shape):
            raise ChunkingError(
                f"expected {len(self.shape)} coordinates, got {len(coords)}"
            )
        number = 0
        for coord, extent, stride in zip(coords, self.shape, self.strides):
            if not 0 <= coord < extent:
                raise ChunkingError(
                    f"chunk coordinate {coord} out of range 0..{extent - 1}"
                )
            number += coord * stride
        return number

    def coords_of(self, number: int) -> tuple[int, ...]:
        """Inverse of :meth:`chunk_number`."""
        if not 0 <= number < self.num_chunks:
            raise ChunkingError(
                f"chunk number {number} out of range 0..{self.num_chunks - 1}"
            )
        coords = []
        for stride, extent in zip(self.strides, self.shape):
            coord, number = divmod(number, stride)
            coords.append(coord)
        return tuple(coords)

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def cell_ranges(self, number: int) -> tuple[ChunkRange | None, ...]:
        """Per-dimension ordinal ranges of one chunk (None for ALL dims)."""
        coords = self.coords_of(number)
        result: list[ChunkRange | None] = []
        for chunking, level, coord in zip(self.chunkings, self.groupby, coords):
            if level == 0:
                result.append(None)
            else:
                result.append(chunking.range_at(level, coord))
        return tuple(result)

    def cell_capacity(self, number: int) -> int:
        """Upper bound on result tuples inside one chunk.

        The product of its per-dimension range lengths (ALL dims count 1).
        """
        capacity = 1
        for rng in self.cell_ranges(number):
            if rng is not None:
                capacity *= len(rng)
        return capacity

    # ------------------------------------------------------------------
    # ComputeChunkNums (Section 5.2.2)
    # ------------------------------------------------------------------
    def selection_spans(self, selection: Selection) -> list[tuple[int, int]]:
        """Per-dimension chunk-index spans covering an ordinal selection.

        Args:
            selection: One entry per dimension: a half-open ordinal interval
                at the dimension's group-by level, or None to select all
                members.  Entries for ALL (level 0) dimensions must be None.
        """
        if len(selection) != len(self.shape):
            raise ChunkingError(
                f"expected {len(self.shape)} selection entries, "
                f"got {len(selection)}"
            )
        spans: list[tuple[int, int]] = []
        for chunking, level, extent, interval in zip(
            self.chunkings, self.groupby, self.shape, selection
        ):
            if level == 0:
                if interval is not None:
                    raise ChunkingError(
                        f"selection on aggregated-away dimension "
                        f"{chunking.dimension.name!r}"
                    )
                spans.append((0, 1))
            elif interval is None:
                spans.append((0, extent))
            else:
                spans.append(chunking.chunk_span_for_interval(level, interval))
        return spans

    def chunk_numbers_for_selection(self, selection: Selection) -> list[int]:
        """The paper's ``ComputeChunkNums``: chunk numbers covering a query.

        Takes the cross product of the per-dimension chunk-index spans and
        maps each coordinate tuple through :meth:`chunk_number`.  The result
        is sorted ascending (row-major enumeration order).
        """
        spans = self.selection_spans(selection)
        return list(self._enumerate_spans(spans))

    def _enumerate_spans(
        self, spans: Sequence[tuple[int, int]]
    ) -> Iterator[int]:
        def recurse(dim: int, base: int) -> Iterator[int]:
            if dim == len(spans):
                yield base
                return
            lo, hi = spans[dim]
            stride = self.strides[dim]
            for coord in range(lo, hi):
                yield from recurse(dim + 1, base + coord * stride)

        yield from recurse(0, 0)

    def count_for_selection(self, selection: Selection) -> int:
        """Number of chunks a selection touches, without enumerating them."""
        spans = self.selection_spans(selection)
        return math.prod(hi - lo for lo, hi in spans)

    def __repr__(self) -> str:
        return f"ChunkGrid(groupby={self.groupby}, shape={self.shape})"


class ChunkSpace:
    """Chunk geometry for an entire star schema.

    Owns one :class:`DimensionChunking` per dimension and memoizes one
    :class:`ChunkGrid` per group-by.  This is the single object the cache
    manager, the backend, and the chunked file all share, so that every
    component agrees on chunk boundaries and numbering.

    Args:
        schema: The star schema.
        desired_sizes: Either a single ratio in ``(0, 1]`` applied to every
            dimension via :func:`~repro.chunks.ranges.desired_sizes_for_ratio`,
            or a mapping from dimension name to a per-level size mapping.
        base_tuples: Number of tuples in the base fact table; used for
            chunk benefits.  May be updated later via :meth:`set_base_tuples`.
    """

    DEFAULT_RATIO = 0.1

    def __init__(
        self,
        schema: StarSchema,
        desired_sizes: float | Mapping[str, Mapping[int, int]] | None = None,
        base_tuples: int = 0,
    ) -> None:
        self.schema = schema
        if desired_sizes is None:
            desired_sizes = self.DEFAULT_RATIO
        if isinstance(desired_sizes, (int, float)):
            per_dim = {
                dim.name: desired_sizes_for_ratio(dim, float(desired_sizes))
                for dim in schema.dimensions
            }
        else:
            per_dim = {name: dict(sizes) for name, sizes in desired_sizes.items()}
            missing = {d.name for d in schema.dimensions} - set(per_dim)
            if missing:
                raise ChunkingError(
                    f"no chunk sizes for dimensions {sorted(missing)}"
                )
        self.chunkings: tuple[DimensionChunking, ...] = tuple(
            DimensionChunking(dim, per_dim[dim.name])
            for dim in schema.dimensions
        )
        self._grids: dict[GroupBy, ChunkGrid] = {}
        self._base_tuples = base_tuples

    # ------------------------------------------------------------------
    def grid(self, groupby: Sequence[int]) -> ChunkGrid:
        """The (memoized) chunk grid of a group-by."""
        groupby = self.schema.validate_groupby(groupby)
        grid = self._grids.get(groupby)
        if grid is None:
            grid = ChunkGrid(self.chunkings, groupby)
            self._grids[groupby] = grid
        return grid

    @property
    def base_grid(self) -> ChunkGrid:
        """The grid of the base fact table (leaf level everywhere)."""
        return self.grid(self.schema.base_groupby)

    def chunking(self, dimension_name: str) -> DimensionChunking:
        """The per-level chunk ranges of one dimension."""
        for chunking in self.chunkings:
            if chunking.dimension.name == dimension_name:
                return chunking
        raise ChunkingError(f"no dimension named {dimension_name!r}")

    # ------------------------------------------------------------------
    # Benefits (Section 5.4)
    # ------------------------------------------------------------------
    def set_base_tuples(self, base_tuples: int) -> None:
        """Record the base-table size used for benefit computation."""
        if base_tuples < 0:
            raise ChunkingError("base_tuples must be >= 0")
        self._base_tuples = base_tuples

    @property
    def base_tuples(self) -> int:
        """Base-table size in tuples (0 until set)."""
        return self._base_tuples

    def chunk_benefit(self, groupby: Sequence[int]) -> float:
        """Benefit of one chunk of ``groupby``: ``|base| / n_chunks``.

        Chunks of highly aggregated group-bys are few, so each represents a
        large fraction of the base table and is expensive to recompute —
        hence a high benefit (Section 5.4).
        """
        grid = self.grid(groupby)
        return self._base_tuples / grid.num_chunks
