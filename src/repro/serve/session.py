"""Concurrent multi-stream serving sessions.

:class:`ServeSession` runs K user :class:`~repro.workload.stream.QueryStream`s
against one shared :class:`~repro.core.manager.ChunkCacheManager` on a
thread pool, every worker executing through the manager's existing
:class:`~repro.pipeline.executor.StagedPipeline`.  Streams are
partitioned across workers (each stream is wholly owned by one worker),
each stream accumulates its own
:class:`~repro.core.metrics.StreamMetrics`, and the per-stream
accumulators are merged deterministically after the run.

Two schedules:

- ``"fair"`` — a turnstile serializes query execution into the
  *canonical order*: the round-robin interleave of the name-sorted
  streams, exactly what :func:`repro.workload.stream.interleave_streams`
  produces.  Execution is then independent of the worker count — with
  any ``max_workers`` the cache sees the same query sequence as a
  sequential run over the interleaved stream, so all accounting totals
  are identical (and with ``max_workers=1`` the run *is* the sequential
  run).  This is the determinism contract the regression tests pin.
- ``"free"`` — workers race unsynchronized; real lock contention on the
  cache shards and the backend.  Interleaving-dependent values (which
  query was a hit) vary run to run, but conservation properties
  (invariants, Σ pages read == backend read delta) must hold under any
  interleaving — that is what the soak harness hammers.

Because real threads under the GIL cannot show wall-clock speedup on
this CPU-bound simulation, throughput is also reported in *simulated*
time: each worker's makespan is the sum of the modelled execution times
of the queries it ran, the session's makespan is the slowest worker, and
throughput is queries per simulated second — the quantity a real
multi-core deployment of this architecture would observe.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.manager import ChunkCacheManager
from repro.core.metrics import StreamMetrics
from repro.exceptions import ServeError
from repro.pipeline.trace import record_blocked_wait
from repro.query.model import StarQuery
from repro.workload.stream import QueryStream

__all__ = [
    "QueryFailure",
    "ServeReport",
    "ServeSession",
    "FAIR",
    "FREE",
    "THREADS",
    "PROCESSES",
]

FAIR = "fair"
FREE = "free"

#: Execution modes for the serving stack.  ``THREADS`` (the default)
#: runs query workers as threads sharing one backend engine;
#: ``PROCESSES`` runs payload compute in replica worker processes
#: behind a :class:`repro.serve.proc.ProcessComputeEngine` while the
#: coordinator keeps authoritative accounting (see docs/PARALLEL.md).
THREADS = "threads"
PROCESSES = "processes"
_SCHEDULES = (FAIR, FREE)


@dataclass(frozen=True)
class QueryFailure:
    """One query that raised a tolerated exception instead of answering.

    Attributes:
        seq: The query's canonical sequence number.
        stream: Owning stream's name.
        kind: Exception class name (e.g. ``"DiskFault"``).
        message: The exception's message.
        pages_read: Physical pages the failed attempt(s) consumed (from
            the exception's attached cost report, when present) — what
            the soak harness adds back to conserve global I/O.
    """

    seq: int
    stream: str
    kind: str
    message: str
    pages_read: int


@dataclass(frozen=True)
class ServeReport:
    """Outcome of one concurrent serving session.

    Attributes:
        queries: Queries executed (all streams).
        max_workers: Worker threads used.
        schedule: ``"fair"`` or ``"free"``.
        wall_seconds: Real elapsed time of the run.
        simulated_worker_seconds: Per-worker sums of modelled query
            times, in worker order.
        simulated_makespan: The slowest worker's simulated time — the
            session's modelled completion time.
        simulated_throughput: Queries per simulated second
            (``queries / simulated_makespan``; 0.0 for an empty run).
        metrics: All streams' records merged in canonical order.
        per_stream: Each stream's own metrics, keyed by stream name.
        contention: Cache-shard and backend lock contention counters.
        checkpoints: How many checkpoint callbacks fired.
        failures: Tolerated per-query failures in canonical order
            (empty unless the session was given exception types to
            tolerate — see :class:`ServeSession`).
    """

    queries: int
    max_workers: int
    schedule: str
    wall_seconds: float
    simulated_worker_seconds: tuple[float, ...]
    simulated_makespan: float
    simulated_throughput: float
    metrics: StreamMetrics
    per_stream: dict[str, StreamMetrics]
    contention: dict[str, object]
    checkpoints: int
    failures: tuple[QueryFailure, ...] = ()


class ServeSession:
    """Runs several user streams concurrently against one manager.

    Args:
        manager: The shared chunk-cache manager.  Its cache should be a
            :class:`~repro.serve.ShardedChunkCache` (any
            :class:`~repro.core.cache.ChunkStore` works, but only a
            thread-safe store is safe under ``max_workers > 1``).
        streams: The user streams; names must be unique.  Streams are
            processed in name order — the canonical order — regardless
            of the order given here.
        max_workers: Worker threads (default: one per stream; capped at
            the stream count since streams are not split).
        schedule: ``"fair"`` (deterministic turnstile) or ``"free"``
            (unsynchronized racing).
        checkpoint_every: When positive, ``on_checkpoint`` is invoked
            with the completed-query count after every that many
            queries (globally, under a lock — workers keep running).
        on_checkpoint: Callback for periodic mid-run verification (the
            soak harness passes the cache's conservation check).
        timeout_seconds: Hard deadline for the whole run; a stuck worker
            turns into a :class:`~repro.exceptions.ServeError`, never a
            hang.
        tolerate: Exception types that fail a *query* without failing
            the session: the query is recorded as a
            :class:`QueryFailure`, the turnstile advances, and the
            worker moves on.  Empty (the default) tolerates nothing —
            any exception aborts the session as before.  The chaos-soak
            harness passes :class:`~repro.exceptions.InjectedFault`.
        on_answer: Callback receiving ``(seq, stream, query, rows)`` for
            every successfully answered query (under the fair schedule
            this is fully serialized in canonical order).  The chaos
            harness uses it to capture answers for oracle replay.
    """

    def __init__(
        self,
        manager: ChunkCacheManager,
        streams: Sequence[QueryStream],
        max_workers: int | None = None,
        schedule: str = FAIR,
        checkpoint_every: int = 0,
        on_checkpoint: Callable[[int], None] | None = None,
        timeout_seconds: float = 300.0,
        tolerate: tuple[type[BaseException], ...] = (),
        on_answer: (
            Callable[[int, str, StarQuery, object], None] | None
        ) = None,
    ) -> None:
        if not streams:
            raise ServeError("a serving session needs at least one stream")
        names = [stream.name for stream in streams]
        if len(set(names)) != len(names):
            raise ServeError(f"duplicate stream names in {sorted(names)}")
        if schedule not in _SCHEDULES:
            raise ServeError(
                f"unknown schedule {schedule!r}; expected one of "
                f"{_SCHEDULES}"
            )
        if timeout_seconds <= 0:
            raise ServeError(
                f"timeout_seconds must be positive, got {timeout_seconds}"
            )
        self.manager = manager
        self.streams = tuple(
            sorted(streams, key=lambda stream: stream.name)
        )
        workers = len(self.streams) if max_workers is None else max_workers
        if workers < 1:
            raise ServeError(f"max_workers must be >= 1, got {workers}")
        self.max_workers = min(workers, len(self.streams))
        self.schedule = schedule
        self.checkpoint_every = checkpoint_every
        self.on_checkpoint = on_checkpoint
        self.timeout_seconds = timeout_seconds
        self.tolerate = tuple(tolerate)
        self.on_answer = on_answer
        # Turnstile / progress state (rebuilt per run()).
        self._cond = threading.Condition()
        self._next_seq = 0
        self._completed = 0
        self._checkpoints_fired = 0
        self._failure: BaseException | None = None
        self._failures: list[QueryFailure] = []

    # ------------------------------------------------------------------
    # Canonical order
    # ------------------------------------------------------------------
    def _tickets(self) -> list[list[tuple[int, str, StarQuery]]]:
        """Per-worker work lists carrying canonical sequence numbers.

        The canonical order is the round-robin interleave of the
        name-sorted streams (identical to
        :func:`repro.workload.stream.interleave_streams` over them).
        Worker ``w`` owns streams ``w, w+W, w+2W, ...`` and receives its
        queries in canonical order — a worker draining its own list in
        order therefore visits its queries exactly as the canonical
        order does, which is what lets the fair turnstile enforce the
        global canonical order with local-only work lists.
        """
        per_worker: list[list[tuple[int, str, StarQuery]]] = [
            [] for _ in range(self.max_workers)
        ]
        owner = {
            stream.name: index % self.max_workers
            for index, stream in enumerate(self.streams)
        }
        cursors = [0] * len(self.streams)
        remaining = sum(len(stream) for stream in self.streams)
        seq = 0
        while remaining:
            for index, stream in enumerate(self.streams):
                if cursors[index] < len(stream):
                    query = stream[cursors[index]]
                    per_worker[owner[stream.name]].append(
                        (seq, stream.name, query)
                    )
                    cursors[index] += 1
                    remaining -= 1
                    seq += 1
        return per_worker

    # ------------------------------------------------------------------
    # Turnstile
    # ------------------------------------------------------------------
    def _await_turn(self, seq: int, deadline: float) -> None:
        with self._cond:
            while self._next_seq != seq:
                if self._failure is not None:
                    raise ServeError(
                        "serving session aborted by another worker"
                    ) from self._failure
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ServeError(
                        f"worker timed out waiting for turn {seq} "
                        f"(deadline {self.timeout_seconds}s)"
                    )
                self._cond.wait(remaining)

    def _finish_query(self, fair: bool) -> None:
        """Publish one completed query: advance the turnstile, count
        progress, and fire the checkpoint callback on the boundary."""
        with self._cond:
            if fair:
                self._next_seq += 1
                self._cond.notify_all()
            self._completed += 1
            fire = (
                self.checkpoint_every > 0
                and self.on_checkpoint is not None
                and self._completed % self.checkpoint_every == 0
            )
            count = self._completed
        if fire:
            assert self.on_checkpoint is not None
            self.on_checkpoint(count)
            with self._cond:
                self._checkpoints_fired += 1

    def _abort(self, error: BaseException) -> None:
        with self._cond:
            if self._failure is None:
                self._failure = error
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    def _run_worker(
        self,
        tasks: list[tuple[int, str, StarQuery]],
        per_stream: dict[str, StreamMetrics],
        merged: list[tuple[int, StreamMetrics]],
        sim_seconds: list[float],
        worker_index: int,
        deadline: float,
    ) -> None:
        fair = self.schedule == FAIR
        pipeline = self.manager.pipeline
        try:
            for seq, stream_name, query in tasks:
                if fair:
                    self._await_turn(seq, deadline)
                elif self._failure is not None:
                    raise ServeError(
                        "serving session aborted by another worker"
                    ) from self._failure
                try:
                    result = pipeline.execute(query)
                except self.tolerate as error:
                    # A tolerated failure still holds its turnstile slot:
                    # record it, advance, and move on.  The pages its
                    # failed attempts read are carried on the exception's
                    # attached cost report so the soak harness can keep
                    # global I/O conservation exact.
                    report = getattr(error, "cost_report", None)
                    pages = int(getattr(report, "pages_read", 0) or 0)
                    failure = QueryFailure(
                        seq=seq,
                        stream=stream_name,
                        kind=type(error).__name__,
                        message=str(error),
                        pages_read=pages,
                    )
                    with self._cond:
                        self._failures.append(failure)
                    self._finish_query(fair)
                    continue
                per_stream[stream_name].record(
                    result.record, result.trace
                )
                single = StreamMetrics()
                single.record(result.record, result.trace)
                merged.append((seq, single))
                sim_seconds[worker_index] += result.record.time
                if self.on_answer is not None:
                    self.on_answer(seq, stream_name, query, result.rows)
                self._finish_query(fair)
        except BaseException as error:
            self._abort(error)
            raise

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self) -> ServeReport:
        """Execute every stream to completion and merge the results."""
        self._next_seq = 0
        self._completed = 0
        self._checkpoints_fired = 0
        self._failure = None
        self._failures = []
        per_worker = self._tickets()
        per_stream = {
            stream.name: StreamMetrics() for stream in self.streams
        }
        merged_parts: list[list[tuple[int, StreamMetrics]]] = [
            [] for _ in range(self.max_workers)
        ]
        sim_seconds = [0.0] * self.max_workers
        deadline = time.monotonic() + self.timeout_seconds
        backend = self.manager.backend
        previous_recorder = backend.lock_wait_recorder
        backend.lock_wait_recorder = record_blocked_wait
        started = time.perf_counter()
        try:
            with ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="serve",
            ) as pool:
                futures = [
                    pool.submit(
                        self._run_worker,
                        per_worker[index],
                        per_stream,
                        merged_parts[index],
                        sim_seconds,
                        index,
                        deadline,
                    )
                    for index in range(self.max_workers)
                ]
                for future in futures:
                    remaining = deadline - time.monotonic()
                    try:
                        future.result(timeout=max(remaining, 0.01))
                    except TimeoutError as error:
                        self._abort(error)
                        raise ServeError(
                            "serving session exceeded its "
                            f"{self.timeout_seconds}s deadline"
                        ) from error
        finally:
            backend.lock_wait_recorder = previous_recorder
        wall = time.perf_counter() - started

        # Merge in canonical order.  The sequence numbers come from the
        # name-sorted interleave, so the merge is a pure function of the
        # streams — never of thread completion order — and in fair mode
        # it reproduces the sequential interleaved run record-for-record.
        metrics = StreamMetrics()
        ordered = sorted(
            (part for parts in merged_parts for part in parts),
            key=lambda item: item[0],
        )
        for _, single in ordered:
            metrics.absorb(single)

        makespan = max(sim_seconds) if sim_seconds else 0.0
        queries = len(metrics)
        throughput = queries / makespan if makespan > 0.0 else 0.0
        return ServeReport(
            queries=queries,
            max_workers=self.max_workers,
            schedule=self.schedule,
            wall_seconds=wall,
            simulated_worker_seconds=tuple(sim_seconds),
            simulated_makespan=makespan,
            simulated_throughput=throughput,
            metrics=metrics,
            per_stream=per_stream,
            contention=self._contention(),
            checkpoints=self._checkpoints_fired,
            failures=tuple(
                sorted(self._failures, key=lambda f: f.seq)
            ),
        )

    def _contention(self) -> dict[str, object]:
        """Contention counters from the shared cache and the backend."""
        out: dict[str, object] = {
            "backend": {
                "lock_wait_seconds": self.manager.backend.lock_wait_seconds,
                "lock_acquisitions": self.manager.backend.lock_acquisitions,
            }
        }
        # contention() is a declared ChunkStore member: unsharded stores
        # return {} ("nothing to report"), which keeps the report's
        # shape identical to the pre-protocol getattr probe.
        cache_contention = self.manager.cache.contention()
        if cache_contention:
            out["cache"] = cache_contention
        return out
