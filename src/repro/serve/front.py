"""The asyncio admission front door with single-flight coalescing.

:class:`FrontSession` sits in front of the thread-based serving layer:
K per-user query streams are driven by asyncio producer coroutines, a
bounded admission queue applies deterministic backpressure (typed
:class:`~repro.exceptions.AdmissionShed`, recorded — never silent), and
an admission coroutine batches the backlog into fixed-size **admission
windows** that execute on thread-pool workers through the manager's
staged pipeline.

Determinism is the load-bearing property, exactly as for the fair
schedule of :class:`~repro.serve.session.ServeSession`:

- **Arrivals** follow a tick protocol: each tick, every still-active
  producer (in name order) offers ``arrivals_per_tick`` queries, each
  stamped with a global admission sequence number; with the default of
  one arrival per tick, admission order is precisely the round-robin
  interleave of the name-sorted streams — the canonical order.
- **Backpressure** is part of the protocol, not a race: a query offered
  while the backlog is full is shed, and which queries are shed is a
  pure function of (workload, config).
- **Execution** of a window is serialized into admission order by a
  window-local turnstile across the real worker threads, so the cache
  sees one deterministic query sequence at any worker count.

Within a window, planned-duplicate missing chunks are **coalesced**
through a :class:`~repro.pipeline.flight.FlightTable`: the first
requester fetches, waiters share the published rows and are charged
only their fair-share modelled cost, and a failed fetch propagates the
same typed fault to every waiter (see :mod:`repro.pipeline.flight`).

:func:`run_front` is the verifying harness (deep invariants, exact I/O
conservation, optional fault injection and oracle replay); its
:class:`FrontReport` carries a digest that is — like
:class:`~repro.serve.soak.ChaosReport`'s — a pure function of
(workload, seed, config) at any worker count.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass
from hashlib import sha256
from typing import Any, Callable, Sequence

from repro import invariants
from repro.core.manager import ChunkCacheManager
from repro.core.metrics import StreamMetrics
from repro.exceptions import AdmissionShed, InjectedFault, ServeError
from repro.pipeline.executor import StagedPipeline
from repro.pipeline.flight import FlightResolver, FlightTable
from repro.pipeline.resolvers import (
    BackendChunkResolver,
    CacheHitResolver,
    PartitionResolver,
)
from repro.pipeline.stages import AnalyzedQuery
from repro.pipeline.trace import record_blocked_wait
from repro.query.model import StarQuery
from repro.serve.session import QueryFailure, ServeReport
from repro.serve.soak import FaultSource, _canonical_rows, _failed_pages
from repro.workload.stream import QueryStream

__all__ = [
    "FrontConfig",
    "FrontReport",
    "FrontSession",
    "ShedQuery",
    "run_front",
]

#: Schedule tag the front door stamps on its session reports.
FRONT = "front"


@dataclass(frozen=True)
class FrontConfig:
    """Tuning knobs of one front-door session.

    Attributes:
        window: Queries admitted (and executed) per admission window.
        queue_limit: Backlog bound; a query offered while the backlog
            holds this many is shed with a typed
            :class:`~repro.exceptions.AdmissionShed`.
        arrivals_per_tick: Queries each active producer offers per
            admission tick.  At the default of 1 the admission order is
            the canonical round-robin interleave; raising it models
            burstier sessions (and, with ``window`` < offered load,
            deterministic shedding).
        max_workers: Worker threads per window (default: one per
            stream).  Never changes results, only wall/simulated
            attribution — the determinism contract.
        coalesce: Enable single-flight chunk coalescing.  ``False``
            keeps the same admission and masking behavior but forces
            every planned-duplicate chunk to refetch — the benchmark's
            baseline.
        checkpoint_every: Completed queries between conservation
            checkpoints (0 disables; used by :func:`run_front` when the
            store supports cross-shard checks).
        timeout_seconds: Hard deadline for the whole session.
    """

    window: int = 8
    queue_limit: int = 64
    arrivals_per_tick: int = 1
    max_workers: int | None = None
    coalesce: bool = True
    checkpoint_every: int = 0
    timeout_seconds: float = 300.0


@dataclass(frozen=True)
class ShedQuery:
    """One query rejected by admission backpressure.

    Attributes:
        seq: The admission sequence number the query was offered as.
        stream: The offering stream's name.
        depth: Backlog depth at rejection (== the queue limit).
    """

    seq: int
    stream: str
    depth: int


@dataclass(frozen=True)
class FrontReport:
    """Everything one verified front-door run produced.

    Attributes:
        queries: Queries answered successfully.
        failures: Tolerated per-query failures, in admission order.
        shed: Queries rejected by admission backpressure, in admission
            order.
        windows: The admitted sequence numbers of every executed
            window, in execution order — the run's full admission
            schedule.
        window_size: The configured admission window.
        queue_limit: The configured backlog bound.
        max_workers: Worker threads used per window.
        coalesce: Whether single-flight coalescing was enabled.
        flights: Chunk fetches published to at least one waiter.
        coalesced_chunks: Chunk requests served from a flight instead
            of the backend.
        shared_pages: Estimated physical pages those claims avoided.
        pages_read: Backend pages consumed by answered queries.
        failed_pages: Backend pages consumed by failed queries (from
            their faults' cost reports; coalesced waiters report 0).
        disk_read_delta: Disk read-counter delta over the run; equals
            ``pages_read + failed_pages`` exactly — asserted.
        deep_checks: Deep invariant checks executed during the run.
        checkpoints: Mid-run conservation checkpoints that fired.
        fault_counters: Injected-fault counts by kind (empty without an
            injector).
        wrong_answers: Answers disagreeing with the fault-free oracle
            (0 — asserted — whenever an oracle was supplied).
        wall_seconds: Real elapsed time (never in the digest).
        simulated_worker_seconds: Per-worker sums of modelled query
            times (never in the digest).
        simulated_makespan: The slowest worker's simulated time.
        simulated_throughput: Queries per simulated second.
        metrics: All answered queries' metrics merged in admission
            order.
        per_stream: Each stream's own metrics, keyed by stream name.
        contention: Cache-shard and backend lock contention counters.
        digest: SHA-256 over the run's deterministic outcome (records,
            failures, sheds, window compositions, fault counters,
            flight counters, traces, final cache occupancy).  A pure
            function of (workload, seed, config) at any worker count.
    """

    queries: int
    failures: tuple[QueryFailure, ...]
    shed: tuple[ShedQuery, ...]
    windows: tuple[tuple[int, ...], ...]
    window_size: int
    queue_limit: int
    max_workers: int
    coalesce: bool
    flights: int
    coalesced_chunks: int
    shared_pages: int
    pages_read: int
    failed_pages: int
    disk_read_delta: int
    deep_checks: int
    checkpoints: int
    fault_counters: dict[str, int]
    wrong_answers: int
    wall_seconds: float
    simulated_worker_seconds: tuple[float, ...]
    simulated_makespan: float
    simulated_throughput: float
    metrics: StreamMetrics
    per_stream: dict[str, StreamMetrics]
    contention: dict[str, object]
    digest: str


class FrontSession:
    """Admits K user streams through the async front door.

    Composes its own resolver chain around the manager's: a
    :class:`~repro.pipeline.flight.FlightResolver` ahead of the cache,
    a flight-aware cache link, the manager's middle links unchanged,
    and a flight-aware terminal backend link.  The manager's own
    pipeline is untouched, so answering queries outside the front door
    remains bit-identical.

    Args:
        manager: The shared chunk-cache manager.
        streams: The user streams; names must be unique.  Processed in
            name order regardless of the order given.
        config: Admission and coalescing knobs.
        tolerate: Exception types that fail a query without failing the
            session (recorded as :class:`~repro.serve.session.QueryFailure`).
        on_answer: Callback ``(seq, stream, query, rows)`` for every
            answered query, fired in admission order.
        on_checkpoint: Callback for periodic mid-run verification.
    """

    def __init__(
        self,
        manager: ChunkCacheManager,
        streams: Sequence[QueryStream],
        config: FrontConfig = FrontConfig(),
        tolerate: tuple[type[BaseException], ...] = (),
        on_answer: (
            Callable[[int, str, StarQuery, object], None] | None
        ) = None,
        on_checkpoint: Callable[[int], None] | None = None,
    ) -> None:
        if not streams:
            raise ServeError("a front-door session needs at least one stream")
        names = [stream.name for stream in streams]
        if len(set(names)) != len(names):
            raise ServeError(f"duplicate stream names in {sorted(names)}")
        if config.window < 1:
            raise ServeError(f"window must be >= 1, got {config.window}")
        if config.queue_limit < 1:
            raise ServeError(
                f"queue_limit must be >= 1, got {config.queue_limit}"
            )
        if config.arrivals_per_tick < 1:
            raise ServeError(
                "arrivals_per_tick must be >= 1, got "
                f"{config.arrivals_per_tick}"
            )
        if config.timeout_seconds <= 0:
            raise ServeError(
                "timeout_seconds must be positive, got "
                f"{config.timeout_seconds}"
            )
        self.manager = manager
        self.streams = tuple(
            sorted(streams, key=lambda stream: stream.name)
        )
        workers = (
            len(self.streams)
            if config.max_workers is None
            else config.max_workers
        )
        if workers < 1:
            raise ServeError(f"max_workers must be >= 1, got {workers}")
        self.max_workers = min(workers, len(self.streams))
        self.config = config
        self.tolerate = tuple(tolerate)
        self.on_answer = on_answer
        self.on_checkpoint = on_checkpoint
        self.flight = FlightTable(
            manager.cost_model,
            manager.estimator,
            coalesce=config.coalesce,
        )
        self.pipeline = self._build_pipeline()
        # Run state (rebuilt per run()).
        self._wcond = threading.Condition()
        self._win_next = 0
        self._failure: BaseException | None = None
        self._failures: list[QueryFailure] = []
        self._shed: list[ShedQuery] = []
        self._windows: list[tuple[int, ...]] = []
        self._merged: list[tuple[int, StreamMetrics]] = []
        self._per_stream: dict[str, StreamMetrics] = {}
        self._sim_seconds: list[float] = []
        self._completed = 0
        self._checkpoints = 0
        self._last_boundary = 0
        self._deadline = 0.0

    def _build_pipeline(self) -> StagedPipeline:
        """The manager's pipeline with the flight table woven in."""
        base = self.manager.pipeline
        chain = list(base.resolvers)
        head = chain[0]
        tail = chain[-1]
        if not isinstance(head, CacheHitResolver) or not isinstance(
            tail, BackendChunkResolver
        ):
            raise ServeError(
                "the front door requires a chunk resolver chain "
                "(cache-hit head, backend terminal); got "
                f"{[type(link).__name__ for link in chain]}"
            )
        resolvers: list[PartitionResolver] = [
            FlightResolver(self.flight),
            CacheHitResolver(head.cache, flight=self.flight),
            *chain[1:-1],
            BackendChunkResolver(
                tail.schema,
                tail.backend,
                tail.admitter,
                retry=tail.retry,
                flight=self.flight,
            ),
        ]
        return StagedPipeline(
            analyzer=base.analyzer,
            resolvers=resolvers,
            assembler=base.assembler,
            accountant=base.accountant,
            cost_model=base.cost_model,
        )

    # ------------------------------------------------------------------
    # Asyncio admission: the tick protocol
    # ------------------------------------------------------------------
    # Shared coroutine state: producers and the dispatcher alternate
    # phases under one asyncio.Condition.  In the "arrive" phase each
    # still-active producer, in name order, offers arrivals_per_tick
    # queries (stamping global sequence numbers; full backlog => typed
    # shed); the last active producer flips the phase to "admit", the
    # dispatcher drains one window, executes it, and starts the next
    # tick.  Every transition is a pure function of (streams, config),
    # which is what makes admission — including backpressure —
    # deterministic.

    def _first_active(self) -> int:
        for index, active in enumerate(self._active):
            if active:
                return index
        return -1

    def _advance_turn(self, index: int) -> None:
        for nxt in range(index + 1, len(self._active)):
            if self._active[nxt]:
                self._turn = nxt
                return
        self._phase = "admit"

    async def _produce(self, index: int, stream: QueryStream) -> None:
        cursor = 0
        total = len(stream)
        while cursor < total:
            async with self._acond:
                await self._acond.wait_for(
                    lambda: self._phase == "arrive"
                    and self._turn == index
                )
                for _ in range(self.config.arrivals_per_tick):
                    if cursor >= total:
                        break
                    seq = self._seq
                    self._seq += 1
                    query = stream[cursor]
                    cursor += 1
                    try:
                        if len(self._backlog) >= self.config.queue_limit:
                            raise AdmissionShed(
                                "admission backlog full at depth "
                                f"{len(self._backlog)}",
                                depth=len(self._backlog),
                                seq=seq,
                                stream=stream.name,
                            )
                        self._backlog.append((seq, stream.name, query))
                    except AdmissionShed as shed:
                        self._shed.append(
                            ShedQuery(
                                seq=shed.seq,
                                stream=shed.stream,
                                depth=shed.depth,
                            )
                        )
                if cursor >= total:
                    self._active[index] = False
                self._advance_turn(index)
                self._acond.notify_all()

    async def _dispatch(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            async with self._acond:
                if not any(self._active) and not self._backlog:
                    return
                if any(self._active):
                    self._phase = "arrive"
                    self._turn = self._first_active()
                    self._acond.notify_all()
                    await self._acond.wait_for(
                        lambda: self._phase == "admit"
                    )
                window = list(self._backlog[: self.config.window])
                del self._backlog[: len(window)]
            if window:
                self._windows.append(
                    tuple(seq for seq, _stream, _query in window)
                )
                await loop.run_in_executor(
                    None, self._execute_window, window
                )
                self._maybe_checkpoint()

    async def _run_async(self) -> None:
        self._acond = asyncio.Condition()
        self._phase = "admit"
        self._turn = -1
        self._seq = 0
        self._backlog: list[tuple[int, str, StarQuery]] = []
        self._active = [len(stream) > 0 for stream in self.streams]
        producers = [
            asyncio.ensure_future(self._produce(index, stream))
            for index, stream in enumerate(self.streams)
            if len(stream) > 0
        ]
        dispatcher = asyncio.ensure_future(self._dispatch())
        try:
            await asyncio.gather(dispatcher, *producers)
        finally:
            for task in (dispatcher, *producers):
                if not task.done():
                    task.cancel()

    # ------------------------------------------------------------------
    # Window execution (thread side)
    # ------------------------------------------------------------------
    def _execute_window(
        self, window: list[tuple[int, str, StarQuery]]
    ) -> None:
        # Plan: analyze every admitted query (pure metadata — no disk
        # I/O) and register the window's planned-duplicate chunks.
        requests: list[tuple[int, AnalyzedQuery]] = []
        for seq, _stream, query in window:
            requests.append((seq, self.pipeline.analyzer.analyze(query)))
        self.flight.plan_window(self.manager.cache, requests)
        with self._wcond:
            self._win_next = 0
        workers = min(self.max_workers, len(window))
        if workers <= 1:
            for task in window:
                self._execute_one(task, 0)
            return
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="front"
        ) as pool:
            futures = [
                pool.submit(self._window_worker, window, index, workers)
                for index in range(workers)
            ]
            for future in futures:
                future.result()

    def _window_worker(
        self,
        window: list[tuple[int, str, StarQuery]],
        start: int,
        stride: int,
    ) -> None:
        try:
            for position in range(start, len(window), stride):
                self._await_position(position)
                try:
                    self._execute_one(window[position], start)
                finally:
                    self._advance_position()
        except BaseException as error:
            self._abort(error)
            raise

    def _await_position(self, position: int) -> None:
        with self._wcond:
            while self._win_next != position:
                if self._failure is not None:
                    raise ServeError(
                        "front-door window aborted by another worker"
                    ) from self._failure
                remaining = self._deadline - time.monotonic()
                if remaining <= 0:
                    raise ServeError(
                        "front-door worker timed out waiting for window "
                        f"position {position} (deadline "
                        f"{self.config.timeout_seconds}s)"
                    )
                self._wcond.wait(remaining)

    def _advance_position(self) -> None:
        with self._wcond:
            self._win_next += 1
            self._wcond.notify_all()

    def _abort(self, error: BaseException) -> None:
        with self._wcond:
            if self._failure is None:
                self._failure = error
            self._wcond.notify_all()

    def _execute_one(
        self, task: tuple[int, str, StarQuery], worker_index: int
    ) -> None:
        seq, stream_name, query = task
        self.flight.begin(seq)
        try:
            try:
                result = self.pipeline.execute(query)
            except self.tolerate as error:
                # A tolerated failure (including a cloned flight fault)
                # is recorded and the window moves on; the pages its
                # attempts consumed ride on the fault's cost report so
                # conservation stays exact.
                report = getattr(error, "cost_report", None)
                pages = int(getattr(report, "pages_read", 0) or 0)
                failure = QueryFailure(
                    seq=seq,
                    stream=stream_name,
                    kind=type(error).__name__,
                    message=str(error),
                    pages_read=pages,
                )
                with self._wcond:
                    self._failures.append(failure)
                    self._completed += 1
                return
        finally:
            self.flight.end()
        self._per_stream[stream_name].record(result.record, result.trace)
        single = StreamMetrics()
        single.record(result.record, result.trace)
        with self._wcond:
            self._merged.append((seq, single))
            self._completed += 1
        self._sim_seconds[worker_index] += result.record.time
        if self.on_answer is not None:
            self.on_answer(seq, stream_name, query, result.rows)

    def _maybe_checkpoint(self) -> None:
        every = self.config.checkpoint_every
        if every <= 0 or self.on_checkpoint is None:
            return
        boundary = self._completed // every
        if boundary > self._last_boundary:
            self._last_boundary = boundary
            self.on_checkpoint(self._completed)
            self._checkpoints += 1

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self) -> ServeReport:
        """Admit and execute every stream; merge in admission order."""
        self._failure = None
        self._failures = []
        self._shed = []
        self._windows = []
        self._merged = []
        self._per_stream = {
            stream.name: StreamMetrics() for stream in self.streams
        }
        self._sim_seconds = [0.0] * self.max_workers
        self._completed = 0
        self._checkpoints = 0
        self._last_boundary = 0
        self.flight.reset()
        self._deadline = time.monotonic() + self.config.timeout_seconds
        backend = self.manager.backend
        previous_recorder = backend.lock_wait_recorder
        backend.lock_wait_recorder = record_blocked_wait
        started = time.perf_counter()
        try:
            try:
                asyncio.run(
                    asyncio.wait_for(
                        self._run_async(), self.config.timeout_seconds
                    )
                )
            except (asyncio.TimeoutError, TimeoutError) as error:
                raise ServeError(
                    "front-door session exceeded its "
                    f"{self.config.timeout_seconds}s deadline"
                ) from error
        finally:
            backend.lock_wait_recorder = previous_recorder
        wall = time.perf_counter() - started

        # Merge in admission order — a pure function of (streams,
        # config), never of thread completion order.
        metrics = StreamMetrics()
        for _seq, single in sorted(
            self._merged, key=lambda item: item[0]
        ):
            metrics.absorb(single)
        makespan = max(self._sim_seconds) if self._sim_seconds else 0.0
        queries = len(metrics)
        throughput = queries / makespan if makespan > 0.0 else 0.0
        return ServeReport(
            queries=queries,
            max_workers=self.max_workers,
            schedule=FRONT,
            wall_seconds=wall,
            simulated_worker_seconds=tuple(self._sim_seconds),
            simulated_makespan=makespan,
            simulated_throughput=throughput,
            metrics=metrics,
            per_stream=self._per_stream,
            contention=self._contention(),
            checkpoints=self._checkpoints,
            failures=tuple(
                sorted(self._failures, key=lambda f: f.seq)
            ),
        )

    @property
    def shed_queries(self) -> tuple[ShedQuery, ...]:
        """Queries shed by the last run, in admission order."""
        return tuple(sorted(self._shed, key=lambda s: s.seq))

    @property
    def window_log(self) -> tuple[tuple[int, ...], ...]:
        """Admitted sequence numbers per executed window, in order."""
        return tuple(self._windows)

    def _contention(self) -> dict[str, object]:
        out: dict[str, object] = {
            "backend": {
                "lock_wait_seconds": self.manager.backend.lock_wait_seconds,
                "lock_acquisitions": self.manager.backend.lock_acquisitions,
            }
        }
        cache_contention = self.manager.cache.contention()
        if cache_contention:
            out["cache"] = cache_contention
        return out


def _front_digest(
    serve: ServeReport,
    shed: Sequence[ShedQuery],
    windows: Sequence[tuple[int, ...]],
    flight_stats: dict[str, int],
    fault_counters: dict[str, int],
    cache_bytes: int,
    cache_entries: int,
) -> str:
    """Hash the deterministic outcome of a front-door run.

    Mirrors :func:`repro.serve.soak._chaos_digest` and additionally
    covers the admission schedule (window compositions, sheds) and the
    coalescing counters.  Wall-clock fields never enter.
    """
    parts: list[str] = []
    for record in serve.metrics.records:
        parts.append(repr(record))
    for failure in serve.failures:
        parts.append(
            f"failure:{failure.seq}:{failure.stream}:"
            f"{failure.kind}:{failure.pages_read}"
        )
    for entry in shed:
        parts.append(f"shed:{entry.seq}:{entry.stream}:{entry.depth}")
    for seqs in windows:
        parts.append("window:" + ",".join(str(seq) for seq in seqs))
    for name, count in sorted(fault_counters.items()):
        parts.append(f"fault:{name}:{count}")
    for name, count in sorted(flight_stats.items()):
        parts.append(f"flight:{name}:{count}")
    for trace in serve.metrics.traces:
        parts.append(
            f"trace:{sorted(trace.resolved_by.items())!r}:"
            f"{trace.partitions_total}:{trace.backend_pages}"
        )
        for stage in trace.stages:
            parts.append(
                f"stage:{stage.name}:{stage.partitions}:"
                f"{stage.pages_read}:{stage.tuples_scanned}:"
                f"{stage.faults}:{stage.retries}:{stage.degraded}:"
                f"{stage.backoff_seconds!r}:{stage.coalesce_seconds!r}"
            )
    parts.append(f"cache:{cache_bytes}:{cache_entries}")
    return sha256("\n".join(parts).encode()).hexdigest()


def run_front(
    manager: ChunkCacheManager,
    streams: Sequence[QueryStream],
    config: FrontConfig = FrontConfig(),
    injector: FaultSource | None = None,
    oracle: Callable[[StarQuery], Any] | None = None,
) -> FrontReport:
    """Run the front door under deep invariants and verify conservation.

    The front-door analogue of :func:`repro.serve.soak.run_chaos_soak`:

    - **exact conservation** — ``pages_read + failed_pages == disk read
      delta``, with coalesced waiters contributing zero pages (the
      leader's fetch carries them all) and every failed attempt's
      wasted I/O accounted;
    - **correct or typed** — with an ``injector``, queries either
      answer or fail with a typed
      :class:`~repro.exceptions.InjectedFault`; every coalesced waiter
      of a failed fetch receives the same typed failure.  With an
      ``oracle``, every answer is replayed fault-free afterwards and
      must match;
    - **reproducibility** — the report's digest is a pure function of
      (workload, fault seed, config) at any worker count.

    Conservation checkpoints run when the store supports cross-shard
    checks (``check_conservation``); a plain single-threaded store is
    accepted too — window execution is fully serialized, so the front
    door, unlike the racing soak, does not require a sharded store.

    Args:
        manager: The shared chunk-cache manager.
        streams: The user streams.
        config: Admission, coalescing and checkpoint knobs.
        injector: Optional fault source (activated for the duration;
            :class:`~repro.exceptions.InjectedFault` becomes a
            tolerated per-query failure).
        oracle: Optional fault-free replay oracle, checked after the
            injector deactivates and outside the disk bracket.
    """
    conserve = getattr(manager.cache, "check_conservation", None)
    answers: dict[int, tuple[StarQuery, Any]] = {}

    def capture(
        seq: int, stream: str, query: StarQuery, rows: Any
    ) -> None:
        if oracle is not None:
            answers[seq] = (query, rows)

    on_checkpoint: Callable[[int], None] | None = None
    if callable(conserve):
        checker = conserve

        def _checkpoint(_count: int) -> None:
            checker()

        on_checkpoint = _checkpoint

    previous_mode = invariants.set_mode(invariants.DEEP)
    checks_before = invariants.counters()["deep"]
    try:
        session = FrontSession(
            manager,
            streams,
            config,
            tolerate=(InjectedFault,) if injector is not None else (),
            on_answer=capture,
            on_checkpoint=on_checkpoint,
        )
        disk = manager.backend.disk
        reads_before = disk.stats.reads
        activation = (
            injector.activate(manager)
            if injector is not None
            else nullcontext()
        )
        with activation:
            report = session.run()
            if callable(conserve):
                conserve()
            delta = disk.stats.reads - reads_before
        pages = report.metrics.total_pages_read()
        failed = _failed_pages(report.failures)
        invariants.require(
            pages + failed == delta,
            "front-door I/O conservation broken: answered queries "
            f"account for {pages} pages and failed queries for "
            f"{failed}, but the disk counter advanced by {delta} "
            "(a coalesced fetch was double-counted or leaked)",
        )
        deep_checks = invariants.counters()["deep"] - checks_before
    finally:
        invariants.set_mode(previous_mode)

    wrong = 0
    if oracle is not None:
        for seq in sorted(answers):
            query, rows = answers[seq]
            if _canonical_rows(oracle(query)) != _canonical_rows(rows):
                wrong += 1
        invariants.require(
            wrong == 0,
            f"{wrong} front-door answers disagreed with the fault-free "
            "oracle — coalescing must never change results",
        )

    fault_counters = (
        dict(injector.counters()) if injector is not None else {}
    )
    flight_stats = session.flight.stats()
    cache = manager.cache
    digest = _front_digest(
        report,
        session.shed_queries,
        session.window_log,
        flight_stats,
        fault_counters,
        int(cache.used_bytes),
        len(cache),
    )
    return FrontReport(
        queries=report.queries,
        failures=report.failures,
        shed=session.shed_queries,
        windows=session.window_log,
        window_size=config.window,
        queue_limit=config.queue_limit,
        max_workers=session.max_workers,
        coalesce=config.coalesce,
        flights=flight_stats["flights"],
        coalesced_chunks=flight_stats["coalesced_chunks"],
        shared_pages=flight_stats["shared_pages"],
        pages_read=pages,
        failed_pages=failed,
        disk_read_delta=delta,
        deep_checks=deep_checks,
        checkpoints=report.checkpoints,
        fault_counters=fault_counters,
        wrong_answers=wrong,
        wall_seconds=report.wall_seconds,
        simulated_worker_seconds=report.simulated_worker_seconds,
        simulated_makespan=report.simulated_makespan,
        simulated_throughput=report.simulated_throughput,
        metrics=report.metrics,
        per_stream=report.per_stream,
        contention=report.contention,
        digest=digest,
    )
