"""The concurrent serving layer.

Everything needed to run the chunk-caching middle tier under multiple
simultaneous users on real threads:

- :class:`ShardedChunkCache` — a lock-striped, thread-safe
  :class:`~repro.core.cache.ChunkStore` (bit-identical to the plain
  cache at ``num_shards=1``);
- :class:`ServeSession` — K user streams on a thread pool through the
  existing staged pipeline, with a deterministic **fair** schedule and a
  racing **free** schedule;
- :func:`run_soak` — the invariant-hammering stress harness;
- :func:`run_chaos_soak` — the same soak under a deterministic fault
  plan, asserting graceful degradation (correct answer or typed
  failure, exact I/O conservation, reproducible digest);
- :class:`FrontSession` / :func:`run_front` — the asyncio admission
  front door: bounded deterministic backpressure (typed
  :class:`~repro.exceptions.AdmissionShed`), fixed admission windows,
  and single-flight chunk coalescing through the pipeline's
  :class:`~repro.pipeline.flight.FlightTable`;
- :class:`ProcessComputeEngine` / :class:`ProcServeSession` — the
  process-parallel execution mode (``exec_mode="processes"``): replica
  worker processes compute chunk payloads while the coordinator keeps
  authoritative accounting, so digests stay bit-identical to thread
  mode at any worker count (see ``docs/PARALLEL.md``).

The layer sits strictly *above* the pipeline: it composes the manager,
cache and workload layers and never touches the backend or storage
directly (enforced by reprolint rule R001); fault injectors arrive
duck-typed from the composition root so this layer never imports
:mod:`repro.faults` either (rule R006).
"""

from repro.serve.front import (
    FrontConfig,
    FrontReport,
    FrontSession,
    ShedQuery,
    run_front,
)
from repro.serve.proc import (
    EngineSpec,
    ProcServeSession,
    ProcessComputeEngine,
    WorkItem,
    WorkResult,
    WorkerPool,
)
from repro.serve.session import (
    FAIR,
    FREE,
    PROCESSES,
    THREADS,
    QueryFailure,
    ServeReport,
    ServeSession,
)
from repro.serve.sharded import (
    CacheShard,
    ShardedChunkCache,
    stable_key_hash,
)
from repro.serve.soak import (
    ChaosConfig,
    ChaosReport,
    FaultSource,
    SoakConfig,
    SoakReport,
    run_chaos_soak,
    run_soak,
)

__all__ = [
    "FAIR",
    "FREE",
    "PROCESSES",
    "THREADS",
    "CacheShard",
    "ChaosConfig",
    "ChaosReport",
    "EngineSpec",
    "FaultSource",
    "FrontConfig",
    "FrontReport",
    "FrontSession",
    "ProcServeSession",
    "ProcessComputeEngine",
    "QueryFailure",
    "ShedQuery",
    "ServeReport",
    "ServeSession",
    "ShardedChunkCache",
    "SoakConfig",
    "SoakReport",
    "WorkItem",
    "WorkResult",
    "WorkerPool",
    "run_chaos_soak",
    "run_front",
    "run_soak",
    "stable_key_hash",
]
