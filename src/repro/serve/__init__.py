"""The concurrent serving layer.

Everything needed to run the chunk-caching middle tier under multiple
simultaneous users on real threads:

- :class:`ShardedChunkCache` — a lock-striped, thread-safe
  :class:`~repro.core.cache.ChunkStore` (bit-identical to the plain
  cache at ``num_shards=1``);
- :class:`ServeSession` — K user streams on a thread pool through the
  existing staged pipeline, with a deterministic **fair** schedule and a
  racing **free** schedule;
- :func:`run_soak` — the invariant-hammering stress harness.

The layer sits strictly *above* the pipeline: it composes the manager,
cache and workload layers and never touches the backend or storage
directly (enforced by reprolint rule R001).
"""

from repro.serve.session import FAIR, FREE, ServeReport, ServeSession
from repro.serve.sharded import (
    CacheShard,
    ShardedChunkCache,
    stable_key_hash,
)
from repro.serve.soak import SoakConfig, SoakReport, run_soak

__all__ = [
    "FAIR",
    "FREE",
    "CacheShard",
    "ServeReport",
    "ServeSession",
    "ShardedChunkCache",
    "SoakConfig",
    "SoakReport",
    "run_soak",
    "stable_key_hash",
]
