"""Process-parallel serving: replica shard workers behind the engine facade.

Thread workers sharing one heap cannot speed this simulation up — query
execution is pure Python and the GIL serializes it, which is exactly the
regression ``BENCH_serve.json`` records (simulated speedup scales with
the worker count while real wall-clock QPS falls).  This module moves
the *compute* — decoding and aggregating source chunks, the bulk of each
query's wall time — into worker **processes**, while keeping every piece
of shared, order-sensitive state (the sharded chunk cache, the simulated
disk and buffer pool, fault hooks, metrics) in the coordinator process
where the existing determinism contracts already hold.

Topology
--------
::

    coordinator process                      worker processes (spawn)
    -------------------                      ------------------------
    ServeSession / FrontSession              _worker_main
      StagedPipeline (per query)               replica BackendEngine
        resolver chain                           (own disk/pool, built
          ProcessComputeEngine  --WorkItem-->     from the same records
            touch replay           queues         via repro.api)
            payload claims    <--WorkResult--   per-chunk payload memo

- Each worker owns a **replica** backend engine, bulk-loaded in the
  worker process from the same fact records via the public
  :func:`repro.api.build_backend` facade, so payload bytes are computed
  by the very same code path the thread-mode engine runs.
- Work is routed by a stable CRC-32 hash of the chunk work key, so a
  given chunk is always computed (and memoized) by the same worker —
  the worker pool is a disjoint sharding of the chunk key space.
- The coordinator's :class:`ProcessComputeEngine` *replays* the exact
  I/O accounting of :meth:`repro.backend.engine.BackendEngine.compute_chunks`
  against the shared simulated disk and buffer pool (via the storage
  layer's ``touch`` reads, which request the identical page sequence
  without decoding), then claims the payload arrays from the pool.

Determinism argument
--------------------
``digest`` stays a pure function of (workload, seed, config) at any
worker count because every observable transition still happens in the
coordinator, in the same order as thread mode:

- cache gets/puts, admission decisions, metrics records — unchanged
  pipeline code, serialized by the session's fair turnstile;
- simulated disk reads — the touch replay drives the same pages in the
  same order through the same buffer pool, so disk counters, pool hit
  rates and the fault injector's ``disk.read`` sequence numbers advance
  identically (the injector's schedule is a pure function of
  (seed, site, sequence) — see :mod:`repro.faults.plan` — so it needs
  no per-process reconstruction: the coordinator rolls it all);
- payload rows — replicas never materialize aggregate tables and never
  see appends (both raise), so a replica computes from base chunks
  exactly what the thread-mode engine computes from base chunks.

Worker processes hold *no* fault hooks, no cache, and no authoritative
counters; killing one mid-run can lose in-flight payloads (surfacing as
a :class:`~repro.exceptions.BackendError`) but can never corrupt
accounting.

Spawn-vs-fork policy
--------------------
Workers always start via the ``spawn`` method: the coordinator runs
collector/dispatcher threads and holds locks, so ``fork`` could clone a
lock in the held state, and ``spawn`` is the only method available
everywhere the CI matrix runs.  Workers signal readiness after building
their replica; :meth:`WorkerPool.start` blocks until every worker is
ready so session wall-clock never includes interpreter start-up.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
import zlib
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.backend.engine import BackendEngine, _synchronized
from repro.backend.plans import CostReport, measure_cost
from repro.chunks.grid import ChunkSpace
from repro.exceptions import BackendError, InjectedFault, ServeError
from repro.schema.star import GroupBy, StarSchema
from repro.serve.session import PROCESSES, ServeSession, THREADS

__all__ = [
    "EngineSpec",
    "WorkItem",
    "WorkResult",
    "WorkerPool",
    "ProcessComputeEngine",
    "ProcServeSession",
    "START_METHOD",
    "THREADS",
    "PROCESSES",
]

#: The only supported start method (see the module docstring).
START_METHOD = "spawn"

#: Control values of :attr:`WorkResult.req_id`.
_READY = -2
_FATAL = -1

#: Per-chunk payloads a worker keeps memoized (FIFO beyond this).
_WORKER_MEMO_ENTRIES = 4096

#: Computed-but-unclaimed payloads the coordinator keeps (FIFO beyond
#: this; an evicted payload is simply recomputed from the worker memo).
_MAX_READY_SLOTS = 8192


@dataclass(frozen=True)
class EngineSpec:
    """Everything a worker needs to build its replica backend engine.

    A frozen, picklable value object shipped once to each worker at
    start-up.  The chunk space is shipped whole (it is a plain object of
    schema + chunking tuples), so coordinator and replicas agree on
    every chunk number by construction.
    """

    schema: StarSchema
    space: ChunkSpace
    records: np.ndarray
    organization: str = "chunked"
    page_size: int = 4096
    buffer_pool_pages: int = 256


@dataclass(frozen=True)
class WorkItem:
    """One batch of chunk computations for a single worker.

    The serializable request envelope: every field is a plain picklable
    value (tuples of ints/strings), canonicalized by the pool so the
    same logical request always renders — and routes — identically.
    """

    req_id: int
    groupby: tuple[int, ...]
    numbers: tuple[int, ...]
    aggregates: tuple[tuple[str, str], ...]
    leaf_filters: tuple[tuple[int, int] | None, ...] | None
    prefer_base: bool


@dataclass(frozen=True)
class WorkResult:
    """One worker's reply: per-chunk payload arrays, or a typed error.

    ``req_id`` matches the :class:`WorkItem` (negative values are pool
    control messages); ``payloads`` pairs each requested chunk number
    with its aggregated rows in request order.
    """

    req_id: int
    payloads: tuple[tuple[int, np.ndarray], ...] = ()
    error: str | None = None


def _canonical_filters(
    leaf_filters: Sequence | None,
) -> tuple[tuple[int, int] | None, ...] | None:
    """Canonical picklable form of a per-dimension leaf-filter sequence.

    ``None`` and an all-``None`` tuple mean the same thing to the engine
    (no filtering), so both map to ``None`` — one memo entry, one route.
    """
    if leaf_filters is None:
        return None
    canonical = tuple(
        None if interval is None
        else (int(interval[0]), int(interval[1]))
        for interval in leaf_filters
    )
    if all(interval is None for interval in canonical):
        return None
    return canonical


def _work_key(
    groupby: tuple[int, ...],
    number: int,
    aggregates: tuple[tuple[str, str], ...],
    leaf_filters: tuple[tuple[int, int] | None, ...] | None,
    prefer_base: bool,
) -> tuple:
    """The memo/routing identity of one chunk computation."""
    return (groupby, number, aggregates, leaf_filters, prefer_base)


def _route(key: tuple, num_workers: int) -> int:
    """Stable worker index for a work key (CRC-32, like shard routing)."""
    return zlib.crc32(repr(key).encode("utf-8")) % num_workers


def _build_replica(spec: EngineSpec) -> BackendEngine:
    """Build one worker's replica engine through the public facade.

    Imported at call time (this runs inside the worker process): the
    facade imports this module for the execution-mode knob, so a
    top-level import here would be circular.  Bitmaps are skipped —
    the chunk interface never reads them.
    """
    from repro.api import build_backend

    return build_backend(
        spec.schema,
        spec.space,
        spec.records,
        organization=spec.organization,
        page_size=spec.page_size,
        buffer_pool_pages=spec.buffer_pool_pages,
        build_bitmaps=False,
    )


def _worker_main(
    spec: EngineSpec,
    requests: "multiprocessing.queues.Queue",
    results: "multiprocessing.queues.Queue",
    worker_index: int,
) -> None:
    """Worker process body: build the replica, then serve work items.

    Payloads are memoized per work key so a chunk is computed at most
    once per worker between memo evictions — re-claims after a faulted
    coordinator attempt (or a cache eviction) are answered instantly.
    """
    try:
        replica = _build_replica(spec)
    except BaseException as error:  # surface build failures, never hang
        results.put(
            WorkResult(
                req_id=_FATAL,
                error=(
                    f"worker {worker_index} failed to build its replica "
                    f"engine: {error!r}"
                ),
            )
        )
        return
    results.put(WorkResult(req_id=_READY))
    memo: OrderedDict[tuple, np.ndarray] = OrderedDict()
    while True:
        item = requests.get()
        if item is None:
            return
        try:
            keys = {
                number: _work_key(
                    item.groupby,
                    number,
                    item.aggregates,
                    item.leaf_filters,
                    item.prefer_base,
                )
                for number in item.numbers
            }
            missing = [
                number for number in item.numbers
                if keys[number] not in memo
            ]
            if missing:
                computed, _ = replica.compute_chunks(
                    item.groupby,
                    missing,
                    item.aggregates,
                    leaf_filters=item.leaf_filters,
                    prefer_base=item.prefer_base,
                )
                for number, rows in computed.items():
                    memo[keys[number]] = rows
                while len(memo) > _WORKER_MEMO_ENTRIES:
                    memo.popitem(last=False)
            results.put(
                WorkResult(
                    req_id=item.req_id,
                    payloads=tuple(
                        (number, memo[keys[number]])
                        for number in item.numbers
                    ),
                )
            )
        except BaseException as error:
            results.put(WorkResult(req_id=item.req_id, error=repr(error)))


class _Slot:
    """Coordinator-side landing slot for one chunk payload."""

    __slots__ = ("event", "rows", "error", "ready")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.rows: np.ndarray | None = None
        self.error: str | None = None
        self.ready = False


class WorkerPool:
    """A fixed pool of replica worker processes plus a result collector.

    The pool is the message-passing half of the process-parallel engine:
    :meth:`stage` fans chunk computations out to the owning workers
    (deduplicating against in-flight and ready work), :meth:`claim`
    blocks until one payload has landed and consumes it.  All queue
    traffic is :class:`WorkItem`/:class:`WorkResult` envelopes.
    """

    def __init__(
        self,
        spec: EngineSpec,
        num_workers: int,
        timeout_seconds: float = 120.0,
    ) -> None:
        if num_workers < 1:
            raise ServeError(
                f"worker pool needs at least one worker, got {num_workers}"
            )
        if timeout_seconds <= 0:
            raise ServeError(
                f"timeout_seconds must be positive, got {timeout_seconds}"
            )
        self.spec = spec
        self.num_workers = num_workers
        self.timeout_seconds = timeout_seconds
        self._ctx = multiprocessing.get_context(START_METHOD)
        self._requests = [self._ctx.Queue() for _ in range(num_workers)]
        self._results = self._ctx.Queue()
        self._processes: list[Any] = []
        self._collector: threading.Thread | None = None
        self._lock = threading.Lock()
        self._slots: dict[tuple, _Slot] = {}
        self._ready_order: deque[tuple] = deque()
        self._inflight: dict[int, list[tuple]] = {}
        self._req_counter = 0
        self._ready_workers = 0
        self._all_ready = threading.Event()
        self._failed: str | None = None
        self._closed = False
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the workers and block until every replica is loaded."""
        if self._started:
            return
        self._started = True
        for index in range(self.num_workers):
            process = self._ctx.Process(
                target=_worker_main,
                args=(
                    self.spec,
                    self._requests[index],
                    self._results,
                    index,
                ),
                name=f"repro-serve-worker-{index}",
                daemon=True,
            )
            process.start()
            self._processes.append(process)
        self._collector = threading.Thread(
            target=self._collect, name="repro-serve-collector", daemon=True
        )
        self._collector.start()
        deadline = time.monotonic() + self.timeout_seconds
        while not self._all_ready.wait(timeout=0.1):
            if self._failed is not None:
                raise ServeError(self._failed)
            if time.monotonic() > deadline:
                self.close()
                raise ServeError(
                    f"worker pool not ready within {self.timeout_seconds}s"
                )

    def close(self) -> None:
        """Stop workers and the collector; safe to call twice."""
        # The closed flag is checked under the pool lock by stage();
        # the check-and-set here must take the same lock or two racing
        # close() calls can both run the shutdown sequence.
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for queue in self._requests:
            try:
                queue.put(None)
            except (OSError, ValueError):
                pass
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        try:
            self._results.put(WorkResult(req_id=_FATAL, error=None))
        except (OSError, ValueError):
            pass
        if self._collector is not None:
            self._collector.join(timeout=5.0)
        for queue in [*self._requests, self._results]:
            queue.cancel_join_thread()
            queue.close()

    # ------------------------------------------------------------------
    # Collector
    # ------------------------------------------------------------------
    def _collect(self) -> None:
        while True:
            result = self._results.get()
            if result.req_id == _FATAL:
                if result.error is None:  # close() sentinel
                    return
                with self._lock:
                    self._failed = result.error
                    for slot in self._slots.values():
                        if not slot.ready and slot.error is None:
                            slot.error = result.error
                            slot.event.set()
                continue
            if result.req_id == _READY:
                with self._lock:
                    self._ready_workers += 1
                    if self._ready_workers == self.num_workers:
                        self._all_ready.set()
                continue
            with self._lock:
                keys = self._inflight.pop(result.req_id, [])
                if result.error is not None:
                    for key in keys:
                        slot = self._slots.get(key)
                        if slot is not None and not slot.ready:
                            slot.error = result.error
                            slot.event.set()
                    continue
                by_number = dict(result.payloads)
                for key in keys:
                    slot = self._slots.get(key)
                    if slot is None or slot.ready:
                        continue
                    slot.rows = by_number[key[1]]
                    slot.ready = True
                    slot.event.set()
                    self._ready_order.append(key)
                while len(self._ready_order) > _MAX_READY_SLOTS:
                    stale_key = self._ready_order.popleft()
                    stale = self._slots.get(stale_key)
                    if stale is not None and stale.ready:
                        del self._slots[stale_key]

    # ------------------------------------------------------------------
    # Staging and claiming
    # ------------------------------------------------------------------
    def stage(
        self,
        groupby: Sequence[int],
        numbers: Sequence[int],
        aggregates: Sequence[tuple[str, str]],
        leaf_filters: Sequence | None = None,
        prefer_base: bool = False,
    ) -> None:
        """Send any not-yet-staged chunk computations to their workers.

        Idempotent per work key: chunks already in flight or already
        landed are skipped, so the lookahead dispatcher and the replay
        engine can both stage the same work without duplicating it.
        """
        groupby = tuple(int(level) for level in groupby)
        aggregates = tuple(
            (str(name), str(func)) for name, func in aggregates
        )
        filters = _canonical_filters(leaf_filters)
        batches: dict[int, list[tuple[int, tuple]]] = {}
        with self._lock:
            if self._failed is not None or self._closed:
                return
            for number in numbers:
                number = int(number)
                key = _work_key(
                    groupby, number, aggregates, filters, prefer_base
                )
                if key in self._slots:
                    continue
                self._slots[key] = _Slot()
                worker = _route(key, self.num_workers)
                batches.setdefault(worker, []).append((number, key))
            items: list[tuple[int, WorkItem]] = []
            for worker, pairs in sorted(batches.items()):
                self._req_counter += 1
                req_id = self._req_counter
                self._inflight[req_id] = [key for _, key in pairs]
                items.append(
                    (
                        worker,
                        WorkItem(
                            req_id=req_id,
                            groupby=groupby,
                            numbers=tuple(number for number, _ in pairs),
                            aggregates=aggregates,
                            leaf_filters=filters,
                            prefer_base=prefer_base,
                        ),
                    )
                )
        for worker, item in items:
            self._requests[worker].put(item)

    def claim(
        self,
        groupby: Sequence[int],
        number: int,
        aggregates: Sequence[tuple[str, str]],
        leaf_filters: Sequence | None = None,
        prefer_base: bool = False,
    ) -> np.ndarray:
        """Block until one chunk's payload lands, consume and return it.

        Re-stages transparently when the slot was evicted (or never
        staged); the owning worker answers from its memo, so a re-claim
        is cheap.  A worker death or in-worker error surfaces as a
        :class:`~repro.exceptions.BackendError`.
        """
        groupby = tuple(int(level) for level in groupby)
        aggregates = tuple(
            (str(name), str(func)) for name, func in aggregates
        )
        filters = _canonical_filters(leaf_filters)
        key = _work_key(
            groupby, int(number), aggregates, filters, prefer_base
        )
        deadline = time.monotonic() + self.timeout_seconds
        while True:
            with self._lock:
                if self._failed is not None:
                    raise BackendError(self._failed)
                slot = self._slots.get(key)
            if slot is None:
                self.stage(
                    groupby, [int(number)], aggregates, filters, prefer_base
                )
                continue
            while not slot.event.wait(timeout=0.5):
                if time.monotonic() > deadline:
                    raise BackendError(
                        f"timed out waiting {self.timeout_seconds}s for "
                        f"chunk payload {key!r}"
                    )
                worker = self._processes[_route(key, self.num_workers)]
                if not worker.is_alive():
                    raise BackendError(
                        f"worker process {worker.name} died while "
                        f"computing {key!r}"
                    )
            if slot.error is not None:
                raise BackendError(
                    f"worker computation failed for {key!r}: {slot.error}"
                )
            with self._lock:
                if self._slots.get(key) is not slot:
                    continue  # evicted between landing and claiming
                rows = slot.rows
                del self._slots[key]
            assert rows is not None
            return rows


class ProcessComputeEngine(BackendEngine):
    """The coordinator's engine: authoritative accounting, pooled compute.

    Wraps a loaded thread-mode :class:`~repro.backend.engine.BackendEngine`
    and *shares its physical state by reference* — disk, buffer pool,
    chunked file, dimension tables — so every counter, estimator and
    relational access path behaves exactly as before.  Only
    :meth:`compute_chunks` changes: it replays the wrapped method's I/O
    accounting against the shared state (identical page sequence, cost
    report and fault semantics) while the payload arrays are computed by
    the worker pool's replicas and claimed over the result queue.

    Mutating entry points (``materialize``, ``append_records``,
    ``reorganize``) raise: replicas are built once from the base records
    and the determinism argument (see the module docstring) relies on
    coordinator and replicas never diverging.
    """

    def __init__(self, inner: BackendEngine, pool: WorkerPool) -> None:
        # Deliberately no super().__init__: the wrapper owns no state of
        # its own, it aliases the wrapped engine's loaded state so both
        # views stay consistent (the inner engine must not be mutated or
        # driven concurrently while wrapped).
        if inner.chunked_file is None:
            raise BackendError(
                "process-parallel serving requires the chunked organization"
            )
        if inner.delta_file is not None and inner.delta_file.num_records:
            raise BackendError(
                "process-parallel serving requires an empty delta region; "
                "reorganize() the engine before wrapping it"
            )
        self.inner = inner
        self.pool = pool
        self.schema = inner.schema
        self.space = inner.space
        self.organization = inner.organization
        self.disk = inner.disk
        self.buffer_pool = inner.buffer_pool
        self.record_format = inner.record_format
        self.mapper = inner.mapper
        self.bitmaps = inner.bitmaps
        self.chunked_file = inner.chunked_file
        self.fact_file = inner.fact_file
        self.materialized = inner.materialized
        self.dimension_tables = inner.dimension_tables
        self.delta_file = inner.delta_file
        self._loaded = inner._loaded
        self._lock = threading.RLock()
        self.lock_wait_seconds = 0.0
        self.lock_acquisitions = 0
        self.lock_wait_recorder = None
        self.fault_hook = None

    @classmethod
    def launch(
        cls,
        inner: BackendEngine,
        records: np.ndarray,
        num_workers: int,
        timeout_seconds: float = 120.0,
    ) -> "ProcessComputeEngine":
        """Wrap ``inner``, spawning and awaiting a ready worker pool.

        ``records`` must be the raw fact records the inner engine was
        loaded from — they seed each worker's replica.
        """
        spec = EngineSpec(
            schema=inner.schema,
            space=inner.space,
            records=records,
            organization=inner.organization,
            page_size=inner.disk.page_size,
            buffer_pool_pages=inner.buffer_pool.capacity,
        )
        pool = WorkerPool(
            spec, num_workers, timeout_seconds=timeout_seconds
        )
        pool.start()
        return cls(inner, pool)

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        self.pool.close()

    def prefetch(
        self,
        groupby: Sequence[int],
        numbers: Sequence[int],
        aggregates: Sequence[tuple[str, str]],
        leaf_filters: Sequence | None = None,
    ) -> None:
        """Advisory: stage upcoming chunk computations on the pool.

        Deliberately *not* synchronized on the engine lock — staging
        touches no shared accounting state, so the lookahead dispatcher
        can overlap worker compute with the coordinator's replay.
        """
        groupby = self.schema.validate_groupby(groupby)
        self.pool.stage(groupby, numbers, aggregates, leaf_filters)

    @_synchronized
    def compute_chunks(
        self,
        groupby: Sequence[int],
        numbers: Sequence[int],
        aggregates: Sequence[tuple[str, str]],
        leaf_filters: Sequence | None = None,
        prefer_base: bool = False,
    ) -> tuple[dict[int, np.ndarray], CostReport]:
        """Replay the wrapped engine's accounting; claim pooled payloads.

        Mirrors :meth:`BackendEngine.compute_chunks` step for step —
        same source selection, same fault-hook placement, same page
        sequence (via the storage layer's touch reads), same cost-report
        arithmetic, same :class:`~repro.exceptions.InjectedFault`
        attachment — with the decode/aggregate work replaced by payload
        claims from the worker pool.  A faulted attempt claims nothing,
        so a retry re-touches (and is re-charged) exactly like a
        thread-mode retry, while the worker's memo already holds the
        payloads.
        """
        self._require_loaded()
        if self.chunked_file is None:
            raise BackendError(
                "the chunk interface requires the chunked organization"
            )
        groupby = self.schema.validate_groupby(groupby)
        numbers = [int(number) for number in numbers]
        if prefer_base:
            source = None
        else:
            source = self._choose_source(groupby, leaf_filters)
        self.pool.stage(
            groupby, numbers, aggregates, leaf_filters, prefer_base
        )
        results: dict[int, np.ndarray] = {}
        try:
            with measure_cost(self.disk, access_path="chunk") as report:
                if self.fault_hook is not None:
                    self.fault_hook("compute_chunks")
                if source is None:
                    source_groupby: GroupBy = self.schema.base_groupby
                    source_file = self.chunked_file
                else:
                    source_groupby, source_file = source
                source_numbers = self._union_source_chunks(
                    groupby, numbers, source_groupby
                )
                scanned = source_file.touch_chunks(source_numbers)
                if source is None:
                    delta = self._delta_for_base_chunks(set(source_numbers))
                    scanned += len(delta)
                report.tuples_scanned += scanned
                report.chunks_computed += len(numbers)
                for number in numbers:
                    results[number] = self.pool.claim(
                        groupby,
                        number,
                        aggregates,
                        leaf_filters,
                        prefer_base,
                    )
                report.result_tuples += sum(
                    len(rows) for rows in results.values()
                )
        except InjectedFault as fault:
            # measure_cost.__exit__ already ran, so ``report`` holds the
            # I/O of the failed attempt.  Attach it once (the innermost
            # computation wins when answer() routed through here).
            if fault.cost_report is None:
                fault.cost_report = report
                fault.source_level = (
                    "base" if source is None else "aggregate"
                )
            raise
        return results, report

    # ------------------------------------------------------------------
    # Mutation is out of scope for the wrapped engine
    # ------------------------------------------------------------------
    def materialize(self, groupby: Sequence[int]) -> None:
        raise BackendError(
            "materialize() is not supported in process execution mode: "
            "worker replicas are built once from the base records"
        )

    def append_records(self, records: np.ndarray) -> list[int]:
        raise BackendError(
            "append_records() is not supported in process execution "
            "mode: worker replicas are built once from the base records"
        )

    def reorganize(self) -> None:
        raise BackendError(
            "reorganize() is not supported in process execution mode: "
            "worker replicas are built once from the base records"
        )


class ProcServeSession(ServeSession):
    """A serving session whose backend is a :class:`ProcessComputeEngine`.

    Identical to :class:`~repro.serve.session.ServeSession` in every
    observable — tickets, turnstile, merge order, report fields — plus a
    **lookahead dispatcher** thread that walks the canonical query order
    ahead of the turnstile and stages each query's partitions on the
    worker pool, so workers compute future chunks while the coordinator
    replays the current query's accounting.  The dispatcher only calls
    metadata paths (the analyzer and the memoized work estimator — no
    disk I/O, no fault sites), so it cannot perturb any accounted value.

    Args:
        lookahead: How many queries past the last completed one the
            dispatcher may stage (bounds coordinator-side payload
            buffering).
    """

    def __init__(self, *args: Any, lookahead: int = 32, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        if lookahead < 1:
            raise ServeError(f"lookahead must be >= 1, got {lookahead}")
        if not isinstance(self.manager.backend, ProcessComputeEngine):
            raise ServeError(
                "ProcServeSession requires a ProcessComputeEngine "
                "backend — build the stack with "
                "StackConfig(exec_mode='processes')"
            )
        self.lookahead = lookahead

    def run(self):  # type: ignore[override]
        with self._cond:
            self._completed = 0
            self._failure = None
        stop = threading.Event()
        dispatcher = threading.Thread(
            target=self._dispatch,
            args=(stop,),
            name="proc-dispatch",
            daemon=True,
        )
        dispatcher.start()
        try:
            return super().run()
        finally:
            stop.set()
            with self._cond:
                self._cond.notify_all()
            dispatcher.join(timeout=10.0)

    def _dispatch(self, stop: threading.Event) -> None:
        tickets = sorted(
            (
                ticket
                for worker_tickets in self._tickets()
                for ticket in worker_tickets
            ),
            key=lambda ticket: ticket[0],
        )
        analyzer = self.manager.pipeline.analyzer
        backend = self.manager.backend
        schema = self.manager.schema
        for seq, _stream, query in tickets:
            with self._cond:
                while (
                    seq - self._completed > self.lookahead
                    and self._failure is None
                    and not stop.is_set()
                ):
                    self._cond.wait(0.1)
                if stop.is_set() or self._failure is not None:
                    return
            try:
                analyzed = analyzer.analyze(query)
                backend.prefetch(
                    analyzed.groupby,
                    analyzed.partitions,
                    analyzed.aggregates,
                    query.effective_dim_filters(schema),
                )
            except Exception:
                # Prefetch is advisory; real errors surface on the
                # execution path with full accounting.
                return
