"""The lock-striped sharded chunk cache.

:class:`ShardedChunkCache` implements the
:class:`~repro.core.cache.ChunkStore` protocol by striping the key space
over N independent :class:`~repro.core.cache.ChunkCache` shards, each
guarded by its own lock and carrying its own slice of the byte budget
and its own benefit-CLOCK replacement state.  Concurrent serving workers
touching different shards never contend; a single shard behaves exactly
like today's single-threaded cache (``num_shards=1`` is bit-identical to
a plain :class:`~repro.core.cache.ChunkCache` of the same budget).

Routing uses :func:`stable_key_hash`, a CRC-32 over a canonical
rendering of the key — **not** the builtin ``hash()``, whose string
hashing is randomized per process (``PYTHONHASHSEED``) and would make
shard placement, and therefore eviction behaviour, unreproducible.

Locking discipline
------------------
Two lock levels, always acquired in the same order:

1. a **shard lock** (one per shard) serializes all access to that
   shard's ``ChunkCache`` and replacement state;
2. the **accounting lock** guards the global byte counter; mutators
   take it *nested inside* their shard lock to publish the shard's byte
   delta.

:meth:`ShardedChunkCache.check_conservation` — the only multi-shard
critical section — acquires *all* shard locks in ascending index order
and then the accounting lock, matching the mutator order, so the
hierarchy is acyclic and deadlock-free.  Contended shard acquisitions
are counted per shard and credited to the pipeline's blocked clock
(:func:`repro.pipeline.trace.record_blocked_wait`) so lock waits show
up, attributed to the right stage, in execution traces.
"""

from __future__ import annotations

import threading
import time
import zlib
from contextlib import contextmanager
from typing import Callable, Iterator

from repro import invariants
from repro.core.cache import ChunkCache, ChunkCacheStats, EvictHook, FaultHook
from repro.core.chunk import CachedChunk, ChunkKey
from repro.core.replacement import ReplacementPolicy
from repro.exceptions import ServeError
from repro.lockorder import witness
from repro.pipeline.trace import record_blocked_wait

__all__ = ["stable_key_hash", "CacheShard", "ShardedChunkCache"]


def stable_key_hash(key: ChunkKey) -> int:
    """A process-independent hash of a chunk key for shard routing.

    CRC-32 over the canonical textual rendering of the key's components,
    with the (unordered) predicate set sorted first.  Deterministic
    across runs, processes and ``PYTHONHASHSEED`` values — required so
    that shard placement, and everything downstream of it (eviction
    order, per-shard stats), reproduces exactly.
    """
    canonical = repr(
        (
            tuple(key.groupby),
            key.number,
            key.aggregates,
            tuple(sorted(key.fixed_predicates)),
        )
    )
    return zlib.crc32(canonical.encode("utf-8"))


class CacheShard:
    """One lock-striped slice of a sharded cache.

    Pairs a private :class:`~repro.core.cache.ChunkCache` with its lock
    and contention counters.  All access to the wrapped cache must go
    through :meth:`held`.

    A shard can be **quarantined** after a streak of poisoned puts: its
    entries are dropped (bytes published back to the global counter, so
    totals conserve exactly), further puts are rejected, and after a
    fixed number of operations the shard is re-admitted.  All quarantine
    state is guarded by the shard lock.
    """

    def __init__(
        self,
        index: int,
        capacity_bytes: int,
        policy: ReplacementPolicy | str,
    ) -> None:
        self.index = index
        self.cache = ChunkCache(capacity_bytes, policy)
        self.lock = threading.Lock()
        self.lock_wait_seconds = 0.0
        self.lock_acquisitions = 0
        # Quarantine state (shard lock held for all access).
        self.quarantined = False
        self.poison_streak = 0
        self.readmit_countdown = 0
        self.quarantines = 0
        self.readmissions = 0
        self.quarantine_rejects = 0

    @contextmanager
    def held(self) -> Iterator[ChunkCache]:
        """Acquire the shard lock, yielding the guarded cache.

        Contended waits are added to this shard's counters and credited
        to the calling thread's blocked clock, so the enclosing pipeline
        stage's ``lock_wait_seconds`` reflects them.
        """
        start = time.perf_counter()
        self.lock.acquire()
        try:
            waited = time.perf_counter() - start
            self.lock_acquisitions += 1
            self.lock_wait_seconds += waited
            if waited > 0.0:
                record_blocked_wait(waited)
            with witness("shard"):
                yield self.cache
        finally:
            self.lock.release()


class ShardedChunkCache:
    """A thread-safe chunk store striped over independent shards.

    Args:
        capacity_bytes: Total byte budget, split across shards as evenly
            as integer arithmetic allows (the first ``capacity %
            num_shards`` shards get one extra byte); the shard budgets
            always sum to ``capacity_bytes`` exactly.
        policy: Replacement policy *name* (each shard builds its own
            instance) or a zero-argument factory returning a fresh
            policy per shard.  A ready-made policy instance is accepted
            only for ``num_shards=1`` — sharing one policy's mutable
            state across shards would corrupt it.
        num_shards: Number of lock stripes (>= 1).
        quarantine_after: Consecutive poisoned puts on one shard before
            it is quarantined (cleared and closed to writes).
        quarantine_ops: Operations routed at a quarantined shard before
            it is re-admitted.

    With ``num_shards=1`` every operation routes to one full-budget
    :class:`~repro.core.cache.ChunkCache`, making this store
    bit-identical to the unsharded cache — the determinism bridge the
    serving tests pin.  Quarantine only ever triggers off poisoned puts,
    which only an installed fault hook can produce, so fault-free
    operation is untouched by the quarantine machinery.
    """

    def __init__(
        self,
        capacity_bytes: int,
        policy: (
            ReplacementPolicy | str | Callable[[], ReplacementPolicy]
        ) = "benefit",
        num_shards: int = 1,
        quarantine_after: int = 3,
        quarantine_ops: int = 32,
    ) -> None:
        if num_shards < 1:
            raise ServeError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        if isinstance(policy, ReplacementPolicy) and num_shards > 1:
            raise ServeError(
                "a shared policy instance cannot serve multiple shards; "
                "pass a policy name or a factory"
            )
        if quarantine_after < 1 or quarantine_ops < 1:
            raise ServeError(
                "quarantine_after and quarantine_ops must be >= 1, got "
                f"{quarantine_after} and {quarantine_ops}"
            )
        self.num_shards = num_shards
        self.quarantine_after = quarantine_after
        self.quarantine_ops = quarantine_ops
        self._capacity_bytes = capacity_bytes
        base, extra = divmod(capacity_bytes, num_shards)
        self._shards = tuple(
            CacheShard(
                index,
                base + (1 if index < extra else 0),
                policy() if callable(policy) else policy,
            )
            for index in range(num_shards)
        )
        self._accounting_lock = threading.Lock()
        self._used_bytes = 0

    # ------------------------------------------------------------------
    # Routing and accounting internals
    # ------------------------------------------------------------------
    def _shard_for(self, key: ChunkKey) -> CacheShard:
        return self._shards[stable_key_hash(key) % self.num_shards]

    def _publish_delta(self, delta: int) -> None:
        """Apply a shard's byte delta to the global counter.

        Called with the mutating shard's lock held — the accounting lock
        nests inside shard locks, never the reverse.
        """
        if delta == 0:
            return
        with self._accounting_lock, witness("accounting"):
            self._used_bytes += delta

    def _note_op(self, shard: CacheShard) -> None:
        """Advance a quarantined shard toward re-admission (lock held)."""
        if not shard.quarantined:
            return
        shard.readmit_countdown -= 1
        if shard.readmit_countdown <= 0:
            shard.quarantined = False
            shard.poison_streak = 0
            shard.readmissions += 1

    def _quarantine_locked(self, shard: CacheShard, cache: ChunkCache) -> None:
        """Quarantine a shard: drop its entries, close it to writes.

        The shard lock is held.  Dropped bytes are published back to the
        global counter (in a ``finally`` — a mid-clear invariant failure
        must not strand the accounting), so cross-shard conservation
        holds throughout.
        """
        before = cache.used_bytes
        try:
            cache.clear()
        finally:
            self._publish_delta(cache.used_bytes - before)
        shard.quarantined = True
        shard.poison_streak = 0
        shard.readmit_countdown = self.quarantine_ops
        shard.quarantines += 1

    # ------------------------------------------------------------------
    # ChunkStore protocol
    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        """Total byte budget across all shards."""
        return self._capacity_bytes

    @property
    def used_bytes(self) -> int:
        """Bytes currently charged, from the global counter."""
        with self._accounting_lock, witness("accounting"):
            return self._used_bytes

    @property
    def stats(self) -> ChunkCacheStats:
        """Counters summed over all shards (point-in-time)."""
        total = ChunkCacheStats()
        for shard in self._shards:
            with shard.held() as cache:
                total.hits += cache.stats.hits
                total.misses += cache.stats.misses
                total.insertions += cache.stats.insertions
                total.evictions += cache.stats.evictions
                total.rejected += cache.stats.rejected
                total.poisoned += cache.stats.poisoned
                total.pressure_evictions += cache.stats.pressure_evictions
        return total

    def __len__(self) -> int:
        count = 0
        for shard in self._shards:
            with shard.held() as cache:
                count += len(cache)
        return count

    def __contains__(self, key: ChunkKey) -> bool:
        with self._shard_for(key).held() as cache:
            return key in cache

    def get(self, key: ChunkKey) -> CachedChunk | None:
        """Lookup one chunk; hits refresh its shard's replacement state.

        Lookups against a quarantined shard are misses by construction
        (the quarantine dropped its entries), so the resolver chain
        routes around the shard to the backend; each one also advances
        the shard toward re-admission.
        """
        shard = self._shard_for(key)
        with shard.held() as cache:
            self._note_op(shard)
            return cache.get(key)

    def peek(self, key: ChunkKey) -> CachedChunk | None:
        """Entry lookup without touching stats or replacement state."""
        with self._shard_for(key).held() as cache:
            return cache.peek(key)

    def put(self, entry: CachedChunk) -> bool:
        """Insert into the key's shard, evicting there as needed.

        Admission control is per shard: an entry larger than its shard's
        budget is rejected, exactly as the unsharded cache rejects
        entries larger than the whole budget.  A quarantined shard
        rejects every put outright.  A streak of
        ``quarantine_after`` consecutive poisoned puts (an injected
        fault — see :mod:`repro.faults`) quarantines the shard.

        The byte delta is published in a ``finally`` so an exception
        escaping the inner cache (e.g. an injected pressure fault
        tripping an invariant) can never strand the global counter.
        """
        shard = self._shard_for(entry.key)
        with shard.held() as cache:
            self._note_op(shard)
            if shard.quarantined:
                shard.quarantine_rejects += 1
                return False
            before = cache.used_bytes
            poisoned_before = cache.stats.poisoned
            try:
                admitted = cache.put(entry)
            finally:
                self._publish_delta(cache.used_bytes - before)
            if cache.stats.poisoned > poisoned_before:
                shard.poison_streak += 1
                if shard.poison_streak >= self.quarantine_after:
                    self._quarantine_locked(shard, cache)
            elif admitted:
                shard.poison_streak = 0
            return admitted

    def invalidate(self, key: ChunkKey) -> bool:
        """Drop one entry from its shard; False if absent."""
        with self._shard_for(key).held() as cache:
            before = cache.used_bytes
            try:
                removed = cache.invalidate(key)
            finally:
                self._publish_delta(cache.used_bytes - before)
            return removed

    def clear(self) -> None:
        """Drop everything, shard by shard (stats are kept)."""
        for shard in self._shards:
            with shard.held() as cache:
                before = cache.used_bytes
                try:
                    cache.clear()
                finally:
                    self._publish_delta(cache.used_bytes - before)

    def set_fault_hook(self, hook: FaultHook | None) -> None:
        """Install (or remove, with None) the put fault hook shard-wide.

        Each shard's inner cache gets the hook under that shard's lock;
        only :mod:`repro.faults` calls this (reprolint R006).
        """
        for shard in self._shards:
            with shard.held() as cache:
                cache.fault_hook = hook

    def set_evict_hook(self, hook: EvictHook | None) -> None:
        """Install (or remove, with None) the eviction observer shard-wide.

        The tiered cache installs its spill path here.  The hook fires
        with the evicting shard's lock held, so it may take only locks
        that nest inside ``shard`` in the documented order
        (``tiered``/``chunklog``), never another shard's lock.
        """
        for shard in self._shards:
            with shard.held() as cache:
                cache.evict_hook = hook

    def keys(self) -> list[ChunkKey]:
        """All resident chunk keys, in shard order (snapshot)."""
        found: list[ChunkKey] = []
        for shard in self._shards:
            with shard.held() as cache:
                found.extend(cache.keys())
        return found

    def snapshot(self) -> list[tuple[ChunkKey, CachedChunk]]:
        """Point-in-time ``(key, entry)`` pairs, in shard order."""
        pairs: list[tuple[ChunkKey, CachedChunk]] = []
        for shard in self._shards:
            with shard.held() as cache:
                pairs.extend(cache.snapshot())
        return pairs

    def tiers(self) -> dict[str, object]:
        """No tier counters: the striped store is one in-memory tier."""
        return {}

    # ------------------------------------------------------------------
    # Concurrency observability
    # ------------------------------------------------------------------
    def contention(self) -> dict[str, object]:
        """Lock-contention and skew metrics for reports.

        ``hit_skew`` is the ratio of the busiest shard's lookup count to
        the mean across shards (1.0 = perfectly even; meaningful only
        once lookups happened).
        """
        per_shard: list[dict[str, object]] = []
        lookups: list[int] = []
        for shard in self._shards:
            with shard.held() as cache:
                stats = cache.stats
                lookups.append(stats.lookups)
                per_shard.append(
                    {
                        "shard": shard.index,
                        "capacity_bytes": cache.capacity_bytes,
                        "used_bytes": cache.used_bytes,
                        "entries": len(cache),
                        "hits": stats.hits,
                        "misses": stats.misses,
                        "evictions": stats.evictions,
                        "lock_wait_seconds": shard.lock_wait_seconds,
                        "lock_acquisitions": shard.lock_acquisitions,
                        "quarantined": shard.quarantined,
                        "quarantines": shard.quarantines,
                        "readmissions": shard.readmissions,
                        "quarantine_rejects": shard.quarantine_rejects,
                    }
                )
        total_lookups = sum(lookups)
        skew = 0.0
        if total_lookups:
            mean = total_lookups / self.num_shards
            skew = max(lookups) / mean
        return {
            "num_shards": self.num_shards,
            "lock_wait_seconds": sum(
                shard.lock_wait_seconds for shard in self._shards
            ),
            "lock_acquisitions": sum(
                shard.lock_acquisitions for shard in self._shards
            ),
            "hit_skew": skew,
            "quarantines": sum(
                shard.quarantines for shard in self._shards
            ),
            "readmissions": sum(
                shard.readmissions for shard in self._shards
            ),
            "quarantine_rejects": sum(
                shard.quarantine_rejects for shard in self._shards
            ),
            "per_shard": per_shard,
        }

    # ------------------------------------------------------------------
    # Cross-shard conservation
    # ------------------------------------------------------------------
    def check_conservation(self) -> None:
        """Verify shard-local and global byte conservation atomically.

        Takes every shard lock in ascending index order, then the
        accounting lock (the same order mutators use, so this cannot
        deadlock against them), and checks each shard's accounting
        (per-entry in deep mode) plus the cross-shard sum against the
        global counter.  Raises
        :class:`~repro.exceptions.InvariantViolation` on any mismatch.
        """
        acquired = 0
        try:
            for shard in self._shards:
                shard.lock.acquire()
                acquired += 1
            with self._accounting_lock, witness("accounting"):
                for shard in self._shards:
                    cache = shard.cache
                    invariants.check_cache_accounting(
                        cache.used_bytes,
                        cache.capacity_bytes,
                        (
                            [entry for _, entry in cache.snapshot()]
                            if invariants.deep()
                            else None
                        ),
                        owner=f"cache shard {shard.index}",
                    )
                invariants.check_shard_accounting(
                    [s.cache.used_bytes for s in self._shards],
                    [s.cache.capacity_bytes for s in self._shards],
                    self._used_bytes,
                    self._capacity_bytes,
                )
        finally:
            for shard in reversed(self._shards[:acquired]):
                shard.lock.release()
