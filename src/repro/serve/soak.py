"""The concurrency soak harness.

:func:`run_soak` hammers one shared
:class:`~repro.core.manager.ChunkCacheManager` (whose store must be a
:class:`~repro.serve.ShardedChunkCache`) with racing multi-user streams
under the **free** schedule and ``REPRO_INVARIANTS=deep``, and verifies
the properties that must hold under *any* thread interleaving:

- no :class:`~repro.exceptions.InvariantViolation` anywhere — every
  cache mutation re-checks byte/benefit conservation shard-locally, and
  a periodic checkpoint (every ``checkpoint_every`` completed queries)
  plus a final pass run the cross-shard conservation check
  (:meth:`~repro.serve.ShardedChunkCache.check_conservation`);
- **global I/O conservation**: the sum of ``pages_read`` over every
  worker's accounting records equals the backend disk's read-counter
  delta exactly.  The backend's big lock makes every
  :func:`~repro.backend.plans.measure_cost` window disjoint, so this
  equality is exact, not approximate — any cross-thread leakage of
  I/O accounting breaks it.

The harness composes over a manager and streams built by the caller
(the experiments layer or a test): the serving layer itself never
builds systems or workloads, keeping it importable from anywhere above
the pipeline (R001).
"""

from __future__ import annotations

from contextlib import AbstractContextManager
from dataclasses import dataclass
from hashlib import sha256
from typing import Any, Callable, Protocol, Sequence

import numpy as np

from repro import invariants
from repro.core.manager import ChunkCacheManager
from repro.exceptions import InjectedFault, ServeError
from repro.query.model import StarQuery
from repro.serve.proc import ProcServeSession
from repro.serve.session import (
    FAIR,
    FREE,
    PROCESSES,
    THREADS,
    QueryFailure,
    ServeReport,
    ServeSession,
)
from repro.workload.stream import QueryStream

__all__ = [
    "SoakConfig",
    "SoakReport",
    "run_soak",
    "ChaosConfig",
    "ChaosReport",
    "FaultSource",
    "run_chaos_soak",
]


@dataclass(frozen=True)
class SoakConfig:
    """Tuning knobs of one soak run.

    Attributes:
        checkpoint_every: Queries between cross-shard conservation
            checkpoints (0 disables mid-run checkpoints; the final check
            always runs).
        max_workers: Worker threads (default: one per stream).
        timeout_seconds: Hard deadline — a deadlocked worker becomes a
            :class:`~repro.exceptions.ServeError`, never a hung test.
        exec_mode: ``"threads"`` (default) or ``"processes"`` — the
            latter requires the manager's backend to be a
            :class:`~repro.serve.proc.ProcessComputeEngine` (built via
            ``StackConfig(exec_mode="processes")``) and runs the session
            with the lookahead dispatcher.
    """

    checkpoint_every: int = 100
    max_workers: int | None = None
    timeout_seconds: float = 300.0
    exec_mode: str = THREADS


@dataclass(frozen=True)
class SoakReport:
    """Everything a soak run verified.

    Attributes:
        queries: Queries executed across all streams.
        checkpoints: Mid-run conservation checkpoints that fired.
        pages_read: Sum of per-record backend pages over all workers.
        disk_read_delta: The backend disk's read-counter delta over the
            run (equals ``pages_read`` — asserted).
        deep_checks: Deep invariant checks executed during the run.
        serve: The underlying session report (contention, throughput).
    """

    queries: int
    checkpoints: int
    pages_read: int
    disk_read_delta: int
    deep_checks: int
    serve: ServeReport


def _session_class(exec_mode: str) -> type[ServeSession]:
    """The session class for an execution mode (validated)."""
    if exec_mode == THREADS:
        return ServeSession
    if exec_mode == PROCESSES:
        return ProcServeSession
    raise ServeError(
        f"unknown exec_mode {exec_mode!r}; "
        f"expected {THREADS!r} or {PROCESSES!r}"
    )


def run_soak(
    manager: ChunkCacheManager,
    streams: Sequence[QueryStream],
    config: SoakConfig = SoakConfig(),
) -> SoakReport:
    """Race the streams against the manager and verify conservation.

    Forces deep invariant checking for the duration of the run (the
    previous mode is restored afterwards) and the free schedule — the
    point is genuine races, not reproducible interleavings.

    Raises:
        ServeError: If the manager's store has no cross-shard
            conservation check (i.e. is not sharded), or on deadline.
        InvariantViolation: On any conservation failure, shard-local,
            cross-shard, or global.
    """
    conserve = getattr(manager.cache, "check_conservation", None)
    if not callable(conserve):
        raise ServeError(
            "soak testing requires a sharded store with a "
            "check_conservation() method; got "
            f"{type(manager.cache).__name__}"
        )
    previous_mode = invariants.set_mode(invariants.DEEP)
    checks_before = invariants.counters()["deep"]
    try:
        session = _session_class(config.exec_mode)(
            manager,
            streams,
            max_workers=config.max_workers,
            schedule=FREE,
            checkpoint_every=config.checkpoint_every,
            on_checkpoint=lambda _count: conserve(),
            timeout_seconds=config.timeout_seconds,
        )
        disk = manager.backend.disk
        reads_before = disk.stats.reads
        report = session.run()
        conserve()
        delta = disk.stats.reads - reads_before
        pages = report.metrics.total_pages_read()
        invariants.require(
            pages == delta,
            f"global I/O conservation broken: records sum to {pages} "
            f"pages read but the disk counter advanced by {delta} "
            "(a cost window leaked across threads)",
        )
        deep_checks = invariants.counters()["deep"] - checks_before
    finally:
        invariants.set_mode(previous_mode)
    return SoakReport(
        queries=report.queries,
        checkpoints=report.checkpoints,
        pages_read=pages,
        disk_read_delta=delta,
        deep_checks=deep_checks,
        serve=report,
    )


# ----------------------------------------------------------------------
# Chaos soak: the fault-injection variant
# ----------------------------------------------------------------------
class FaultSource(Protocol):
    """What the chaos harness needs from a fault injector.

    Structural so the serving layer never imports :mod:`repro.faults`
    (reprolint rule R006): the composition root — a test or the
    experiments layer — constructs the
    :class:`~repro.faults.FaultInjector` and hands it in duck-typed.
    """

    def activate(
        self, manager: Any
    ) -> AbstractContextManager[Any]: ...

    def counters(self) -> dict[str, int]: ...


@dataclass(frozen=True)
class ChaosConfig:
    """Tuning knobs of one chaos-soak run.

    Attributes:
        checkpoint_every: Queries between cross-shard conservation
            checkpoints (0 disables mid-run checkpoints; the final check
            always runs).
        max_workers: Worker threads (default: one per stream).
        timeout_seconds: Hard deadline for the serving session.
        schedule: ``"fair"`` (the default) serializes execution into the
            canonical order, which is what makes the run digest
            reproducible and worker-count-independent; ``"free"`` races
            for real and still checks every conservation property, but
            its digest is interleaving-dependent.
        exec_mode: ``"threads"`` (default) or ``"processes"`` — see
            :class:`SoakConfig`.  Under the fair schedule the chaos
            digest is bit-identical across both modes and any worker
            count.
    """

    checkpoint_every: int = 100
    max_workers: int | None = None
    timeout_seconds: float = 300.0
    schedule: str = FAIR
    exec_mode: str = THREADS


@dataclass(frozen=True)
class ChaosReport:
    """Everything one chaos-soak run verified.

    Attributes:
        queries: Queries answered successfully.
        failures: Queries that failed with a tolerated
            :class:`~repro.exceptions.InjectedFault` (never a wrong
            answer — asserted via oracle replay when an oracle is
            given).
        checkpoints: Mid-run conservation checkpoints that fired.
        pages_read: Backend pages consumed by *answered* queries
            (including pages wasted by retried and degraded attempts —
            those merge into the answer's accounting).
        failed_pages: Backend pages consumed by queries that ultimately
            failed (carried on the raised fault's cost report).
        disk_read_delta: The disk read-counter delta over the run.
            Equals ``pages_read + failed_pages`` exactly — asserted.
        deep_checks: Deep invariant checks executed during the run.
        fault_counters: Injected-fault counts by kind, from the
            injector.
        wrong_answers: Answers that disagreed with the fault-free
            oracle (0 — asserted — whenever an oracle was supplied).
        digest: SHA-256 over the run's deterministic outcome (records,
            failures, fault counters, traces, final cache occupancy).
            Under the fair schedule two runs from cold state with the
            same plan and workload produce the same digest for any
            worker count.
        serve: The underlying session report.
    """

    queries: int
    failures: int
    checkpoints: int
    pages_read: int
    failed_pages: int
    disk_read_delta: int
    deep_checks: int
    fault_counters: dict[str, int]
    wrong_answers: int
    digest: str
    serve: ServeReport


def _canonical_rows(rows: Any) -> tuple[tuple[Any, ...], ...]:
    """Order- and representation-insensitive form of a result array.

    Group-by result rows carry no meaningful order and the degraded
    path recomputes aggregates from base chunks, which may reassociate
    float additions — so values are compared rounded, not bit-exact.
    """
    out: list[tuple[Any, ...]] = []
    for row in rows:
        values: list[Any] = []
        for value in tuple(row):
            if isinstance(value, (float, np.floating)):
                values.append(round(float(value), 6))
            elif isinstance(value, (int, np.integer)):
                values.append(int(value))
            else:
                values.append(value)
        out.append(tuple(values))
    return tuple(sorted(out, key=repr))


def _chaos_digest(
    serve: ServeReport,
    fault_counters: dict[str, int],
    cache_bytes: int,
    cache_entries: int,
) -> str:
    """Hash the deterministic outcome of a chaos run.

    Includes only values that are a pure function of (plan seed,
    workload, configuration) under the fair schedule: accounting
    records, failures, fault counters, per-stage trace projections and
    final cache occupancy.  Wall-clock fields never enter the digest.
    """
    parts: list[str] = []
    for record in serve.metrics.records:
        parts.append(repr(record))
    for failure in serve.failures:
        parts.append(
            f"failure:{failure.seq}:{failure.stream}:"
            f"{failure.kind}:{failure.pages_read}"
        )
    for name, count in sorted(fault_counters.items()):
        parts.append(f"fault:{name}:{count}")
    for trace in serve.metrics.traces:
        parts.append(
            f"trace:{sorted(trace.resolved_by.items())!r}:"
            f"{trace.partitions_total}:{trace.backend_pages}"
        )
        for stage in trace.stages:
            parts.append(
                f"stage:{stage.name}:{stage.partitions}:"
                f"{stage.pages_read}:{stage.tuples_scanned}:"
                f"{stage.faults}:{stage.retries}:{stage.degraded}:"
                f"{stage.backoff_seconds!r}"
            )
    parts.append(f"cache:{cache_bytes}:{cache_entries}")
    return sha256("\n".join(parts).encode()).hexdigest()


def _failed_pages(failures: Sequence[QueryFailure]) -> int:
    return sum(failure.pages_read for failure in failures)


def run_chaos_soak(
    manager: ChunkCacheManager,
    streams: Sequence[QueryStream],
    injector: FaultSource,
    config: ChaosConfig = ChaosConfig(),
    oracle: Callable[[StarQuery], Any] | None = None,
) -> ChaosReport:
    """Soak the manager under an active fault plan and verify recovery.

    Runs the streams with the injector's hooks installed and
    :class:`~repro.exceptions.InjectedFault` tolerated per query, under
    ``REPRO_INVARIANTS=deep``, and asserts the degradation contract:

    - **correct or typed** — every query either answers or fails with a
      typed :class:`~repro.exceptions.InjectedFault`; when ``oracle`` is
      given, every answer is replayed fault-free after the run and must
      match (canonicalized rows), so a wrong answer is impossible, not
      just unobserved;
    - **exact conservation** — byte/benefit accounting checkpoints plus
      ``pages_read + failed_pages == disk read delta`` exactly: wasted
      I/O from retries, degraded recomputes and failed attempts is all
      accounted, never leaked;
    - **reproducibility** — under the fair schedule the report's
      ``digest`` is a pure function of (plan seed, workload, config).

    The oracle replay runs *after* the injector deactivates and
    *outside* the disk-read bracket, so it neither trips faults nor
    perturbs the conservation equality.

    Raises:
        ServeError: If the store has no cross-shard conservation check,
            or on deadline.
        InvariantViolation: On any conservation failure or any wrong
            answer.
    """
    conserve = getattr(manager.cache, "check_conservation", None)
    if not callable(conserve):
        raise ServeError(
            "chaos soak testing requires a sharded store with a "
            "check_conservation() method; got "
            f"{type(manager.cache).__name__}"
        )
    answers: dict[int, tuple[StarQuery, Any]] = {}

    def capture(
        seq: int, stream: str, query: StarQuery, rows: Any
    ) -> None:
        if oracle is not None:
            answers[seq] = (query, rows)

    previous_mode = invariants.set_mode(invariants.DEEP)
    checks_before = invariants.counters()["deep"]
    try:
        session = _session_class(config.exec_mode)(
            manager,
            streams,
            max_workers=config.max_workers,
            schedule=config.schedule,
            checkpoint_every=config.checkpoint_every,
            on_checkpoint=lambda _count: conserve(),
            timeout_seconds=config.timeout_seconds,
            tolerate=(InjectedFault,),
            on_answer=capture,
        )
        disk = manager.backend.disk
        reads_before = disk.stats.reads
        with injector.activate(manager):
            report = session.run()
            conserve()
            delta = disk.stats.reads - reads_before
        pages = report.metrics.total_pages_read()
        failed = _failed_pages(report.failures)
        invariants.require(
            pages + failed == delta,
            "chaos I/O conservation broken: answered queries account "
            f"for {pages} pages and failed queries for {failed}, but "
            f"the disk counter advanced by {delta} (wasted I/O leaked)",
        )
        deep_checks = invariants.counters()["deep"] - checks_before
    finally:
        invariants.set_mode(previous_mode)

    # Oracle replay: fault-free recomputation of every answered query,
    # after the hooks are gone and outside the disk bracket above.
    wrong = 0
    if oracle is not None:
        for seq in sorted(answers):
            query, rows = answers[seq]
            if _canonical_rows(oracle(query)) != _canonical_rows(rows):
                wrong += 1
        invariants.require(
            wrong == 0,
            f"{wrong} answers under fault injection disagreed with the "
            "fault-free oracle — degradation must never change results",
        )

    cache = manager.cache
    digest = _chaos_digest(
        report,
        injector.counters(),
        int(cache.used_bytes),
        len(cache),
    )
    return ChaosReport(
        queries=report.queries,
        failures=len(report.failures),
        checkpoints=report.checkpoints,
        pages_read=pages,
        failed_pages=failed,
        disk_read_delta=delta,
        deep_checks=deep_checks,
        fault_counters=injector.counters(),
        wrong_answers=wrong,
        digest=digest,
        serve=report,
    )
