"""The concurrency soak harness.

:func:`run_soak` hammers one shared
:class:`~repro.core.manager.ChunkCacheManager` (whose store must be a
:class:`~repro.serve.ShardedChunkCache`) with racing multi-user streams
under the **free** schedule and ``REPRO_INVARIANTS=deep``, and verifies
the properties that must hold under *any* thread interleaving:

- no :class:`~repro.exceptions.InvariantViolation` anywhere — every
  cache mutation re-checks byte/benefit conservation shard-locally, and
  a periodic checkpoint (every ``checkpoint_every`` completed queries)
  plus a final pass run the cross-shard conservation check
  (:meth:`~repro.serve.ShardedChunkCache.check_conservation`);
- **global I/O conservation**: the sum of ``pages_read`` over every
  worker's accounting records equals the backend disk's read-counter
  delta exactly.  The backend's big lock makes every
  :func:`~repro.backend.plans.measure_cost` window disjoint, so this
  equality is exact, not approximate — any cross-thread leakage of
  I/O accounting breaks it.

The harness composes over a manager and streams built by the caller
(the experiments layer or a test): the serving layer itself never
builds systems or workloads, keeping it importable from anywhere above
the pipeline (R001).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro import invariants
from repro.core.manager import ChunkCacheManager
from repro.exceptions import ServeError
from repro.serve.session import FREE, ServeReport, ServeSession
from repro.workload.stream import QueryStream

__all__ = ["SoakConfig", "SoakReport", "run_soak"]


@dataclass(frozen=True)
class SoakConfig:
    """Tuning knobs of one soak run.

    Attributes:
        checkpoint_every: Queries between cross-shard conservation
            checkpoints (0 disables mid-run checkpoints; the final check
            always runs).
        max_workers: Worker threads (default: one per stream).
        timeout_seconds: Hard deadline — a deadlocked worker becomes a
            :class:`~repro.exceptions.ServeError`, never a hung test.
    """

    checkpoint_every: int = 100
    max_workers: int | None = None
    timeout_seconds: float = 300.0


@dataclass(frozen=True)
class SoakReport:
    """Everything a soak run verified.

    Attributes:
        queries: Queries executed across all streams.
        checkpoints: Mid-run conservation checkpoints that fired.
        pages_read: Sum of per-record backend pages over all workers.
        disk_read_delta: The backend disk's read-counter delta over the
            run (equals ``pages_read`` — asserted).
        deep_checks: Deep invariant checks executed during the run.
        serve: The underlying session report (contention, throughput).
    """

    queries: int
    checkpoints: int
    pages_read: int
    disk_read_delta: int
    deep_checks: int
    serve: ServeReport


def run_soak(
    manager: ChunkCacheManager,
    streams: Sequence[QueryStream],
    config: SoakConfig = SoakConfig(),
) -> SoakReport:
    """Race the streams against the manager and verify conservation.

    Forces deep invariant checking for the duration of the run (the
    previous mode is restored afterwards) and the free schedule — the
    point is genuine races, not reproducible interleavings.

    Raises:
        ServeError: If the manager's store has no cross-shard
            conservation check (i.e. is not sharded), or on deadline.
        InvariantViolation: On any conservation failure, shard-local,
            cross-shard, or global.
    """
    conserve = getattr(manager.cache, "check_conservation", None)
    if not callable(conserve):
        raise ServeError(
            "soak testing requires a sharded store with a "
            "check_conservation() method; got "
            f"{type(manager.cache).__name__}"
        )
    previous_mode = invariants.set_mode(invariants.DEEP)
    checks_before = invariants.counters()["deep"]
    try:
        session = ServeSession(
            manager,
            streams,
            max_workers=config.max_workers,
            schedule=FREE,
            checkpoint_every=config.checkpoint_every,
            on_checkpoint=lambda _count: conserve(),
            timeout_seconds=config.timeout_seconds,
        )
        disk = manager.backend.disk
        reads_before = disk.stats.reads
        report = session.run()
        conserve()
        delta = disk.stats.reads - reads_before
        pages = report.metrics.total_pages_read()
        invariants.require(
            pages == delta,
            f"global I/O conservation broken: records sum to {pages} "
            f"pages read but the disk counter advanced by {delta} "
            "(a cost window leaked across threads)",
        )
        deep_checks = invariants.counters()["deep"] - checks_before
    finally:
        invariants.set_mode(previous_mode)
    return SoakReport(
        queries=report.queries,
        checkpoints=report.checkpoints,
        pages_read=pages,
        disk_read_delta=delta,
        deep_checks=deep_checks,
        serve=report,
    )
