"""Figure 13 — replacement policies (EQPR stream, chunk caching).

Compares plain CLOCK (the paper's "simple LRU", which it approximates by
CLOCK because the chunk population is large) against the benefit-weighted
CLOCK of Section 5.4, plus exact LRU as an extra reference point.  The
paper's shape: the benefit-aware policy clearly beats simple LRU, because
highly aggregated chunks are expensive to recompute and deserve to stay.
"""

from __future__ import annotations

from repro.experiments.configs import DEFAULT_SCALE, Scale
from repro.experiments.harness import (
    get_system,
    make_chunk_manager,
    make_mix_stream,
    run_stream,
)
from repro.experiments.reporting import ExperimentResult
from repro.workload.generator import EQPR

__all__ = ["run", "POLICIES"]

#: Policies compared; "clock" is the paper's CLOCK-approximated LRU.
POLICIES = ("clock", "lru", "benefit")


def run(
    scale: Scale = DEFAULT_SCALE, cache_fraction: float = 0.05
) -> ExperimentResult:
    """Reproduce Figure 13 at the given scale.

    Args:
        scale: Experiment scale.
        cache_fraction: Cache budget as a fraction of the cube — kept
            tighter than the headline 0.1 so replacement actually churns
            (the policies are indistinguishable while nothing is evicted).
    """
    system = get_system(scale)
    stream = make_mix_stream(system, EQPR)
    cache_bytes = int(system.cube_bytes * cache_fraction)
    result = ExperimentResult(
        experiment_id="fig13",
        title="Figure 13: Replacement Policies (EQPR, chunk caching)",
        columns=[
            "policy", "csr", "mean_time_last", "chunk_hit_ratio",
            "evictions",
        ],
        expectation="benefit-weighted CLOCK beats simple LRU/CLOCK",
        notes=f"cache = {cache_fraction} of cube ({cache_bytes} bytes)",
    )
    for policy in POLICIES:
        manager = make_chunk_manager(
            system, cache_bytes=cache_bytes, policy=policy
        )
        metrics = run_stream(manager, stream)
        result.add(
            policy=policy,
            csr=metrics.cost_saving_ratio(),
            mean_time_last=metrics.mean_time_last(scale.tail_queries),
            chunk_hit_ratio=metrics.chunk_hit_ratio(),
            evictions=manager.cache.stats.evictions,
        )
    return result


if __name__ == "__main__":
    print(run().render())
