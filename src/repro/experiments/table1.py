"""Table 1 — distinct values of dimensions.

Renders the dimension hierarchy shape actually built by
:func:`repro.experiments.configs.build_paper_schema` so it can be checked
against the paper's Table 1 row for row.
"""

from __future__ import annotations

from repro.experiments.configs import (
    TABLE1_CARDINALITIES,
    build_paper_schema,
)
from repro.experiments.reporting import ExperimentResult

__all__ = ["run"]


def run() -> ExperimentResult:
    """Reproduce Table 1 from the built schema (not from the constants)."""
    schema = build_paper_schema()
    max_levels = max(dim.num_levels for dim in schema.dimensions)
    result = ExperimentResult(
        experiment_id="table1",
        title="Table 1: Distinct Values of Dimensions",
        columns=["Level"] + [dim.name for dim in schema.dimensions],
        expectation=(
            "levels 1..3 with cardinalities (25,50,100), (25,50), "
            "(5,25,50), (10,50)"
        ),
    )
    for level in range(1, max_levels + 1):
        row: dict[str, object] = {"Level": level}
        for dim in schema.dimensions:
            if level <= dim.num_levels:
                row[dim.name] = dim.cardinality(level)
            else:
                row[dim.name] = "-"
        result.add(**row)
    # Cross-check the built schema against the paper constants.
    for dim, expected in zip(schema.dimensions, TABLE1_CARDINALITIES):
        actual = tuple(
            dim.cardinality(level) for level in range(1, dim.num_levels + 1)
        )
        if actual != expected:
            result.notes = f"MISMATCH: {dim.name} has {actual}, paper {expected}"
            break
    else:
        result.notes = "matches the paper exactly"
    return result


if __name__ == "__main__":
    print(run().render())
