"""Front-door jobs — the admission/coalescing nightly entry points.

Like :mod:`repro.experiments.soakjob`, this module is a **composition
root**: it builds the system, a duplicate-heavy multi-user workload,
the shared (sharded) chunk store and — for chaos runs — the
:class:`~repro.faults.FaultPlan` / :class:`~repro.faults.FaultInjector`
pair, then hands everything to :func:`repro.serve.run_front`.  Under
reprolint rule R006 it may import :mod:`repro.faults`; under R007 it
composes the stack through :mod:`repro.api`.

The workload is deliberately duplicate-heavy: users arrive in *pairs*
that issue identical query sequences, so concurrent admission windows
are full of identical missing chunks — exactly the shape single-flight
coalescing exists for.  ``run_front_job`` runs the same workload twice
(coalescing off, then on) and reports the physical page saving.

Both jobs return plain JSON-able dictionaries so the CLI (``python -m
repro front``) and the nightly workflow can archive the outcome.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable

from repro.api import StackConfig, build_cache
from repro.experiments.configs import DEFAULT_SCALE, Scale
from repro.experiments.harness import System, get_system, make_chunk_manager
from repro.faults import (
    FaultInjector,
    FaultPlan,
    standard_specs,
    tiered_specs,
)
from repro.query.model import StarQuery
from repro.serve import (
    PROCESSES,
    THREADS,
    FrontConfig,
    FrontReport,
    run_front,
)
from repro.workload.generator import Q80, QueryGenerator
from repro.workload.stream import QueryStream

__all__ = ["duplicate_streams", "run_front_job", "run_front_chaos_job"]

NUM_SHARDS = 8
NUM_USERS = 8


def duplicate_streams(
    system: System, num_users: int = NUM_USERS,
    per_user: int | None = None,
) -> list[QueryStream]:
    """K user streams where users arrive in pairs asking the same thing.

    All users share one hot region (same constructor seed, as in
    :func:`repro.experiments.multiuser.user_streams`); additionally,
    users ``2k`` and ``2k+1`` jump their RNGs to the *same* sequence,
    so each pair issues identical queries.  Interleaved admission then
    fills every window with duplicate chunk requests — the
    coalescing-friendly worst case for an uncoalesced front door.
    """
    scale = system.scale
    if per_user is None:
        per_user = max(20, scale.num_queries // num_users)
    streams = []
    for user in range(num_users):
        generator = QueryGenerator(system.schema, seed=scale.seed)
        # Pairs share a sequence seed: user//2 collapses 0,1 -> 0 etc.
        generator.rng.seed(scale.seed * 1000 + user // 2)
        streams.append(
            QueryStream(
                name=f"user{user}",
                queries=tuple(generator.stream(per_user, Q80)),
            )
        )
    return streams


def _build_manager(
    system: System,
    num_shards: int,
    exec_mode: str = THREADS,
    cache_tiers: int = 1,
    persist_path: str | None = None,
    l2_backend: str = "chunklog",
    l2_budget_bytes: int | None = None,
    compact_threshold: float | None = None,
) -> Any:
    cache = build_cache(
        StackConfig(
            cache_bytes=system.cache_bytes,
            num_shards=num_shards,
            cache_tiers=cache_tiers,
            persist_path=persist_path,
            l2_backend=l2_backend,
            l2_budget_bytes=l2_budget_bytes,
            compact_threshold=compact_threshold,
        )
    )
    return make_chunk_manager(system, cache=cache, exec_mode=exec_mode)


def _close_manager(manager: Any, exec_mode: str) -> None:
    if exec_mode == PROCESSES:
        manager.backend.close()
    cache_close = getattr(manager.cache, "close", None)
    if cache_close is not None:
        cache_close()


def _add_tier_summary(
    summary: dict[str, Any], manager: Any, cache_tiers: int
) -> None:
    """Attach per-tier counters — 2-tier runs only, so the 1-tier
    summary JSON stays byte-identical to the pre-tiering jobs."""
    if cache_tiers == 2:
        summary["cache_tiers"] = cache_tiers
        summary["tiers"] = manager.cache.tiers()


def run_front_job(
    scale: Scale = DEFAULT_SCALE,
    num_users: int = NUM_USERS,
    per_user: int | None = None,
    num_shards: int = NUM_SHARDS,
    config: FrontConfig = FrontConfig(),
    exec_mode: str = THREADS,
    cache_tiers: int = 1,
    persist_path: str | None = None,
    l2_backend: str = "chunklog",
    l2_budget_bytes: int | None = None,
    compact_threshold: float | None = None,
) -> dict[str, Any]:
    """Run the fault-free front door and quantify coalescing's saving.

    Runs the duplicate-heavy workload twice over identically built
    stacks — first with coalescing disabled (every duplicate chunk
    physically refetched), then with the configured front door — and
    reports both page totals.  The coalesced run must read strictly
    fewer backend pages; ``pages_saved`` is the difference.
    ``exec_mode="processes"`` runs both arms over a process-parallel
    backend (identical digests by the determinism contract).
    """
    system = get_system(scale)
    streams = duplicate_streams(
        system, num_users=num_users, per_user=per_user
    )
    manager = _build_manager(
        system,
        num_shards,
        exec_mode,
        cache_tiers,
        l2_backend=l2_backend,
        l2_budget_bytes=l2_budget_bytes,
        compact_threshold=compact_threshold,
    )
    try:
        baseline = run_front(
            manager, streams, replace(config, coalesce=False)
        )
    finally:
        _close_manager(manager, exec_mode)
    manager = _build_manager(
        system,
        num_shards,
        exec_mode,
        cache_tiers,
        persist_path,
        l2_backend=l2_backend,
        l2_budget_bytes=l2_budget_bytes,
        compact_threshold=compact_threshold,
    )
    try:
        report = run_front(manager, streams, config)
    finally:
        _close_manager(manager, exec_mode)
    summary = {
        "job": "front",
        "scale_tuples": scale.num_tuples,
        "num_users": num_users,
        "per_user": len(streams[0]),
        "num_shards": num_shards,
        "exec_mode": exec_mode,
        "baseline_pages_read": baseline.pages_read,
        "pages_saved": baseline.pages_read - report.pages_read,
        **_front_summary(report),
    }
    _add_tier_summary(summary, manager, cache_tiers)
    return summary


def run_front_chaos_job(
    scale: Scale = DEFAULT_SCALE,
    rate: str = "mid",
    seed: int = 20260807,
    num_users: int = NUM_USERS,
    per_user: int | None = None,
    num_shards: int = NUM_SHARDS,
    config: FrontConfig = FrontConfig(),
    with_oracle: bool = True,
    exec_mode: str = THREADS,
    cache_tiers: int = 1,
    persist_path: str | None = None,
    l2_backend: str = "chunklog",
    l2_budget_bytes: int | None = None,
    compact_threshold: float | None = None,
) -> dict[str, Any]:
    """Run the front door under a standard fault plan and summarize it.

    The chaos contract extends to coalesced flights: when a leader's
    fetch faults, every waiter of that flight receives the *same*
    typed failure (pages charged once, to the leader), conservation
    stays exact, and — with the oracle — every answered query replays
    fault-free to the same rows.

    Args:
        scale: System/workload scale.
        rate: Fault-plan preset (``"low"``, ``"mid"``, ``"high"``).
        seed: The fault plan's seed — same seed, workload and config
            reproduce the same digest.
        num_users: Concurrent user streams (paired duplicates).
        per_user: Queries per stream (default: scale-derived).
        num_shards: Cache shards.
        config: Front-door knobs (window, queue limit, workers).
        with_oracle: Replay every answered query fault-free afterwards.
    """
    system = get_system(scale)
    streams = duplicate_streams(
        system, num_users=num_users, per_user=per_user
    )
    oracle: Callable[[StarQuery], Any] | None = None
    if with_oracle:
        oracle_manager = make_chunk_manager(system)

        def _replay(query: StarQuery) -> Any:
            return oracle_manager.pipeline.execute(query).rows

        oracle = _replay

    manager = _build_manager(
        system,
        num_shards,
        exec_mode,
        cache_tiers,
        persist_path,
        l2_backend=l2_backend,
        l2_budget_bytes=l2_budget_bytes,
        compact_threshold=compact_threshold,
    )
    specs = tiered_specs(rate) if cache_tiers == 2 else standard_specs(rate)
    plan = FaultPlan(seed=seed, specs=specs)
    injector = FaultInjector(plan)
    try:
        report = run_front(
            manager, streams, config, injector=injector, oracle=oracle
        )
    finally:
        _close_manager(manager, exec_mode)
    summary = {
        "job": "front-chaos",
        "scale_tuples": scale.num_tuples,
        "rate": rate,
        "seed": seed,
        "num_users": num_users,
        "per_user": len(streams[0]),
        "num_shards": num_shards,
        "exec_mode": exec_mode,
        "oracle_replayed": with_oracle,
        **_front_summary(report),
    }
    _add_tier_summary(summary, manager, cache_tiers)
    return summary


def _front_summary(report: FrontReport) -> dict[str, Any]:
    return {
        "queries": report.queries,
        "failures": len(report.failures),
        "shed": len(report.shed),
        "window_size": report.window_size,
        "queue_limit": report.queue_limit,
        "max_workers": report.max_workers,
        "coalesce": report.coalesce,
        "flights": report.flights,
        "coalesced_chunks": report.coalesced_chunks,
        "shared_pages": report.shared_pages,
        "pages_read": report.pages_read,
        "failed_pages": report.failed_pages,
        "disk_read_delta": report.disk_read_delta,
        "deep_checks": report.deep_checks,
        "checkpoints": report.checkpoints,
        "fault_counters": dict(report.fault_counters),
        "wrong_answers": report.wrong_answers,
        "csr": report.metrics.cost_saving_ratio(),
        "digest": report.digest,
    }
