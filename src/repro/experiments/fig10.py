"""Figure 10 — chunk vs query caching as hot-region locality increases.

Streams Q60, Q80 and Q100 send 60 %, 80 % and 100 % of their queries into
a region holding 20 % of the cube.  The paper's shape: chunk caching wins
at every locality percentage and the ratio grows with locality, because
the chunk scheme both avoids redundant storage and reuses partial
overlaps.
"""

from __future__ import annotations

from repro.experiments.configs import DEFAULT_SCALE, Scale
from repro.experiments.harness import (
    get_system,
    make_chunk_manager,
    make_mix_stream,
    make_query_manager,
    run_stream,
)
from repro.experiments.reporting import ExperimentResult
from repro.workload.generator import Q60, Q80, Q100

__all__ = ["run"]

MIXES = (Q60, Q80, Q100)


def run(scale: Scale = DEFAULT_SCALE) -> ExperimentResult:
    """Reproduce Figure 10 at the given scale."""
    system = get_system(scale)
    result = ExperimentResult(
        experiment_id="fig10",
        title="Figure 10: Percentage of Locality (hot region)",
        columns=[
            "stream", "scheme", "mean_time_last", "csr",
            "chunk_hit_ratio", "pages_read",
        ],
        expectation=(
            "chunk caching beats query caching at 60/80/100% locality; "
            "both schemes improve with locality, chunk more steeply"
        ),
        notes=f"hot region = 20% of the cube; {scale.num_queries} queries",
    )
    for mix in MIXES:
        stream = make_mix_stream(system, mix)
        for scheme, manager in (
            ("chunk", make_chunk_manager(system)),
            ("query", make_query_manager(system)),
        ):
            metrics = run_stream(manager, stream)
            result.add(
                stream=mix.name,
                scheme=scheme,
                mean_time_last=metrics.mean_time_last(scale.tail_queries),
                csr=metrics.cost_saving_ratio(),
                chunk_hit_ratio=metrics.chunk_hit_ratio(),
                pages_read=metrics.total_pages_read(),
            )
    return result


if __name__ == "__main__":
    print(run().render())
