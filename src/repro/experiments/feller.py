"""Section 4.2 analysis — Feller's occupancy model vs measurement.

Validates the paper's analytical explanation of the bitmap speedup: on a
randomly ordered file, a selection qualifying ``n`` tuples should touch
``f(n, P)`` of the ``P`` data pages; on a chunked file the candidate set
shrinks to the pages of the intersected chunks.  We measure the *data*
pages actually touched (positions -> distinct pages, excluding index
pages) and compare against the closed forms of
:mod:`repro.analysis.probability`.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.probability import (
    expected_pages_chunked,
    expected_pages_random,
)
from repro.experiments.fig14 import (
    SELECTION_WIDTHS,
    BitmapSetup,
    build_bitmap_setup,
)
from repro.experiments.reporting import ExperimentResult
from repro.storage import tuple_chunk_numbers

__all__ = ["run"]


def run(
    setup: BitmapSetup | None = None,
    queries_per_width: int = 8,
    seed: int = 11,
) -> ExperimentResult:
    """Compare measured data-page counts against the Feller model."""
    setup = setup or build_bitmap_setup()
    rng = np.random.default_rng(seed)
    domain = setup.schema.dimensions[0].leaf_cardinality
    random_file = setup.random_engine.fact_file
    chunked_file = setup.chunked_engine.chunked_file
    assert random_file is not None and chunked_file is not None
    stored_random = random_file.read_all()
    stored_chunked = chunked_file.read_all()
    total_pages = random_file.num_pages

    result = ExperimentResult(
        experiment_id="feller",
        title="Sec 4.2: Feller occupancy model vs measured data pages",
        columns=[
            "width", "tuples",
            "measured_random", "model_random",
            "measured_chunked", "model_chunked",
        ],
        expectation=(
            "measured random-file pages track f(n, P); chunked-file pages "
            "track the chunk-capped model and sit far below"
        ),
        notes=f"P={total_pages} data pages",
    )

    base_grid = setup.chunked_engine.space.base_grid
    chunks_a = base_grid.shape[0]
    pages_per_chunk = total_pages / base_grid.num_chunks

    for width in SELECTION_WIDTHS:
        measured_r, measured_c, tuples_total = 0.0, 0.0, 0.0
        starts = rng.integers(0, domain - width + 1, queries_per_width)
        for start in starts:
            lo, hi = int(start), int(start) + width
            mask_r = (stored_random["A"] >= lo) & (stored_random["A"] < hi)
            mask_c = (stored_chunked["A"] >= lo) & (stored_chunked["A"] < hi)
            measured_r += random_file.count_pages_for_positions(
                np.flatnonzero(mask_r)
            )
            measured_c += chunked_file.fact_file.count_pages_for_positions(
                np.flatnonzero(mask_c)
            )
            tuples_total += int(mask_r.sum())
        n = queries_per_width
        mean_tuples = tuples_total / n
        # Chunk footprint of the selection: the A-chunks it intersects
        # times all B-chunks (no restriction on B).
        selected_chunks = (width / domain) * chunks_a + 1
        selected_chunks = min(chunks_a, selected_chunks) * base_grid.shape[1]
        result.add(
            width=width,
            tuples=mean_tuples,
            measured_random=measured_r / n,
            model_random=expected_pages_random(mean_tuples, total_pages),
            measured_chunked=measured_c / n,
            model_chunked=expected_pages_chunked(
                mean_tuples,
                total_pages,
                selected_chunks=selected_chunks,
                pages_per_chunk=pages_per_chunk,
            ),
        )
    return result


if __name__ == "__main__":
    print(run().render())
