"""Soak and chaos-soak jobs — the nightly entry points.

This module is the **composition root** for fault injection: it builds
the system, the workload, the sharded store and (for chaos runs) the
:class:`~repro.faults.FaultPlan` / :class:`~repro.faults.FaultInjector`
pair, then hands everything to the serving layer's harnesses.  Under
reprolint rule R006 it is one of the only production modules allowed to
import :mod:`repro.faults` — the storage, backend, cache and serving
layers receive fault hooks duck-typed and never construct a plan
themselves.

Both jobs return plain JSON-able dictionaries so the CLI (``python -m
repro soak``) and the nightly GitHub Actions workflow can archive the
outcome as an artifact.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.api import StackConfig, build_cache
from repro.experiments.configs import DEFAULT_SCALE, Scale
from repro.experiments.harness import get_system, make_chunk_manager
from repro.experiments.multiuser import user_streams
from repro.faults import (
    FaultInjector,
    FaultPlan,
    standard_specs,
    tiered_specs,
)
from repro.query.model import StarQuery
from repro.serve import (
    PROCESSES,
    ChaosConfig,
    ChaosReport,
    SoakConfig,
    SoakReport,
    run_chaos_soak,
    run_soak,
)

__all__ = ["run_soak_job", "run_chaos_job"]

NUM_SHARDS = 8
NUM_USERS = 8


def run_soak_job(
    scale: Scale = DEFAULT_SCALE,
    num_users: int = NUM_USERS,
    per_user: int | None = None,
    num_shards: int = NUM_SHARDS,
    config: SoakConfig = SoakConfig(),
    cache_tiers: int = 1,
    persist_path: str | None = None,
    cache_bytes: int | None = None,
    l2_backend: str = "chunklog",
    l2_budget_bytes: int | None = None,
    compact_threshold: float | None = None,
) -> dict[str, Any]:
    """Run the fault-free concurrency soak and summarize it.

    Builds K user streams over one hot region, races them under the
    free schedule with deep invariants, and returns the verified
    totals as a JSON-able dictionary.  ``config.exec_mode`` selects the
    thread (default) or process execution mode; ``cache_tiers=2`` puts
    the persistent spill tier under the sharded store (the 1-tier
    summary stays byte-identical — tier keys only appear at 2).
    ``cache_bytes`` overrides the scale-derived L1 budget — a
    constrained budget forces evictions, which is how the nightly
    restart arm guarantees the log actually fills.  ``l2_backend``,
    ``l2_budget_bytes`` and ``compact_threshold`` pass through to
    :class:`~repro.api.StackConfig` (2-tier only).
    """
    system = get_system(scale)
    streams = user_streams(system, num_users=num_users, per_user=per_user)
    cache = build_cache(
        StackConfig(
            cache_bytes=(
                cache_bytes if cache_bytes is not None
                else system.cache_bytes
            ),
            num_shards=num_shards,
            cache_tiers=cache_tiers,
            persist_path=persist_path,
            l2_backend=l2_backend,
            l2_budget_bytes=l2_budget_bytes,
            compact_threshold=compact_threshold,
        )
    )
    manager = make_chunk_manager(
        system, cache=cache, exec_mode=config.exec_mode
    )
    try:
        report = run_soak(manager, streams, config)
    finally:
        if config.exec_mode == PROCESSES:
            manager.backend.close()
        _close_cache(cache)
    summary = {
        "job": "soak",
        "scale_tuples": scale.num_tuples,
        "num_users": num_users,
        "per_user": len(streams[0]),
        "num_shards": num_shards,
        "exec_mode": config.exec_mode,
        **_soak_summary(report),
    }
    _add_tier_summary(summary, cache, cache_tiers)
    return summary


def run_chaos_job(
    scale: Scale = DEFAULT_SCALE,
    rate: str = "mid",
    seed: int = 20260806,
    num_users: int = NUM_USERS,
    per_user: int | None = None,
    num_shards: int = NUM_SHARDS,
    config: ChaosConfig = ChaosConfig(),
    with_oracle: bool = True,
    cache_tiers: int = 1,
    persist_path: str | None = None,
    cache_bytes: int | None = None,
    l2_backend: str = "chunklog",
    l2_budget_bytes: int | None = None,
    compact_threshold: float | None = None,
) -> dict[str, Any]:
    """Run the chaos soak under a standard fault plan and summarize it.

    Args:
        scale: System/workload scale.
        rate: Fault-plan preset (``"low"``, ``"mid"``, ``"high"``).
        seed: The fault plan's seed — same seed, workload and config
            reproduce the same digest.
        num_users: Concurrent user streams.
        per_user: Queries per stream (default: scale-derived).
        num_shards: Cache shards.
        config: Harness knobs (schedule, checkpoints, deadline).
        with_oracle: When true (the default), every answered query is
            replayed fault-free after the run and must match — the
            "never a wrong answer" half of the degradation contract.
        cache_tiers: ``2`` adds the persistent spill tier *and* arms
            the write-path fault kinds (:func:`tiered_specs`); ``1``
            keeps the plan and digest byte-identical to the historical
            chaos soak.
        persist_path: Backing file for the 2-tier chunk log.
        cache_bytes: Override for the scale-derived L1 budget (forces
            eviction pressure in 2-tier runs).
        l2_backend: L2 backend selector (``"chunklog"``/``"sqlite"``).
        l2_budget_bytes: L2 live-byte budget (2-tier only).
        compact_threshold: Dead-space ratio that triggers backend
            compaction — arming it puts the ``log-compact`` fault kind
            on a live code path (2-tier only).
    """
    system = get_system(scale)
    streams = user_streams(system, num_users=num_users, per_user=per_user)
    oracle: Callable[[StarQuery], Any] | None = None
    if with_oracle:
        oracle_manager = make_chunk_manager(system)

        def _replay(query: StarQuery) -> Any:
            return oracle_manager.pipeline.execute(query).rows

        oracle = _replay

    cache = build_cache(
        StackConfig(
            cache_bytes=(
                cache_bytes if cache_bytes is not None
                else system.cache_bytes
            ),
            num_shards=num_shards,
            cache_tiers=cache_tiers,
            persist_path=persist_path,
            l2_backend=l2_backend,
            l2_budget_bytes=l2_budget_bytes,
            compact_threshold=compact_threshold,
        )
    )
    manager = make_chunk_manager(
        system, cache=cache, exec_mode=config.exec_mode
    )
    specs = tiered_specs(rate) if cache_tiers == 2 else standard_specs(rate)
    plan = FaultPlan(seed=seed, specs=specs)
    injector = FaultInjector(plan)
    try:
        report = run_chaos_soak(
            manager, streams, injector, config, oracle=oracle
        )
    finally:
        if config.exec_mode == PROCESSES:
            manager.backend.close()
        _close_cache(cache)
    summary = {
        "job": "chaos-soak",
        "scale_tuples": scale.num_tuples,
        "rate": rate,
        "seed": seed,
        "num_users": num_users,
        "per_user": len(streams[0]),
        "num_shards": num_shards,
        "schedule": config.schedule,
        "exec_mode": config.exec_mode,
        "oracle_replayed": with_oracle,
        **_chaos_summary(report),
    }
    _add_tier_summary(summary, cache, cache_tiers)
    return summary


def _close_cache(cache: Any) -> None:
    """Close a tiered store's chunk log (no-op for 1-tier stores)."""
    close = getattr(cache, "close", None)
    if close is not None:
        close()


def _add_tier_summary(
    summary: dict[str, Any], cache: Any, cache_tiers: int
) -> None:
    """Attach per-tier counters — 2-tier runs only.

    1-tier summaries gain no keys at all, keeping their JSON output
    byte-identical to the pre-tiering jobs.
    """
    if cache_tiers == 2:
        summary["cache_tiers"] = cache_tiers
        summary["tiers"] = cache.tiers()


def _soak_summary(report: SoakReport) -> dict[str, Any]:
    return {
        "queries": report.queries,
        "checkpoints": report.checkpoints,
        "pages_read": report.pages_read,
        "disk_read_delta": report.disk_read_delta,
        "deep_checks": report.deep_checks,
        "csr": report.serve.metrics.cost_saving_ratio(),
        "simulated_throughput": report.serve.simulated_throughput,
        "contention": report.serve.contention,
    }


def _chaos_summary(report: ChaosReport) -> dict[str, Any]:
    return {
        "queries": report.queries,
        "failures": report.failures,
        "checkpoints": report.checkpoints,
        "pages_read": report.pages_read,
        "failed_pages": report.failed_pages,
        "disk_read_delta": report.disk_read_delta,
        "deep_checks": report.deep_checks,
        "wrong_answers": report.wrong_answers,
        "digest": report.digest,
        "fault_counters": report.fault_counters,
        "csr": report.serve.metrics.cost_saving_ratio(),
        "contention": report.serve.contention,
    }
