"""Reproduction harness for the paper's evaluation section (Section 6).

One module per table/figure; see :mod:`repro.experiments.registry` for the
index and ``DESIGN.md`` §4 for the experiment-to-module map.
"""

from repro.experiments.configs import (
    DEFAULT_SCALE,
    PAPER_SCALE,
    SMOKE_SCALE,
    Scale,
    build_paper_schema,
    cube_size_bytes,
)
from repro.experiments.harness import (
    System,
    build_system,
    get_system,
    make_chunk_manager,
    make_mix_stream,
    make_query_manager,
    reset_backend,
    run_stream,
)
from repro.experiments.reporting import ExperimentResult

__all__ = [
    "Scale",
    "DEFAULT_SCALE",
    "PAPER_SCALE",
    "SMOKE_SCALE",
    "build_paper_schema",
    "cube_size_bytes",
    "System",
    "build_system",
    "get_system",
    "make_chunk_manager",
    "make_query_manager",
    "make_mix_stream",
    "reset_backend",
    "run_stream",
    "ExperimentResult",
]
