"""Figure 11 — effect of cache size on chunk caching (EQPR stream).

Sweeps the chunk cache budget over fractions of the cube size.  The
paper's shape: CSR rises and mean execution time falls monotonically as
the cache grows.
"""

from __future__ import annotations

from repro.experiments.configs import DEFAULT_SCALE, Scale
from repro.experiments.harness import (
    get_system,
    make_chunk_manager,
    make_mix_stream,
    run_stream,
)
from repro.experiments.reporting import ExperimentResult
from repro.workload.generator import EQPR

__all__ = ["run", "CACHE_FRACTIONS"]

#: Cache budgets swept, as fractions of the cube size (paper: 30 MB of a
#: 300 MB cube is the 0.1 point).
CACHE_FRACTIONS = (0.01, 0.025, 0.05, 0.1, 0.2)


def run(scale: Scale = DEFAULT_SCALE) -> ExperimentResult:
    """Reproduce Figure 11 at the given scale."""
    system = get_system(scale)
    stream = make_mix_stream(system, EQPR)
    result = ExperimentResult(
        experiment_id="fig11",
        title="Figure 11: Effect of Cache Size (EQPR, chunk caching)",
        columns=[
            "cache_fraction", "cache_bytes", "csr",
            "mean_time_last", "chunk_hit_ratio",
        ],
        expectation="CSR rises and execution time falls as the cache grows",
        notes=f"cube size {system.cube_bytes} bytes",
    )
    for fraction in CACHE_FRACTIONS:
        cache_bytes = int(system.cube_bytes * fraction)
        manager = make_chunk_manager(system, cache_bytes=cache_bytes)
        metrics = run_stream(manager, stream)
        result.add(
            cache_fraction=fraction,
            cache_bytes=cache_bytes,
            csr=metrics.cost_saving_ratio(),
            mean_time_last=metrics.mean_time_last(scale.tail_queries),
            chunk_hit_ratio=metrics.chunk_hit_ratio(),
        )
    return result


if __name__ == "__main__":
    print(run().render())
