"""Paper constants and experiment configuration.

Section 6.1.1 of the paper fixes the evaluation setup; the constants here
mirror it:

- **Table 1** — four dimensions with hierarchy sizes 3/2/3/2 and the
  distinct-value counts in :data:`TABLE1_CARDINALITIES` (rows are levels,
  most aggregated first; level numbers grow toward detail);
- 500 000 base tuples of 20 bytes, a 300 MB cube, a 30 MB cache (10 % of
  the cube) and an 8 MB backend buffer pool;
- streams of 1500 queries; metrics over the last 100.

The default :class:`Scale` shrinks tuple and query counts so the whole
suite runs in minutes in pure Python while keeping every *ratio* of the
setup (cache = 10 % of cube, buffer pool ≈ 10 % of the fact file);
``PAPER_SCALE`` restores the full figures.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.exceptions import ExperimentError
from repro.schema.builder import build_star_schema
from repro.schema.star import StarSchema
from repro.storage import groupby_record_format

__all__ = [
    "TABLE1_CARDINALITIES",
    "TABLE1_HIERARCHY_SIZES",
    "TABLE2_MIXES",
    "Scale",
    "DEFAULT_SCALE",
    "PAPER_SCALE",
    "SMOKE_SCALE",
    "build_paper_schema",
    "cube_size_bytes",
]

#: Table 1 — distinct values per level (most aggregated level first).
TABLE1_CARDINALITIES: tuple[tuple[int, ...], ...] = (
    (25, 50, 100),  # D0, hierarchy size 3
    (25, 50),       # D1, hierarchy size 2
    (5, 25, 50),    # D2, hierarchy size 3
    (10, 50),       # D3, hierarchy size 2
)

#: Table 1 — hierarchy sizes per dimension.
TABLE1_HIERARCHY_SIZES: tuple[int, ...] = tuple(
    len(c) for c in TABLE1_CARDINALITIES
)

#: Table 2 — locality parameters (probability of Proximity / Random).
TABLE2_MIXES: tuple[tuple[str, float, float], ...] = (
    ("Random", 0.0, 1.0),
    ("EQPR", 0.5, 0.5),
    ("Proximity", 0.8, 0.2),
)


@dataclass(frozen=True)
class Scale:
    """One experiment scale: dataset, stream and budget sizes.

    Attributes:
        num_tuples: Base fact-table tuples.
        num_queries: Queries per stream.
        tail_queries: Window of the mean-execution-time metric.
        chunk_ratio: Chunk-range / dimension-range ratio (Section 5.1).
        cache_fraction_of_cube: Cache budget as a fraction of the cube
            size in bytes (paper: 30 MB of 300 MB = 0.1).
        buffer_fraction_of_fact: Backend buffer pool as a fraction of the
            fact file's pages.
        page_size: Disk page size in bytes.
        seed: Base RNG seed for data and streams.
    """

    num_tuples: int = 100_000
    num_queries: int = 1000
    tail_queries: int = 100
    chunk_ratio: float = 0.2
    cache_fraction_of_cube: float = 0.1
    buffer_fraction_of_fact: float = 0.1
    page_size: int = 4096
    seed: int = 1998

    def __post_init__(self) -> None:
        if self.num_tuples < 1 or self.num_queries < 1:
            raise ExperimentError("scale sizes must be positive")
        if not 0 < self.chunk_ratio <= 1:
            raise ExperimentError("chunk_ratio must be in (0, 1]")
        if not 0 < self.cache_fraction_of_cube <= 1:
            raise ExperimentError("cache fraction must be in (0, 1]")

    def with_overrides(self, **kwargs: object) -> "Scale":
        """A copy with some fields replaced."""
        return replace(self, **kwargs)  # type: ignore[arg-type]


#: Fast scale for CI and benchmarks (minutes for the whole suite).
DEFAULT_SCALE = Scale()

#: The paper's full configuration (Section 6.1.1).
PAPER_SCALE = Scale(num_tuples=500_000, num_queries=1500)

#: Tiny scale for unit tests (seconds).
SMOKE_SCALE = Scale(num_tuples=20_000, num_queries=60)


def build_paper_schema(measure_names: tuple[str, ...] = ("sales",)) -> StarSchema:
    """The Table 1 star schema: 4 dimensions, hierarchy sizes 3/2/3/2."""
    return build_star_schema(
        TABLE1_CARDINALITIES,
        measure_names=measure_names,
        name="table1",
    )


def cube_size_bytes(schema: StarSchema, num_tuples: int | None = None) -> int:
    """Size of the fully materialized cube in bytes.

    Sum over every group-by of its result cardinality times its result
    row size — the quantity the paper's "300 MB cube" refers to.  A
    group-by can never hold more rows than the base table has tuples, so
    when ``num_tuples`` is given each group-by's cardinality is capped by
    it (this is what makes the paper's 500 000-tuple base table yield a
    300 MB rather than multi-GB cube).
    """
    if num_tuples is not None and num_tuples < 0:
        raise ExperimentError(f"negative num_tuples {num_tuples}")
    total = 0
    for groupby in schema.all_groupbys():
        fmt = groupby_record_format(schema, groupby)
        rows = schema.groupby_cardinality(groupby)
        if num_tuples is not None:
            rows = min(rows, num_tuples)
        total += rows * fmt.record_size
    return total
