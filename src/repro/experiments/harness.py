"""The experiment harness: build a system, run streams, collect metrics.

Every experiment module composes the same few steps:

1. :func:`build_system` — Table 1 schema, synthetic fact table, shared
   chunk geometry and a loaded chunked backend;
2. :func:`make_chunk_manager` / :func:`make_query_manager` — a caching
   middle tier over that backend;
3. :func:`run_stream` — push a query stream through a manager, verifying
   (optionally) every answer against a direct backend evaluation;
4. read the paper's metrics off the manager's
   :class:`~repro.core.metrics.StreamMetrics`.

Backends are reset (buffer pool flushed, I/O counters zeroed) before each
run so scheme comparisons start from identical cold state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.cost import CostModel
from repro.api import (
    CHUNK,
    PROCESSES,
    QUERY,
    THREADS,
    StackConfig,
    build_backend,
    build_stack,
)
from repro.backend.engine import BackendEngine
from repro.core.cache import ChunkStore
from repro.chunks.grid import ChunkSpace
from repro.core.manager import ChunkCacheManager
from repro.core.metrics import StreamMetrics
from repro.core.query_cache import QueryCacheManager
from repro.exceptions import ExperimentError
from repro.pipeline.protocol import QueryAnswerer
from repro.experiments.configs import (
    Scale,
    build_paper_schema,
    cube_size_bytes,
)
from repro.schema.star import StarSchema
from repro.workload.data import generate_fact_table
from repro.workload.generator import LocalityMix
from repro.workload.stream import QueryStream, make_stream

__all__ = ["System", "build_system", "get_system", "make_chunk_manager",
           "make_query_manager", "run_stream", "reset_backend",
           "make_mix_stream"]


@dataclass
class System:
    """Everything an experiment run needs, built once per configuration.

    Attributes:
        scale: The scale it was built at.
        schema: The Table 1 star schema.
        space: Shared chunk geometry.
        records: The generated base fact table.
        backend: A loaded chunked-organization engine with bitmaps.
        cost_model: The simulated cost model.
        cache_bytes: Cache budget derived from the cube size.
        cube_bytes: Fully materialized cube size.
    """

    scale: Scale
    schema: StarSchema
    space: ChunkSpace
    records: np.ndarray
    backend: BackendEngine
    cost_model: CostModel
    cache_bytes: int
    cube_bytes: int


def build_system(
    scale: Scale,
    chunk_ratio: float | None = None,
    schema: StarSchema | None = None,
    cost_model: CostModel | None = None,
) -> System:
    """Build the paper's evaluation system at a given scale.

    Args:
        scale: Dataset/stream/budget sizes.
        chunk_ratio: Override of ``scale.chunk_ratio`` (used by the
            Figure 12 sweep).
        schema: Override schema (defaults to Table 1).
        cost_model: Override cost model.
    """
    schema = schema or build_paper_schema()
    ratio = chunk_ratio if chunk_ratio is not None else scale.chunk_ratio
    space = ChunkSpace(schema, ratio)
    records = generate_fact_table(schema, scale.num_tuples, seed=scale.seed)
    fact_pages = max(
        1, (scale.num_tuples * 24) // scale.page_size  # ~24 B per record
    )
    pool_pages = max(8, int(fact_pages * scale.buffer_fraction_of_fact))
    backend = build_backend(
        schema,
        space,
        records,
        organization="chunked",
        page_size=scale.page_size,
        buffer_pool_pages=pool_pages,
    )
    cube_bytes = cube_size_bytes(schema, scale.num_tuples)
    cache_bytes = int(cube_bytes * scale.cache_fraction_of_cube)
    return System(
        scale=scale,
        schema=schema,
        space=space,
        records=records,
        backend=backend,
        cost_model=cost_model or CostModel(),
        cache_bytes=cache_bytes,
        cube_bytes=cube_bytes,
    )


_SYSTEM_CACHE: dict[tuple[Scale, float], System] = {}


def get_system(scale: Scale, chunk_ratio: float | None = None) -> System:
    """A memoized :func:`build_system` — experiments at the same scale and
    chunk ratio share one loaded backend (reset between runs)."""
    ratio = chunk_ratio if chunk_ratio is not None else scale.chunk_ratio
    key = (scale, ratio)
    system = _SYSTEM_CACHE.get(key)
    if system is None:
        system = build_system(scale, chunk_ratio=ratio)
        _SYSTEM_CACHE[key] = system
    return system


def reset_backend(system: System) -> None:
    """Flush the backend's buffer pool and zero its counters.

    Run before each scheme so comparisons start from identical cold
    state.
    """
    system.backend.buffer_pool.flush()
    system.backend.buffer_pool.reset_stats()
    system.backend.disk.reset_stats()


def make_chunk_manager(
    system: System,
    cache_bytes: int | None = None,
    policy: str = "benefit",
    aggregate_in_cache: bool = False,
    cache: ChunkStore | None = None,
    exec_mode: str = THREADS,
    proc_workers: int = 4,
) -> ChunkCacheManager:
    """A chunk-caching middle tier over the system's backend.

    Args:
        cache: Pre-built chunk store to use instead of a fresh
            :class:`~repro.core.cache.ChunkCache` (e.g. a
            :class:`repro.serve.ShardedChunkCache` for concurrent
            serving); ``cache_bytes`` and ``policy`` are ignored then.
        exec_mode: ``"threads"`` (default) or ``"processes"`` — the
            latter wraps the system's backend in a
            :class:`~repro.serve.proc.ProcessComputeEngine` seeded with
            the system's fact records.  Close the returned manager's
            backend when done (``manager.backend.close()``).
        proc_workers: Worker-process count for process mode.
    """
    reset_backend(system)
    stack = build_stack(
        system.schema,
        records=(
            system.records if exec_mode == PROCESSES else None
        ),
        config=StackConfig(
            scheme=CHUNK,
            cache_bytes=(
                cache_bytes if cache_bytes is not None
                else system.cache_bytes
            ),
            policy=policy,
            aggregate_in_cache=aggregate_in_cache,
            exec_mode=exec_mode,
            proc_workers=proc_workers,
        ),
        space=system.space,
        backend=system.backend,
        cache=cache,
        cost_model=system.cost_model,
    )
    return stack.chunk_manager


def make_query_manager(
    system: System,
    cache_bytes: int | None = None,
    policy: str = "benefit",
    miss_path: str = "auto",
) -> QueryCacheManager:
    """A query-caching (containment) middle tier over the same backend."""
    reset_backend(system)
    stack = build_stack(
        system.schema,
        config=StackConfig(
            scheme=QUERY,
            cache_bytes=(
                cache_bytes if cache_bytes is not None
                else system.cache_bytes
            ),
            policy=policy,
            miss_path=miss_path,
        ),
        space=system.space,
        backend=system.backend,
        cost_model=system.cost_model,
    )
    return stack.query_manager


def run_stream(
    manager: QueryAnswerer,
    stream: QueryStream,
    verify_every: int = 0,
) -> StreamMetrics:
    """Push a stream through an answerer; optionally verify answers.

    The harness is typed against the
    :class:`~repro.pipeline.protocol.QueryAnswerer` protocol, so any
    caching scheme built on the staged pipeline runs here unchanged.
    The returned metrics carry, alongside the paper's numbers, the
    stream's aggregated per-stage wall/modelled times
    (:meth:`~repro.core.metrics.StreamMetrics.stage_summary`) and
    resolver attribution
    (:meth:`~repro.core.metrics.StreamMetrics.resolver_summary`).

    Args:
        manager: A cache manager built by this harness (any
            :class:`~repro.pipeline.protocol.QueryAnswerer` whose
            ``backend`` attribute exposes the ground-truth engine).
        stream: The query stream.
        verify_every: When positive, every ``verify_every``-th answer is
            checked row-for-row against a direct backend scan (slow;
            meant for tests).

    Returns:
        The manager's metrics after the run.
    """
    backend = manager.backend
    for index, query in enumerate(stream):
        answer = manager.answer(query)
        if verify_every and index % verify_every == 0:
            expected, _ = backend.answer(query, "scan")  # reprolint: ignore[R001] ground-truth oracle
            _assert_same_rows(expected, answer.rows, query)
    return manager.metrics


def make_mix_stream(
    system: System, mix: LocalityMix, num_queries: int | None = None,
    seed_offset: int = 0,
) -> QueryStream:
    """A stream for the system's schema under a locality mix."""
    scale = system.scale
    return make_stream(
        system.schema,
        mix,
        num_queries or scale.num_queries,
        seed=scale.seed + seed_offset,
    )


def _assert_same_rows(
    expected: np.ndarray, actual: np.ndarray, query: object
) -> None:
    def canon(rows: np.ndarray) -> list[tuple[object, ...]]:
        return sorted(
            tuple(
                round(v, 6) if isinstance(v, float) else v for v in row
            )
            for row in map(tuple, rows.tolist())
        )

    if canon(expected) != canon(actual):
        raise ExperimentError(f"cache answer diverged for {query}")
