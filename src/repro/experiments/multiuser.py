"""Multi-user extension — one shared chunk cache vs partitioned caches.

Section 1 of the paper: "The queries may be issued from multiple query
streams originating from multiple users."  Chunk-based caching has a
structural advantage in that setting: when several analysts look at the
same popular data, their streams share *chunks* in one cache instead of
duplicating whole query results per user.

This experiment generates K user streams over the same hot region (the
popular data everyone analyses) interleaved round-robin, and compares:

- **shared** — one chunk cache of budget B serving all users; versus
- **shared-concurrent** — the same shared budget behind the
  :mod:`repro.serve` layer: a single-shard
  :class:`~repro.serve.ShardedChunkCache` driven by one worker thread
  per user under the fair schedule, which must reproduce the shared
  arm's totals exactly (the serving layer's determinism contract);
- **partitioned** — K independent chunk caches of budget B/K, one per
  user (the architecture of per-session result caches).

Expected shape: shared wins — overlapping interests deduplicate in one
cache, and each user warms the others' working sets — and the
concurrent arm matches it number for number.
"""

from __future__ import annotations

from repro.api import StackConfig, build_cache
from repro.core.cache import ChunkStore
from repro.experiments.configs import DEFAULT_SCALE, Scale
from repro.experiments.harness import (
    System,
    get_system,
    make_chunk_manager,
    run_stream,
)
from repro.experiments.reporting import ExperimentResult
from repro.serve import (
    FAIR,
    PROCESSES,
    THREADS,
    ProcServeSession,
    ServeReport,
    ServeSession,
)
from repro.workload.generator import Q80, QueryGenerator
from repro.workload.stream import QueryStream, interleave_streams

__all__ = ["run", "user_streams", "run_shared_concurrent", "NUM_USERS"]

NUM_USERS = 4


def user_streams(
    system: System, num_users: int = NUM_USERS,
    per_user: int | None = None,
) -> list[QueryStream]:
    """The experiment's user streams: one hot region, K analysts.

    All users analyse the same popular region (a shared hot-region
    placement seed) but issue independent query sequences.  Also the
    workload the serving soak test runs.
    """
    scale = system.scale
    if per_user is None:
        per_user = max(20, scale.num_queries // num_users)
    streams = []
    for user in range(num_users):
        generator = QueryGenerator(system.schema, seed=scale.seed)
        # Same constructor seed -> same hot region; then jump each user's
        # RNG to a distinct sequence so the queries differ.
        generator.rng.seed(scale.seed * 1000 + user)
        streams.append(
            QueryStream(
                name=f"user{user}",
                queries=tuple(generator.stream(per_user, Q80)),
            )
        )
    return streams


def run_shared_concurrent(
    system: System,
    streams: list[QueryStream],
    max_workers: int | None = None,
    num_shards: int = 1,
    schedule: str = FAIR,
    exec_mode: str = THREADS,
    proc_workers: int = 4,
    cache: ChunkStore | None = None,
) -> ServeReport:
    """The shared cache behind the concurrent serving layer.

    Defaults (single shard, fair schedule) pin the determinism
    contract: the report's totals equal the sequential shared arm's for
    any worker count — in thread mode *and* in process mode
    (``exec_mode="processes"``), where payload compute moves to replica
    worker processes.  Tests also call this with ``max_workers=1`` to
    pin bit-identical equality, and with more shards for stress runs.
    Pass a prebuilt ``cache`` (e.g. a 2-tier store from
    :func:`repro.api.build_cache`) to inspect its counters afterwards;
    the caller then owns closing it.
    """
    if cache is None:
        cache = build_cache(
            StackConfig(
                cache_bytes=system.cache_bytes, num_shards=num_shards
            )
        )
    manager = make_chunk_manager(
        system,
        cache=cache,
        exec_mode=exec_mode,
        proc_workers=proc_workers,
    )
    try:
        session_class = (
            ProcServeSession if exec_mode == PROCESSES else ServeSession
        )
        session = session_class(
            manager,
            streams,
            max_workers=max_workers,
            schedule=schedule,
        )
        return session.run()
    finally:
        if exec_mode == PROCESSES:
            manager.backend.close()


def run(scale: Scale = DEFAULT_SCALE) -> ExperimentResult:
    """Compare a shared chunk cache against per-user partitions."""
    system = get_system(scale)
    streams = user_streams(system)
    per_user = len(streams[0])
    combined = interleave_streams("all-users", streams)

    result = ExperimentResult(
        experiment_id="multiuser",
        title="Extension: shared vs partitioned chunk caches "
              f"({NUM_USERS} users, Q80)",
        columns=[
            "configuration", "csr", "mean_time", "pages_read",
        ],
        expectation=(
            "one shared cache beats per-user partitions of the same "
            "total budget (chunks deduplicate across users)"
        ),
        notes=f"{per_user} queries/user; budget {system.cache_bytes} bytes",
    )

    shared = make_chunk_manager(system)
    metrics = run_stream(shared, combined)
    result.add(
        configuration="shared",
        csr=metrics.cost_saving_ratio(),
        mean_time=metrics.mean_time(),
        pages_read=metrics.total_pages_read(),
    )

    # Shared budget behind the serving layer: one worker thread per
    # user, fair schedule — must reproduce the shared row exactly.
    report = run_shared_concurrent(
        system, streams, max_workers=NUM_USERS
    )
    result.add(
        configuration="shared-concurrent",
        csr=report.metrics.cost_saving_ratio(),
        mean_time=report.metrics.mean_time(),
        pages_read=report.metrics.total_pages_read(),
    )

    # Partitioned: independent managers with budget/K each, but queries
    # still arrive interleaved (each user's manager only sees its own).
    managers = [
        make_chunk_manager(
            system, cache_bytes=system.cache_bytes // NUM_USERS
        )
        for _ in range(NUM_USERS)
    ]
    # Reset after the factory's own per-manager resets so all users share
    # one warm backend, as in the shared run.
    system.backend.buffer_pool.flush()
    system.backend.disk.reset_stats()
    cursors = [0] * NUM_USERS
    for index, query in enumerate(combined):
        user = index % NUM_USERS
        managers[user].answer(query)
        cursors[user] += 1
    total_full = sum(
        record.full_cost
        for manager in managers
        for record in manager.metrics.records
    )
    total_saved = sum(
        record.saved_cost
        for manager in managers
        for record in manager.metrics.records
    )
    total_time = sum(
        record.time
        for manager in managers
        for record in manager.metrics.records
    )
    total_pages = sum(
        manager.metrics.total_pages_read() for manager in managers
    )
    result.add(
        configuration="partitioned",
        csr=total_saved / total_full if total_full else 0.0,
        mean_time=total_time / len(combined),
        pages_read=total_pages,
    )
    return result


if __name__ == "__main__":
    print(run().render())
