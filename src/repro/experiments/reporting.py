"""Experiment results and their textual rendering.

Each experiment returns an :class:`ExperimentResult`: an ordered list of
row dictionaries plus labels, which renders as an aligned text table (for
benchmark output) or a Markdown table (for EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.exceptions import ExperimentError

__all__ = ["ExperimentResult", "format_table", "format_markdown"]


@dataclass
class ExperimentResult:
    """One reproduced table or figure.

    Attributes:
        experiment_id: Short id (``"fig9"``, ``"table1"``, ...).
        title: The paper artifact it reproduces.
        columns: Column names, in display order.
        rows: One mapping per row; missing keys render blank.
        expectation: One-line statement of the paper's expected shape.
        notes: Free-form remarks (scale used, substitutions...).
    """

    experiment_id: str
    title: str
    columns: Sequence[str]
    rows: list[Mapping[str, object]] = field(default_factory=list)
    expectation: str = ""
    notes: str = ""

    def add(self, **values: object) -> None:
        """Append one row."""
        self.rows.append(values)

    def column(self, name: str) -> list[object]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise ExperimentError(f"unknown column {name!r}")
        return [row.get(name) for row in self.rows]

    def render(self, markdown: bool = False) -> str:
        """The result as a text or Markdown table with headers."""
        table = (
            format_markdown(self.columns, self.rows)
            if markdown
            else format_table(self.columns, self.rows)
        )
        lines = [f"[{self.experiment_id}] {self.title}"]
        if self.expectation:
            lines.append(f"expected shape: {self.expectation}")
        lines.append(table)
        if self.notes:
            lines.append(f"notes: {self.notes}")
        return "\n".join(lines)


def _cell(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(
    columns: Sequence[str], rows: Sequence[Mapping[str, object]]
) -> str:
    """Aligned plain-text table."""
    rendered = [[_cell(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) if rendered else len(col)
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    rule = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(cell.rjust(w) for cell, w in zip(cells, widths))
        for cells in rendered
    ]
    return "\n".join([header, rule, *body])


def format_markdown(
    columns: Sequence[str], rows: Sequence[Mapping[str, object]]
) -> str:
    """GitHub-flavoured Markdown table."""
    header = "| " + " | ".join(columns) + " |"
    rule = "|" + "|".join("---" for _ in columns) + "|"
    body = [
        "| " + " | ".join(_cell(row.get(col)) for col in columns) + " |"
        for row in rows
    ]
    return "\n".join([header, rule, *body])
