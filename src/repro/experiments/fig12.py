"""Figure 12 — effect of the chunk dimension range (EQPR stream).

Sweeps the ratio of chunk-range size to dimension size (Section 5.1).
The paper's shape is a U-curve: very small ranges create too many chunks
(per-chunk overhead, larger chunk index), very large ranges waste work on
boundary tuples that are never reused; performance is best in between.

Each ratio changes the chunk geometry, which changes the physical file
clustering, so a fresh backend is built per point (no system cache reuse).
"""

from __future__ import annotations

from repro.experiments.configs import DEFAULT_SCALE, Scale
from repro.experiments.harness import (
    build_system,
    make_chunk_manager,
    make_mix_stream,
    run_stream,
)
from repro.experiments.reporting import ExperimentResult
from repro.workload.generator import EQPR

__all__ = ["run", "CHUNK_RATIOS"]

#: Chunk-range / dimension-range ratios swept (x-axis of Figure 12).
#: 0.08 yields ~50k base chunks (far too fine: per-chunk overhead), 0.5
#: yields 54 (far too coarse: boundary waste); 0.2 is near the optimum.
CHUNK_RATIOS = (0.08, 0.1, 0.2, 0.35, 0.5)

#: Stream length for this sweep.  Five complete systems are built and
#: run; the U-shape is stable well below the full stream length, so the
#: sweep caps the per-point stream to keep the whole figure tractable.
MAX_QUERIES = 300


def run(scale: Scale = DEFAULT_SCALE) -> ExperimentResult:
    """Reproduce Figure 12 at the given scale."""
    if scale.num_queries > MAX_QUERIES:
        scale = scale.with_overrides(num_queries=MAX_QUERIES)
    result = ExperimentResult(
        experiment_id="fig12",
        title="Figure 12: Effect of Chunk Range (EQPR, chunk caching)",
        columns=[
            "ratio", "base_chunks", "csr", "mean_time_last",
            "mean_time", "chunks_per_query",
        ],
        expectation=(
            "U-shaped execution time: overhead at very small ratios, "
            "boundary waste at very large ones"
        ),
    )
    for ratio in CHUNK_RATIOS:
        system = build_system(scale, chunk_ratio=ratio)
        stream = make_mix_stream(system, EQPR)
        manager = make_chunk_manager(system)
        metrics = run_stream(manager, stream)
        chunks_per_query = (
            sum(r.chunks_total for r in metrics.records) / len(metrics)
        )
        result.add(
            ratio=ratio,
            base_chunks=system.space.base_grid.num_chunks,
            csr=metrics.cost_saving_ratio(),
            mean_time_last=metrics.mean_time_last(scale.tail_queries),
            mean_time=metrics.mean_time(),
            chunks_per_query=chunks_per_query,
        )
    return result


if __name__ == "__main__":
    print(run().render())
