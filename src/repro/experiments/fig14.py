"""Figure 14 — bitmap star-join performance: random vs chunked file.

Section 4.2's claim: because a chunked file clusters the fact table on
every dimension, the tuples qualifying a bitmap-index selection fall on
far fewer data pages than in a randomly ordered file.  This experiment
builds the *same* 2-D fact data in both organizations (each with its own
bitmap index over its own physical order) and sweeps selection width
(selectivity), reporting measured page I/O and modelled time per query.

Expected shape: the chunked file touches fewer pages at every
selectivity, and its advantage grows for wider range selections (adjacent
values land in the same chunks).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.cost import CostModel
from repro.api import build_backend
from repro.backend.engine import BackendEngine
from repro.chunks.grid import ChunkSpace
from repro.exceptions import ExperimentError
from repro.experiments.reporting import ExperimentResult
from repro.query.model import StarQuery
from repro.schema.builder import build_star_schema
from repro.schema.star import StarSchema
from repro.workload.data import generate_dense_table

__all__ = ["run", "BitmapSetup", "build_bitmap_setup", "SELECTION_WIDTHS"]

#: Selection widths swept (values of A selected; selectivity = width / D).
SELECTION_WIDTHS = (1, 2, 4, 8, 16)


@dataclass
class BitmapSetup:
    """The two-organization system of the bitmap experiment.

    Attributes:
        schema: 2-D star schema (flat dimensions A, B).
        records: The dense fact data (identical in both engines).
        random_engine: Randomly ordered fact file + bitmaps.
        chunked_engine: Chunk-clustered fact file + bitmaps.
        density: Fraction of (A, B) cells occupied.
        cost_model: Shared cost model.
    """

    schema: StarSchema
    records: np.ndarray
    random_engine: BackendEngine
    chunked_engine: BackendEngine
    density: float
    cost_model: CostModel


def build_bitmap_setup(
    distinct_values: int = 200,
    density: float = 0.5,
    tuples_per_cell: int = 4,
    chunk_ratio: float = 0.1,
    page_size: int = 4096,
    seed: int = 1998,
) -> BitmapSetup:
    """Build the Section 4.2 scenario in both file organizations.

    The buffer pool is kept minimal (8 frames) so measured page reads
    reflect the file layout rather than caching.
    """
    if distinct_values < 4:
        raise ExperimentError("need at least 4 distinct values")
    schema = build_star_schema(
        [[distinct_values], [distinct_values]],
        measure_names=("value",),
        dimension_names=("A", "B"),
        name="bitmap2d",
    )
    records = generate_dense_table(
        schema, density, tuples_per_cell=tuples_per_cell, seed=seed
    )
    engines = {}
    for organization in ("random", "chunked"):
        space = ChunkSpace(schema, chunk_ratio)
        engines[organization] = build_backend(
            schema,
            space,
            records,
            organization=organization,
            page_size=page_size,
            buffer_pool_pages=8,
        )
    return BitmapSetup(
        schema=schema,
        records=records,
        random_engine=engines["random"],
        chunked_engine=engines["chunked"],
        density=density,
        cost_model=CostModel(),
    )


def run(
    setup: BitmapSetup | None = None,
    queries_per_width: int = 8,
    seed: int = 7,
) -> ExperimentResult:
    """Reproduce Figure 14: mean page I/O and time per selection width."""
    setup = setup or build_bitmap_setup()
    rng = np.random.default_rng(seed)
    domain = setup.schema.dimensions[0].leaf_cardinality
    result = ExperimentResult(
        experiment_id="fig14",
        title="Figure 14: Bitmap Performance (random vs chunked file)",
        columns=[
            "width", "selectivity",
            "pages_random", "pages_chunked",
            "time_random", "time_chunked", "speedup",
        ],
        expectation=(
            "chunked file touches fewer pages at every selectivity; the "
            "advantage grows with range width"
        ),
        notes=(
            f"D={domain}, density={setup.density}, "
            f"{len(setup.records)} tuples, {queries_per_width} queries/point"
        ),
    )
    for width in SELECTION_WIDTHS:
        totals = {"random": [0.0, 0.0], "chunked": [0.0, 0.0]}
        starts = rng.integers(0, domain - width + 1, queries_per_width)
        for start in starts:
            query = StarQuery.build(
                setup.schema,
                (1, 1),
                {"A": (int(start), int(start) + width)},
            )
            for name, engine in (
                ("random", setup.random_engine),
                ("chunked", setup.chunked_engine),
            ):
                engine.buffer_pool.flush()
                _, report = engine.answer(query, "bitmap")  # reprolint: ignore[R001] measured device under test
                totals[name][0] += report.pages_read
                totals[name][1] += setup.cost_model.time(report)
        n = queries_per_width
        pages_random = totals["random"][0] / n
        pages_chunked = totals["chunked"][0] / n
        result.add(
            width=width,
            selectivity=width / domain,
            pages_random=pages_random,
            pages_chunked=pages_chunked,
            time_random=totals["random"][1] / n,
            time_chunked=totals["chunked"][1] / n,
            speedup=pages_random / pages_chunked if pages_chunked else 0.0,
        )
    return result


if __name__ == "__main__":
    print(run().render())
