"""Registry of all reproduced tables and figures.

Each experiment module exposes ``run(...) -> ExperimentResult``; this
registry maps experiment ids to those entry points so the whole
evaluation can be regenerated with one call (or ``python -m
repro.experiments.registry``).
"""

from __future__ import annotations

from typing import Callable

from repro.exceptions import ExperimentError
from repro.experiments import (
    csr_sim,
    feller,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    multiuser,
    table1,
    table2,
)
from repro.experiments.configs import DEFAULT_SCALE, Scale
from repro.experiments.reporting import ExperimentResult

__all__ = ["EXPERIMENTS", "run_experiment", "run_all"]

#: Experiment id -> (description, takes_scale, runner).
EXPERIMENTS: dict[str, tuple[str, bool, Callable[..., ExperimentResult]]] = {
    "table1": ("Table 1: dimension cardinalities", False, table1.run),
    "table2": ("Table 2: locality parameters", True, table2.run),
    "fig9": ("Figure 9: types of locality", True, fig9.run),
    "fig10": ("Figure 10: percentage of locality", True, fig10.run),
    "csr_sim": ("Sec 6.1.4: CSR simulation", True, csr_sim.run),
    "fig11": ("Figure 11: cache size", True, fig11.run),
    "fig12": ("Figure 12: chunk range", True, fig12.run),
    "fig13": ("Figure 13: replacement policies", True, fig13.run),
    "fig14": ("Figure 14: bitmap performance", False, fig14.run),
    "feller": ("Sec 4.2: occupancy model vs measured", False, feller.run),
    "multiuser": (
        "Extension: shared vs partitioned caches (multi-user)",
        True,
        multiuser.run,
    ),
}


def run_experiment(
    experiment_id: str, scale: Scale = DEFAULT_SCALE
) -> ExperimentResult:
    """Run one experiment by id."""
    try:
        _, takes_scale, runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(EXPERIMENTS)}"
        ) from None
    if takes_scale:
        return runner(scale)
    return runner()


def run_all(scale: Scale = DEFAULT_SCALE) -> list[ExperimentResult]:
    """Run every experiment, in registry order."""
    return [run_experiment(eid, scale) for eid in EXPERIMENTS]


def main() -> None:
    """CLI entry point: print every reproduced table/figure."""
    for result in run_all():
        print(result.render())
        print()


if __name__ == "__main__":
    main()
