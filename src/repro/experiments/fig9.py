"""Figure 9 — chunk vs query caching under different types of locality.

For each Table 2 stream (Random, EQPR, Proximity) the same query sequence
is pushed through both caching schemes over the same backend, reporting
the paper's two metrics: mean execution time of the last 100 queries and
the cost saving ratio.  The paper's shape: chunk caching wins everywhere,
and its advantage grows with the locality of the stream (average
improvement factor ≈ 2).
"""

from __future__ import annotations

from repro.experiments.configs import DEFAULT_SCALE, Scale
from repro.experiments.harness import (
    get_system,
    make_chunk_manager,
    make_mix_stream,
    make_query_manager,
    run_stream,
)
from repro.experiments.reporting import ExperimentResult
from repro.workload.generator import EQPR, PROXIMITY, RANDOM

__all__ = ["run"]

MIXES = (RANDOM, EQPR, PROXIMITY)


def run(scale: Scale = DEFAULT_SCALE) -> ExperimentResult:
    """Reproduce Figure 9 at the given scale."""
    system = get_system(scale)
    result = ExperimentResult(
        experiment_id="fig9",
        title="Figure 9: Different Types of Locality",
        columns=[
            "stream", "scheme", "mean_time_last", "csr",
            "chunk_hit_ratio", "pages_read",
        ],
        expectation=(
            "chunk caching beats query caching on every stream; the gap "
            "widens with locality (paper: ~2x on average)"
        ),
        notes=f"{scale.num_queries} queries/stream, {scale.num_tuples} tuples",
    )
    for mix in MIXES:
        stream = make_mix_stream(system, mix)
        chunk_manager = make_chunk_manager(system)
        chunk_metrics = run_stream(chunk_manager, stream)
        result.add(
            stream=mix.name,
            scheme="chunk",
            mean_time_last=chunk_metrics.mean_time_last(scale.tail_queries),
            csr=chunk_metrics.cost_saving_ratio(),
            chunk_hit_ratio=chunk_metrics.chunk_hit_ratio(),
            pages_read=chunk_metrics.total_pages_read(),
        )
        query_manager = make_query_manager(system)
        query_metrics = run_stream(query_manager, stream)
        result.add(
            stream=mix.name,
            scheme="query",
            mean_time_last=query_metrics.mean_time_last(scale.tail_queries),
            csr=query_metrics.cost_saving_ratio(),
            chunk_hit_ratio=query_metrics.chunk_hit_ratio(),
            pages_read=query_metrics.total_pages_read(),
        )
    return result


if __name__ == "__main__":
    print(run().render())
