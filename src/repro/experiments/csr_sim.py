"""The Section 6.1.4 in-text simulation — redundant storage hurts.

The paper's targeted experiment: run the Q100 stream (100 % of queries in
the hot region) with a cache of exactly 20 % of the cube — big enough to
hold the entire hot region once.  After warm-up a perfect cache would
answer everything from memory (CSR -> 1).  Query-level caching saturates
far below that (paper: 0.42) because overlapping results are stored
multiple times; chunk caching stores each region once and approaches 1
(paper: 0.98).

The paper runs 5000 queries; the scale's stream length is multiplied
accordingly (x3 at default scale, matching the paper's 1500 -> 5000 ratio).
"""

from __future__ import annotations

from repro.core.metrics import StreamMetrics
from repro.experiments.configs import DEFAULT_SCALE, Scale
from repro.experiments.harness import (
    get_system,
    make_chunk_manager,
    make_mix_stream,
    make_query_manager,
    run_stream,
)
from repro.experiments.reporting import ExperimentResult
from repro.workload.generator import Q100

__all__ = ["run"]

#: Paper: 5000 queries against 1500-query streams elsewhere.
STREAM_MULTIPLIER = 10 / 3


def run(scale: Scale = DEFAULT_SCALE) -> ExperimentResult:
    """Reproduce the CSR simulation of Section 6.1.4."""
    system = get_system(scale)
    cache_bytes = int(system.cube_bytes * 0.2)
    num_queries = int(scale.num_queries * STREAM_MULTIPLIER)
    stream = make_mix_stream(system, Q100, num_queries=num_queries)
    result = ExperimentResult(
        experiment_id="csr_sim",
        title="Sec 6.1.4 simulation: CSR with cache = 20% of cube, Q100",
        columns=["scheme", "csr", "csr_tail", "paper_csr", "redundancy"],
        expectation=(
            "query caching saturates well below 1.0 (paper 0.42); chunk "
            "caching approaches 1.0 (paper 0.98)"
        ),
        notes=f"{num_queries} queries; cache {cache_bytes} bytes",
    )

    chunk_manager = make_chunk_manager(system, cache_bytes=cache_bytes)
    chunk_metrics = run_stream(chunk_manager, stream)
    result.add(
        scheme="chunk",
        csr=chunk_metrics.cost_saving_ratio(),
        csr_tail=_tail_csr(chunk_metrics),
        paper_csr=0.98,
        redundancy=1.0,
    )

    query_manager = make_query_manager(system, cache_bytes=cache_bytes)
    query_metrics = run_stream(query_manager, stream)
    result.add(
        scheme="query",
        csr=query_metrics.cost_saving_ratio(),
        csr_tail=_tail_csr(query_metrics),
        paper_csr=0.42,
        redundancy=query_manager.redundancy_ratio(),
    )
    return result


def _tail_csr(metrics: StreamMetrics, fraction: float = 0.5) -> float:
    """CSR over the last ``fraction`` of the stream (post warm-up).

    The denominator is a float sum of costs, so the zero guard is an
    ordering comparison, not ``==`` (R002).
    """
    records = metrics.records
    tail = records[int(len(records) * (1 - fraction)):]
    total = sum(r.full_cost for r in tail)
    if total <= 0.0:
        return 0.0
    return sum(r.saved_cost for r in tail) / total


if __name__ == "__main__":
    print(run().render())
