"""Table 2 — locality parameters of the query streams.

Renders the proximity/random mix probabilities of the three Table 2
streams as realized by :mod:`repro.workload.generator`, and empirically
verifies each stream's class frequencies against its nominal mix.
"""

from __future__ import annotations

from repro.experiments.configs import (
    DEFAULT_SCALE,
    Scale,
    TABLE2_MIXES,
    build_paper_schema,
)
from repro.experiments.reporting import ExperimentResult
from repro.query.model import StarQuery
from repro.workload.generator import EQPR, PROXIMITY, RANDOM, QueryGenerator

__all__ = ["run"]

_MIXES = {"Random": RANDOM, "EQPR": EQPR, "Proximity": PROXIMITY}


def run(scale: Scale = DEFAULT_SCALE) -> ExperimentResult:
    """Reproduce Table 2 and verify realized class frequencies."""
    schema = build_paper_schema()
    result = ExperimentResult(
        experiment_id="table2",
        title="Table 2: Locality Parameters",
        columns=[
            "Stream", "Proximity", "Random",
            "realized_proximity", "realized_random",
        ],
        expectation="Random (0,1), EQPR (0.5,0.5), Proximity (0.8,0.2)",
        notes=(
            "realized_* are empirical class frequencies over a "
            f"{scale.num_queries}-query stream"
        ),
    )
    for name, proximity, rand in TABLE2_MIXES:
        mix = _MIXES[name]
        generator = QueryGenerator(schema, seed=scale.seed)
        proximity_count = 0
        previous = None
        for _ in range(scale.num_queries):
            query = generator.next_query(mix)
            if (
                previous is not None
                and query.groupby == previous.groupby
                and query is not previous
                and _is_shift_of(query, previous)
            ):
                proximity_count += 1
            previous = query
        realized = proximity_count / scale.num_queries
        result.add(
            Stream=name,
            Proximity=proximity,
            Random=rand,
            realized_proximity=realized,
            realized_random=1.0 - realized,
        )
    return result


def _is_shift_of(query: StarQuery, previous: StarQuery) -> bool:
    """Heuristic proximity detector: same widths on every selected dim."""
    for a, b in zip(query.selections, previous.selections):
        if (a is None) != (b is None):
            return False
        if a is not None and b is not None:
            if (a[1] - a[0]) != (b[1] - b[0]):
                return False
    return any(s is not None for s in query.selections)


if __name__ == "__main__":
    print(run().render())
