"""Staged query-execution pipeline shared by both caching schemes.

The package models the paper's Section 5.2 pipeline as explicit stages
(:mod:`~repro.pipeline.stages`), a composable resolver chain
(:mod:`~repro.pipeline.resolvers`), an executor that wires them together
(:mod:`~repro.pipeline.executor`), per-stage instrumentation
(:mod:`~repro.pipeline.trace`), batched work estimation
(:mod:`~repro.pipeline.work`), and the :class:`QueryAnswerer` protocol
the experiment harness is typed against
(:mod:`~repro.pipeline.protocol`).

Import discipline: this package may import ``repro.core.cache``,
``repro.core.chunk`` and ``repro.core.metrics`` but never
``repro.core.manager`` (the managers import *us*).
"""

from repro.pipeline.executor import (
    CostAccountant,
    PipelineResult,
    QueryAnalyzer,
    ResultAssembler,
    StagedPipeline,
)
from repro.pipeline.flight import (
    ChunkFlight,
    FlightResolver,
    FlightTable,
    clone_fault,
)
from repro.pipeline.protocol import QueryAnswerer
from repro.pipeline.resolvers import (
    DERIVABLE_AGGREGATES,
    BackendChunkResolver,
    CacheHitResolver,
    ChunkAdmitter,
    DerivationResolver,
    PartitionResolver,
    PrefetchResolver,
)
from repro.pipeline.stages import (
    AnalyzedQuery,
    ChunkPlan,
    ResolvedPart,
    Resolution,
    ResolverOutcome,
    select_exact,
)
from repro.pipeline.trace import (
    ExecutionTrace,
    StageTimer,
    StageTrace,
    aggregate_resolver_attribution,
    aggregate_stage_traces,
)
from repro.pipeline.work import ChunkWorkEstimator

__all__ = [
    "AnalyzedQuery",
    "ResolvedPart",
    "ResolverOutcome",
    "Resolution",
    "ChunkPlan",
    "select_exact",
    "ExecutionTrace",
    "StageTrace",
    "StageTimer",
    "aggregate_stage_traces",
    "aggregate_resolver_attribution",
    "ChunkWorkEstimator",
    "DERIVABLE_AGGREGATES",
    "PartitionResolver",
    "ChunkAdmitter",
    "CacheHitResolver",
    "DerivationResolver",
    "PrefetchResolver",
    "BackendChunkResolver",
    "ChunkFlight",
    "FlightTable",
    "FlightResolver",
    "clone_fault",
    "QueryAnalyzer",
    "ResultAssembler",
    "CostAccountant",
    "PipelineResult",
    "StagedPipeline",
    "QueryAnswerer",
]
