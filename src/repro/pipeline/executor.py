"""The staged pipeline executor.

:class:`StagedPipeline` wires the four stage roles together and walks
them for every query:

    analyze  →  resolve (chain)  →  assemble  →  account

Stage objects are small single-purpose callables supplied by the cache
managers (see :mod:`repro.core.manager` and
:mod:`repro.core.query_cache`); the executor owns only the control flow,
the chain bookkeeping (what is still outstanding, who resolved what) and
the per-stage instrumentation.  Both caching schemes execute through this
one code path — the chunk scheme with many partitions and a four-link
chain, the query-caching baseline with a single whole-result partition
and a two-link chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from repro import invariants
from repro.analysis.cost import CostModel
from repro.core.metrics import QueryRecord
from repro.exceptions import PipelineError
from repro.pipeline.resolvers import PartitionResolver
from repro.pipeline.stages import (
    AnalyzedQuery,
    ChunkPlan,
    Resolution,
)
from repro.pipeline.trace import (
    ExecutionTrace,
    StageTimer,
    drain_blocked_wait,
)
from repro.query.model import StarQuery

__all__ = [
    "QueryAnalyzer",
    "ResultAssembler",
    "CostAccountant",
    "PipelineResult",
    "StagedPipeline",
]


class QueryAnalyzer(Protocol):
    """Stage 1: lift the reuse key and partition the query."""

    def analyze(self, query: StarQuery) -> AnalyzedQuery: ...


class ResultAssembler(Protocol):
    """Stage 3: concatenate resolved parts and trim boundary rows."""

    def assemble(
        self, analyzed: AnalyzedQuery, resolution: Resolution
    ) -> np.ndarray: ...


class CostAccountant(Protocol):
    """Stage 4: price the answer (modelled time, CSR numerators)."""

    def account(
        self,
        analyzed: AnalyzedQuery,
        resolution: Resolution,
        plan: ChunkPlan,
        result_rows: int,
    ) -> QueryRecord: ...


@dataclass(frozen=True)
class PipelineResult:
    """Everything one pipeline execution produced.

    Attributes:
        rows: The exact result rows.
        record: The accounting record for stream metrics.
        trace: Per-stage instrumentation of this execution.
        analyzed: The analysis-stage output.
        plan: Partition classification (present / derived / missing).
        resolution: The full resolver-chain output.
    """

    rows: np.ndarray
    record: QueryRecord
    trace: ExecutionTrace
    analyzed: AnalyzedQuery
    plan: ChunkPlan
    resolution: Resolution


class StagedPipeline:
    """Executes queries through analyze → resolve → assemble → account.

    Args:
        analyzer: The analysis stage.
        resolvers: The resolver chain, tried in order; each link is
            offered only the partitions its predecessors left
            outstanding.  The final link must be total (resolve
            everything offered) or execution raises.
        assembler: The assembly stage.
        accountant: The accounting stage.
        cost_model: Used to attribute modelled time to resolver stages
            that performed physical work (trace detail only; the
            accountant owns the answer's total time).
    """

    def __init__(
        self,
        analyzer: QueryAnalyzer,
        resolvers: Sequence[PartitionResolver],
        assembler: ResultAssembler,
        accountant: CostAccountant,
        cost_model: CostModel | None = None,
    ) -> None:
        if not resolvers:
            raise PipelineError("resolver chain is empty")
        self.analyzer = analyzer
        self.resolvers = tuple(resolvers)
        self.assembler = assembler
        self.accountant = accountant
        self.cost_model = cost_model or CostModel()

    def execute(self, query: StarQuery) -> PipelineResult:
        """Run one query through all stages.

        ``execute`` is reentrant and safe to call from several threads at
        once *provided the stage objects are*: every accumulator here
        (trace, resolution, outstanding list) is local to the call, so
        concurrency safety reduces to the safety of the shared cache,
        estimator and backend the stages close over — exactly what the
        :mod:`repro.serve` layer provides.
        """
        # A fresh query must not inherit lock waits a previous query on
        # this thread left unattributed (see the blocked clock in
        # :mod:`repro.pipeline.trace`).
        drain_blocked_wait()
        trace = ExecutionTrace()

        with StageTimer(trace, "analyze") as stage:
            analyzed = self.analyzer.analyze(query)
            stage.partitions = len(analyzed.partitions)
        trace.partitions_total = len(analyzed.partitions)

        resolution = Resolution()
        outstanding: list[int] = list(analyzed.partitions)
        for resolver in self.resolvers:
            if not outstanding:
                break
            with StageTimer(trace, f"resolve:{resolver.name}") as stage:
                outcome = resolver.resolve(analyzed, tuple(outstanding))
                unknown = set(outcome.parts) - set(outstanding)
                if unknown:
                    raise PipelineError(
                        f"resolver {resolver.name!r} returned partitions "
                        f"it was not offered: {sorted(unknown)}"
                    )
                resolution.absorb(outcome)
                outstanding = [
                    n for n in outstanding if n not in outcome.parts
                ]
                stage.partitions = len(outcome.parts)
                if outcome.report is not None:
                    stage.pages_read = outcome.report.pages_read
                    stage.tuples_scanned = outcome.report.tuples_scanned
                    stage.modelled_time = self.cost_model.time(
                        outcome.report
                    )
                    stage.faults = outcome.report.faults
                    stage.retries = outcome.report.retries
                    stage.degraded = outcome.report.degraded
                    stage.backoff_seconds = outcome.report.backoff_time
                    stage.coalesce_seconds = outcome.report.coalesce_time
            trace.resolved_by[resolver.name] = len(outcome.parts)
        if outstanding:
            raise PipelineError(
                f"resolver chain left partitions unresolved: "
                f"{outstanding} (terminal resolver must be total)"
            )
        plan = ChunkPlan.from_resolution(analyzed, resolution)

        with StageTimer(trace, "assemble") as stage:
            rows = self.assembler.assemble(analyzed, resolution)
            stage.partitions = len(analyzed.partitions)

        with StageTimer(trace, "account"):
            record = self.accountant.account(
                analyzed, resolution, plan, len(rows)
            )

        trace.backend_pages = resolution.report.pages_read
        trace.modelled_time = record.time
        if invariants.enabled():
            invariants.check_trace_conservation(trace, record)
        return PipelineResult(
            rows=rows,
            record=record,
            trace=trace,
            analyzed=analyzed,
            plan=plan,
            resolution=resolution,
        )
