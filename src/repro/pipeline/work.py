"""Batched, memoized per-chunk recomputation-cost estimation.

Benefit weighting and CSR accounting both need, for every chunk a query
touches, the backend work (data pages, source tuples) that recomputing
the chunk would cost.  The estimates are exact and immutable while the
stored data is unchanged, so they are memoized; all chunks a query needs
that are not yet memoized are fetched in **one** batched backend call
(:meth:`repro.backend.engine.BackendEngine.estimate_chunk_work_batch`)
instead of one probe per chunk — a measurable win on miss-heavy streams,
where the old per-chunk probes re-resolved the source table and
re-validated the group-by once per chunk.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Iterable

from repro.backend.engine import BackendEngine
from repro.schema.star import GroupBy

if TYPE_CHECKING:
    from repro.analysis.cost import CostModel
    from repro.query.model import StarQuery

__all__ = ["ChunkWorkEstimator", "estimate_query_full_cost"]


def estimate_query_full_cost(
    backend: BackendEngine,
    cost_model: "CostModel",
    query: "StarQuery",
) -> float:
    """Modelled cost of computing ``query`` at the backend, cache-cold.

    Prices the query through the chunk interface when the engine stores
    chunked data (the work of every chunk the selection touches), else
    through the bitmap access path.  This is the whole-query analogue of
    :class:`ChunkWorkEstimator` and, like it, the only sanctioned home
    for estimator entry-point calls outside the backend itself (R001).
    """
    if backend.chunked_file is not None:
        grid = backend.space.grid(query.groupby)
        numbers = grid.chunk_numbers_for_selection(query.selections)
        pages, tuples = backend.estimate_chunk_work(query.groupby, numbers)
        return cost_model.backend_time(pages, tuples)
    pages = backend.estimate_bitmap_pages(query)
    return cost_model.backend_time(pages)


class ChunkWorkEstimator:
    """Memoized facade over the backend's batched chunk-work estimator.

    The memo is guarded by a lock so concurrent serving workers share
    one estimator: estimates are deterministic functions of the stored
    data, so a racing double-probe would be wasted backend work, not a
    correctness bug — the lock turns it into a single probe.  The lock
    is held across the backend call; the backend's own lock is always
    acquired *inside* estimator or resolver calls, never the reverse, so
    the ordering is acyclic.

    Args:
        backend: The engine whose stored data the estimates describe.
    """

    def __init__(self, backend: BackendEngine) -> None:
        self._backend = backend
        self._memo: dict[tuple[GroupBy, int], tuple[int, int]] = {}
        self._lock = threading.Lock()

    def ensure(
        self, groupby: GroupBy, numbers: Iterable[int]
    ) -> dict[int, tuple[int, int]]:
        """Memoize work for the given chunks; at most one backend call.

        Returns ``{number: (pages, tuples)}`` for every requested chunk.
        """
        numbers = list(numbers)
        with self._lock:
            missing = [
                number for number in numbers
                if (groupby, number) not in self._memo
            ]
            if missing:
                batch = self._backend.estimate_chunk_work_batch(
                    groupby, missing
                )
                for number, work in batch.items():
                    self._memo[(groupby, number)] = work
            return {
                number: self._memo[(groupby, number)]
                for number in numbers
            }

    def work(self, groupby: GroupBy, number: int) -> tuple[int, int]:
        """``(pages, tuples)`` for one chunk (memoized)."""
        return self.ensure(groupby, [number])[number]

    def clear(self) -> None:
        """Drop all memoized estimates (after base-table updates)."""
        with self._lock:
            self._memo.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._memo)
