"""The staged query-execution plan.

The paper's Section 5.2 pipeline (query analysis → ComputeChunkNums →
query splitting → missing-chunk computation → assembly) is modelled as
explicit value objects flowing between small single-purpose stages:

- :class:`AnalyzedQuery` — the output of *query analysis*: the three key
  components of conditions 1–3 (group-by, aggregate list, non-group-by
  predicates) plus the partition list the query decomposes into (chunk
  numbers for chunk caching; the single whole-result partition for the
  query-caching baseline);
- :class:`ResolvedPart` / :class:`Resolution` — the output of the
  *resolver chain*: every partition's rows, tagged with the resolver that
  produced them and the accounting inputs (cache tuples consumed, cost
  saved);
- :class:`ChunkPlan` — the classification of partitions into present /
  derived / missing, derived from the resolution's attribution;
- assembly is a plain array (:func:`select_exact` trims boundary rows).

Stage objects themselves (analyzers, resolvers, assemblers, accountants)
live in :mod:`repro.pipeline.resolvers` and the managers; the executor in
:mod:`repro.pipeline.executor` wires them together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.backend.plans import CostReport
from repro.core.chunk import ChunkKey
from repro.query.model import StarQuery
from repro.schema.star import GroupBy, StarSchema

__all__ = [
    "AnalyzedQuery",
    "ResolvedPart",
    "ResolverOutcome",
    "Resolution",
    "ChunkPlan",
    "select_exact",
]


@dataclass(frozen=True)
class AnalyzedQuery:
    """Output of the analysis stage: reuse key plus partition list.

    Attributes:
        query: The analyzed star query.
        groupby: Condition 1 — level of aggregation.
        aggregates: Condition 2 — the aggregate list.
        fixed_predicates: Condition 3 — non-group-by predicate tags.
        partitions: The units the query splits into, in assembly order
            (chunk numbers for chunk caching; ``(0,)`` for whole-query
            caching).
        meta: Free-form analyzer annotations consumed by later stages
            (e.g. the query-caching analyzer stashes the estimated full
            cost here so resolver and accountant price admission and
            savings consistently).
    """

    query: StarQuery
    groupby: GroupBy
    aggregates: tuple[tuple[str, str], ...]
    fixed_predicates: frozenset[str]
    partitions: tuple[int, ...]
    meta: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_query(
        cls,
        query: StarQuery,
        partitions: tuple[int, ...],
        **meta: Any,
    ) -> "AnalyzedQuery":
        """Build from a query, lifting the three key components."""
        return cls(
            query=query,
            groupby=query.groupby,
            aggregates=query.aggregates,
            fixed_predicates=query.fixed_predicates,
            partitions=tuple(partitions),
            meta=dict(meta),
        )

    def chunk_key(self, number: int) -> ChunkKey:
        """The cache key of one partition under conditions 1–3."""
        return ChunkKey(
            self.groupby, number, self.aggregates, self.fixed_predicates
        )


@dataclass(frozen=True)
class ResolvedPart:
    """One partition's rows, attributed to the resolver that produced it.

    Attributes:
        number: The partition (chunk number).
        rows: The partition's result rows.
        resolver: Name of the resolver that produced the rows.
        tuples_from_cache: Cache-resident tuples consumed to produce the
            rows (the cached rows themselves for a hit; the source tuples
            merged for a derivation) — priced by
            :attr:`repro.analysis.cost.CostModel.cache_tuple_cost`.
        saved: Whether this partition's full recomputation cost counts as
            *saved* in CSR accounting (true for cache hits and in-cache
            derivations; false when the backend did the work).
    """

    number: int
    rows: np.ndarray
    resolver: str
    tuples_from_cache: int = 0
    saved: bool = False


@dataclass(frozen=True)
class ResolverOutcome:
    """What one resolver returned for the partitions it was offered.

    Attributes:
        parts: Partition -> resolved part, for the subset it resolved.
        report: Physical work the resolver performed at the backend
            (None for purely in-tier resolvers).
    """

    parts: dict[int, ResolvedPart] = field(default_factory=dict)
    report: CostReport | None = None


class Resolution:
    """Accumulated output of the whole resolver chain.

    The one mutable object in the stage flow: the executor folds every
    :class:`ResolverOutcome` into it as the chain runs, so it is a plain
    accumulator class, not a (frozen) dataclass value (R003).

    Attributes:
        parts: Every partition's resolved part.
        report: Merged physical-work report across all resolvers.
    """

    def __init__(
        self,
        parts: dict[int, ResolvedPart] | None = None,
        report: CostReport | None = None,
    ) -> None:
        self.parts: dict[int, ResolvedPart] = dict(parts or {})
        self.report: CostReport = (
            report if report is not None else CostReport(access_path="chunk")
        )

    def absorb(self, outcome: ResolverOutcome) -> None:
        """Fold one resolver's outcome into the accumulated state."""
        self.parts.update(outcome.parts)
        if outcome.report is not None:
            self.report = self.report + outcome.report

    def attribution(self) -> dict[str, int]:
        """Resolver name -> number of partitions it resolved."""
        counts: dict[str, int] = {}
        for part in self.parts.values():
            counts[part.resolver] = counts.get(part.resolver, 0) + 1
        return counts

    def tuples_from_cache(self) -> int:
        """Total cache-resident tuples consumed across partitions."""
        return sum(p.tuples_from_cache for p in self.parts.values())


@dataclass(frozen=True)
class ChunkPlan:
    """Partition classification: who served what.

    Attributes:
        present: Partitions served directly from the cache.
        derived: Partitions derived in-tier by aggregating cached data.
        missing: Partitions the backend (or prefetch) had to compute.
    """

    present: tuple[int, ...]
    derived: tuple[int, ...]
    missing: tuple[int, ...]

    @classmethod
    def from_resolution(
        cls, analyzed: AnalyzedQuery, resolution: Resolution
    ) -> "ChunkPlan":
        """Classify partitions by the resolver that produced them.

        By convention the direct-lookup resolver is named ``"cache"`` and
        the in-tier aggregation resolver ``"derive"``; everything else
        counts as a miss that physical work had to fill.
        """
        present: list[int] = []
        derived: list[int] = []
        missing: list[int] = []
        for number in analyzed.partitions:
            part = resolution.parts.get(number)
            if part is None or part.resolver not in ("cache", "derive"):
                missing.append(number)
            elif part.resolver == "cache":
                present.append(number)
            else:
                derived.append(number)
        return cls(
            present=tuple(present),
            derived=tuple(derived),
            missing=tuple(missing),
        )


def select_exact(
    schema: StarSchema,
    query: StarQuery,
    rows: np.ndarray,
    copy_on_full: bool = False,
) -> np.ndarray:
    """Trim rows to the query's exact group-by selections.

    Chunks (and containing cached queries) are a bounding envelope of the
    selection (Section 5.2.3); this drops the boundary rows outside it.
    With ``copy_on_full`` the rows are copied even when nothing is
    trimmed, so cached payloads are never handed out by reference.
    """
    if len(rows) == 0:
        return rows
    mask = np.ones(len(rows), dtype=bool)
    for dim, level, interval in zip(
        schema.dimensions, query.groupby, query.selections
    ):
        if level == 0 or interval is None:
            continue
        column = rows[dim.name]
        mask &= (column >= interval[0]) & (column < interval[1])
    if mask.all():
        return rows.copy() if copy_on_full else rows
    return rows[mask]
