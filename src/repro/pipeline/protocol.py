"""The unified answerer protocol both caching schemes implement.

Anything that answers star queries against a cache — the chunk scheme,
the query-caching baseline, or a future scheme — satisfies
:class:`QueryAnswerer`.  The experiment harness is typed against this
protocol, so streams, figures, and verification runs are agnostic to
*which* scheme is underneath.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.query.model import StarQuery
from repro.schema.star import StarSchema

if TYPE_CHECKING:  # avoid the runtime cycle pipeline -> core.manager
    from repro.backend.engine import BackendEngine
    from repro.core.manager import Answer
    from repro.core.metrics import StreamMetrics
    from repro.core.snapshot import Snapshot

__all__ = ["QueryAnswerer"]


@runtime_checkable
class QueryAnswerer(Protocol):
    """What the harness requires of a caching scheme.

    Attributes:
        schema: The star schema queries are posed against.
        backend: The ground-truth engine underneath the cache (the
            harness verifies answers against it).
        metrics: Accumulated per-query accounting for the stream so far.
    """

    schema: StarSchema
    backend: "BackendEngine"
    metrics: "StreamMetrics"

    def answer(self, query: StarQuery) -> "Answer":
        """Answer one query, updating the cache and stream metrics."""
        ...

    def snapshot(self) -> "Snapshot":
        """A typed snapshot of cache composition and stream aggregates."""
        ...

    def describe_cache(self) -> dict[str, object]:
        """Deprecated: the legacy report dictionary (see ``snapshot()``)."""
        ...

    def invalidate_base_chunks(self, base_numbers: list[int]) -> int:
        """Drop cached state covering updated base data."""
        ...
