"""Single-flight chunk coalescing for the admission front door.

When the front door (:mod:`repro.serve.front`) admits a window of
queries, several of them may need the *same* missing chunk.  Without
coordination each would recompute it at the backend — the classic
thundering-herd shape.  The :class:`FlightTable` turns every such
planned-duplicate chunk into a **flight**: the first requester (in
canonical admission order) computes the chunk once and *publishes* it;
every later requester in the window *claims* the published rows instead
of touching the backend.

Accounting follows the fair-share contract:

- **Physical pages** are attributed wholly to the leader's fetch, so
  global I/O conservation (Σ record pages == disk read delta) stays
  integer-exact.
- **Modelled time** is split fairly: at publish time the chunk's share
  of the fetch's modelled cost is divided evenly over the publisher and
  the requesters still waiting; each waiter is charged its share
  (positive ``CostReport.coalesce_time``) and the publisher is credited
  the complement (negative), so the flight's adjustments sum to zero.
- **Faults** propagate to everyone: if the fetch fails, every waiter
  receives a fresh clone of the same typed fault (without the leader's
  cost report, so failed pages are counted exactly once).

The table is driven through three hooks:

- :meth:`FlightTable.masked` — consulted by
  :class:`~repro.pipeline.resolvers.CacheHitResolver` so flight chunks
  bypass the cache (a waiter must take the flight path, not a free hit
  on the row the leader just admitted; with ``coalesce=False`` the
  bypass is what forces every requester to refetch, which is the
  baseline the benchmark compares against);
- :class:`FlightResolver` — a chain link ahead of the cache that claims
  published chunks and re-raises published failures;
- :meth:`FlightTable.publish` / :meth:`FlightTable.publish_failure` —
  called by :class:`~repro.pipeline.resolvers.BackendChunkResolver`
  after its terminal fetch.

Execution within a window is serialized in canonical sequence order by
the front door's turnstile, so the table needs no locking of its own;
the thread-local :meth:`FlightTable.begin` / :meth:`FlightTable.end`
bracket tells the hooks which admitted query is currently executing.
With no bracket active every hook is inert, so a pipeline that happens
to share resolvers with a front door still executes bit-identically
outside it.
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.analysis.cost import CostModel
from repro.backend.plans import CostReport
from repro.core.cache import ChunkStore
from repro.core.chunk import ChunkKey
from repro.exceptions import BackendFault, DiskFault, InjectedFault
from repro.pipeline.resolvers import PartitionResolver
from repro.pipeline.stages import (
    AnalyzedQuery,
    ResolvedPart,
    ResolverOutcome,
)
from repro.pipeline.work import ChunkWorkEstimator
from repro.schema.star import GroupBy

__all__ = ["ChunkFlight", "FlightTable", "FlightResolver", "clone_fault"]


def clone_fault(fault: InjectedFault) -> InjectedFault:
    """A fresh instance of the same typed fault, for one waiter.

    The clone carries the original's classification (class, message,
    transience, site, source level) but *not* its cost report: the
    leader's failed attempt already accounts for the wasted physical
    I/O, so each waiter's failure must report zero pages or the global
    conservation check would double-count the fetch.
    """
    message = str(fault.args[0]) if fault.args else str(fault)
    clone: InjectedFault
    if isinstance(fault, DiskFault):
        clone = DiskFault(
            message,
            page_id=fault.page_id,
            transient=fault.transient,
            site=fault.site,
        )
    elif isinstance(fault, BackendFault):
        clone = BackendFault(
            message,
            operation=fault.operation,
            transient=fault.transient,
            site=fault.site,
        )
    else:
        clone = InjectedFault(
            message, transient=fault.transient, site=fault.site
        )
    clone.source_level = fault.source_level
    return clone


class ChunkFlight:
    """One coalesced chunk: a planned duplicate within a window.

    A mutable accumulator (leader publishes into it, waiters mark
    themselves served), so a plain class rather than a frozen pipeline
    value (R003) — like :class:`~repro.pipeline.trace.StageTrace`.

    Attributes:
        key: The chunk's cache key.
        groupby: The chunk's group-by (for work estimation).
        number: The chunk number within the group-by's grid.
        requesters: Admission sequence numbers of every query in the
            window that planned to fetch this chunk, ascending; the
            first is the expected leader.
        state: ``"pending"`` until the leader publishes, then
            ``"done"`` or ``"failed"``.
        rows: The published chunk rows (``state == "done"``).
        pages: Estimated data pages of the chunk — the physical reads
            each waiter avoided (feeds the ``shared_pages`` counter).
        share: Fair-share modelled time charged to each waiter's claim.
        fault: The published failure (``state == "failed"``), cloned
            per waiter.
        served: Requesters already served (published to, claimed by,
            or failed), excluded from later share splits.
    """

    def __init__(
        self,
        key: ChunkKey,
        groupby: GroupBy,
        number: int,
        requesters: tuple[int, ...],
    ) -> None:
        self.key = key
        self.groupby = groupby
        self.number = number
        self.requesters = requesters
        self.state = "pending"
        self.rows: np.ndarray | None = None
        self.pages = 0
        self.share = 0.0
        self.fault: InjectedFault | None = None
        self.served: set[int] = set()


class FlightTable:
    """In-flight registry of coalesced chunks for one front door.

    Args:
        cost_model: Prices the leader's fetch for fair-share splits.
        estimator: Memoized per-chunk work estimates, used both to
            apportion a batched fetch's cost over its chunks and to
            price the pages a waiter avoided.
        coalesce: When False the table still *masks* flight chunks away
            from the cache (so every requester physically refetches —
            the benchmark's no-coalescing baseline) but never publishes
            or serves a flight.

    Attributes:
        flights: Chunk fetches published to at least one waiter.
        coalesced_chunks: Chunk requests served from a flight instead
            of the backend.
        shared_pages: Estimated physical pages those claims avoided.
    """

    def __init__(
        self,
        cost_model: CostModel,
        estimator: ChunkWorkEstimator,
        coalesce: bool = True,
    ) -> None:
        self.cost_model = cost_model
        self.estimator = estimator
        self.coalesce = coalesce
        self.flights = 0
        self.coalesced_chunks = 0
        self.shared_pages = 0
        self._entries: dict[ChunkKey, ChunkFlight] = {}
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Window planning (front-door side)
    # ------------------------------------------------------------------
    def plan_window(
        self,
        cache: ChunkStore,
        requests: Sequence[tuple[int, AnalyzedQuery]],
    ) -> int:
        """Register one admission window's planned-duplicate chunks.

        Peeks (never touches replacement or hit statistics) at the
        cache for every chunk every admitted query needs; a chunk that
        is missing *and* wanted by two or more queries becomes a
        :class:`ChunkFlight`.  Replaces the previous window's entries.

        Returns:
            The number of flights planned.
        """
        self._entries = {}
        wanted: dict[ChunkKey, list[int]] = {}
        info: dict[ChunkKey, tuple[GroupBy, int]] = {}
        for seq, analyzed in requests:
            for number in analyzed.partitions:
                key = analyzed.chunk_key(number)
                seqs = wanted.get(key)
                if seqs is not None:
                    if seq not in seqs:
                        seqs.append(seq)
                    continue
                if cache.peek(key) is not None:
                    continue
                wanted[key] = [seq]
                info[key] = (analyzed.groupby, number)
        for key, seqs in wanted.items():
            if len(seqs) < 2:
                continue
            groupby, number = info[key]
            self._entries[key] = ChunkFlight(
                key=key,
                groupby=groupby,
                number=number,
                requesters=tuple(sorted(seqs)),
            )
        return len(self._entries)

    # ------------------------------------------------------------------
    # Execution bracket (worker side)
    # ------------------------------------------------------------------
    def begin(self, seq: int) -> None:
        """Mark the calling thread as executing admitted query ``seq``."""
        self._local.seq = seq

    def end(self) -> None:
        """Clear the calling thread's execution bracket."""
        self._local.seq = None

    def _current(self) -> int | None:
        seq: int | None = getattr(self._local, "seq", None)
        return seq

    # ------------------------------------------------------------------
    # Resolver hooks
    # ------------------------------------------------------------------
    def masked(
        self, analyzed: AnalyzedQuery, outstanding: Sequence[int]
    ) -> frozenset[int]:
        """Chunk numbers the cache resolver must skip for this query.

        A flight chunk must flow through the flight path (or, for the
        leader and under ``coalesce=False``, through the backend) —
        never resolve as a cache hit, even after the leader admits it.
        """
        seq = self._current()
        if seq is None or not self._entries:
            return frozenset()
        masked: set[int] = set()
        for number in outstanding:
            entry = self._entries.get(analyzed.chunk_key(number))
            if entry is not None and seq in entry.requesters:
                masked.add(number)
        return frozenset(masked)

    def claim(
        self, analyzed: AnalyzedQuery, outstanding: Sequence[int]
    ) -> tuple[dict[int, ResolvedPart], float]:
        """Serve whatever published flights this query is waiting on.

        Returns ``(parts, charge)`` — the claimed chunk rows keyed by
        number, and the total fair-share modelled time to charge the
        claimer.  Raises a cloned typed fault if any awaited flight
        failed (checked before claiming anything, so a failed query
        never half-consumes its shares).  Pending flights are left
        outstanding: the leader falls through to the backend, and if
        the leader itself failed on an unrelated chunk, the next
        requester in sequence order inherits the fetch.
        """
        seq = self._current()
        if seq is None or not self._entries:
            return {}, 0.0
        awaiting: list[tuple[int, ChunkFlight]] = []
        for number in outstanding:
            entry = self._entries.get(analyzed.chunk_key(number))
            if entry is None or seq not in entry.requesters:
                continue
            if seq in entry.served:
                continue
            awaiting.append((number, entry))
        for _number, entry in awaiting:
            if entry.state == "failed" and entry.fault is not None:
                entry.served.add(seq)
                raise clone_fault(entry.fault)
        parts: dict[int, ResolvedPart] = {}
        charge = 0.0
        for number, entry in awaiting:
            if entry.state != "done" or entry.rows is None:
                continue
            entry.served.add(seq)
            parts[number] = ResolvedPart(
                number=number, rows=entry.rows, resolver="flight"
            )
            charge += entry.share
            self.coalesced_chunks += 1
            self.shared_pages += entry.pages
        return parts, charge

    # ------------------------------------------------------------------
    # Backend hooks
    # ------------------------------------------------------------------
    def publish(
        self,
        analyzed: AnalyzedQuery,
        computed: Mapping[int, np.ndarray],
        report: CostReport,
    ) -> float:
        """Publish freshly fetched chunks to their waiting flights.

        Apportions the fetch's modelled time over the batch's chunks
        (proportionally to their estimated backend work) and, for every
        chunk with a pending flight, splits that chunk's cost evenly
        over the publisher and the requesters not yet served.

        Returns:
            The publisher's credit: minus the waiters' summed shares
            (``<= 0``), to be added to the fetch report's
            ``coalesce_time``.
        """
        seq = self._current()
        if seq is None or not self.coalesce or not self._entries:
            return 0.0
        pending: dict[int, ChunkFlight] = {}
        for number in computed:
            entry = self._entries.get(analyzed.chunk_key(number))
            if (
                entry is not None
                and seq in entry.requesters
                and entry.state == "pending"
            ):
                pending[number] = entry
        if not pending:
            return 0.0
        total_time = self.cost_model.time(report)
        work = self.estimator.ensure(analyzed.groupby, computed.keys())
        weights = {
            number: self.cost_model.backend_time(pages, tuples)
            for number, (pages, tuples) in work.items()
        }
        weight_sum = sum(weights.values())
        credit = 0.0
        for number, entry in pending.items():
            if weight_sum > 0.0:
                chunk_time = total_time * weights[number] / weight_sum
            else:
                chunk_time = total_time / len(computed)
            remaining = [
                s
                for s in entry.requesters
                if s != seq and s not in entry.served
            ]
            entry.share = chunk_time / (len(remaining) + 1)
            credit -= entry.share * len(remaining)
            entry.rows = computed[number]
            entry.pages = int(work[number][0])
            entry.state = "done"
            entry.served.add(seq)
            self.flights += 1
        return credit

    def publish_failure(
        self,
        analyzed: AnalyzedQuery,
        numbers: Iterable[int],
        fault: InjectedFault,
    ) -> None:
        """Fail every pending flight the aborted fetch was leading.

        Each waiter will receive its own clone of ``fault`` when it
        claims, so a coalesced failure surfaces the same typed error to
        every query that depended on the fetch.
        """
        seq = self._current()
        if seq is None or not self.coalesce or not self._entries:
            return
        for number in numbers:
            entry = self._entries.get(analyzed.chunk_key(number))
            if (
                entry is not None
                and seq in entry.requesters
                and entry.state == "pending"
            ):
                entry.state = "failed"
                entry.fault = fault
                entry.served.add(seq)

    def reset(self) -> None:
        """Zero the counters and drop any previous window's entries.

        The front door calls this at the top of every run so a reused
        session starts from a clean table (the thread-local execution
        brackets are per-thread and already cleared by ``end()``).
        """
        self.flights = 0
        self.coalesced_chunks = 0
        self.shared_pages = 0
        self._entries = {}

    def stats(self) -> dict[str, int]:
        """The coalescing counters (for reports and digests)."""
        return {
            "flights": self.flights,
            "coalesced_chunks": self.coalesced_chunks,
            "shared_pages": self.shared_pages,
        }


class FlightResolver(PartitionResolver):
    """Chain link serving chunks from the window's flight table.

    Sits *ahead* of the cache link so a waiter consumes its flight
    (charged its fair share) rather than a free cache hit on the row
    the leader just admitted.  Claimed parts count as *missing* in the
    chunk plan (``saved=False``) — the work was done this window, only
    not by this query.
    """

    name = "flight"

    def __init__(self, table: FlightTable) -> None:
        self.table = table

    def resolve(
        self, analyzed: AnalyzedQuery, outstanding: Sequence[int]
    ) -> ResolverOutcome:
        parts, charge = self.table.claim(analyzed, outstanding)
        if not parts:
            return ResolverOutcome()
        report = CostReport(access_path="flight", coalesce_time=charge)
        return ResolverOutcome(parts=parts, report=report)
