"""Per-stage execution instrumentation.

Every query answered through the staged pipeline carries an
:class:`ExecutionTrace`: one :class:`StageTrace` per pipeline stage
(analysis, each resolver in the chain, assembly, accounting) with wall
time, the modelled time attributed to the stage's physical work, and the
partition counts it handled, plus a per-resolver attribution map telling
which link of the chain answered which share of the query.

Traces are deliberately dependency-free (plain objects over floats and
ints) so :class:`repro.core.metrics.StreamMetrics` can aggregate them
without importing the pipeline package.  Both classes are mutable
accumulators — :class:`StageTimer` fills a :class:`StageTrace` in as the
stage runs, and the executor appends to an :class:`ExecutionTrace` stage
by stage — so they are plain classes, not frozen pipeline values (R003).

Under the concurrent serving layer (:mod:`repro.serve`) a stage's wall
time includes time spent *blocked* on shared locks (cache shards, the
backend).  Lock owners report their waits through the **blocked clock**
(:func:`record_blocked_wait`), a thread-local accumulator that
:class:`StageTimer` drains into the enclosing stage's
``lock_wait_seconds`` — so contention is attributed to the exact stage
that paid it, without the locking code knowing anything about traces.
"""

from __future__ import annotations

import threading
import time
from typing import Iterable

__all__ = [
    "StageTrace",
    "ExecutionTrace",
    "StageTimer",
    "record_blocked_wait",
    "drain_blocked_wait",
    "aggregate_stage_traces",
    "aggregate_resolver_attribution",
]


_blocked = threading.local()


def record_blocked_wait(seconds: float) -> None:
    """Credit lock-wait seconds to the calling thread's blocked clock.

    Called by lock owners (e.g. the sharded cache) after a contended
    acquisition; the running :class:`StageTimer`, if any, drains the
    clock into its stage when the stage closes.
    """
    _blocked.seconds = getattr(_blocked, "seconds", 0.0) + seconds


def drain_blocked_wait() -> float:
    """Return and zero the calling thread's accumulated blocked time."""
    seconds: float = getattr(_blocked, "seconds", 0.0)
    _blocked.seconds = 0.0
    return seconds


class StageTrace:
    """Instrumentation of one pipeline stage for one query.

    Attributes:
        name: Stage name (``"analyze"``, ``"resolve:cache"``,
            ``"resolve:backend"``, ``"assemble"``, ``"account"``).
        wall_seconds: Real elapsed time in the stage.
        modelled_time: Simulated cost-model time attributed to the stage
            (backend resolvers: the modelled cost of their physical I/O;
            0.0 for purely administrative stages).
        partitions: Partitions (chunks) the stage handled — for a
            resolver, the number it *resolved*.
        pages_read: Physical backend pages the stage caused to be read.
        tuples_scanned: Backend tuples the stage pushed through operators.
        lock_wait_seconds: Portion of ``wall_seconds`` spent blocked on
            shared locks (drained from the thread's blocked clock; 0.0
            outside the concurrent serving layer).
        faults: Injected faults the stage absorbed (0 outside
            :mod:`repro.faults` injection, like the three below).
        retries: Retry attempts the stage's recovery policy made.
        degraded: Times the stage fell back to recomputing from base
            chunks.
        backoff_seconds: Simulated retry-backoff seconds charged to the
            stage.
        coalesce_seconds: Signed simulated seconds from single-flight
            coalescing (waiter fair-share charges, leader credits; 0.0
            outside the front door).
    """

    def __init__(
        self,
        name: str,
        wall_seconds: float = 0.0,
        modelled_time: float = 0.0,
        partitions: int = 0,
        pages_read: int = 0,
        tuples_scanned: int = 0,
        lock_wait_seconds: float = 0.0,
        faults: int = 0,
        retries: int = 0,
        degraded: int = 0,
        backoff_seconds: float = 0.0,
        coalesce_seconds: float = 0.0,
    ) -> None:
        self.name = name
        self.wall_seconds = wall_seconds
        self.modelled_time = modelled_time
        self.partitions = partitions
        self.pages_read = pages_read
        self.tuples_scanned = tuples_scanned
        self.lock_wait_seconds = lock_wait_seconds
        self.faults = faults
        self.retries = retries
        self.degraded = degraded
        self.backoff_seconds = backoff_seconds
        self.coalesce_seconds = coalesce_seconds

    def __repr__(self) -> str:
        return (
            f"StageTrace(name={self.name!r}, "
            f"wall_seconds={self.wall_seconds!r}, "
            f"modelled_time={self.modelled_time!r}, "
            f"partitions={self.partitions!r}, "
            f"pages_read={self.pages_read!r}, "
            f"tuples_scanned={self.tuples_scanned!r}, "
            f"lock_wait_seconds={self.lock_wait_seconds!r}, "
            f"faults={self.faults!r}, "
            f"retries={self.retries!r}, "
            f"degraded={self.degraded!r}, "
            f"backoff_seconds={self.backoff_seconds!r}, "
            f"coalesce_seconds={self.coalesce_seconds!r})"
        )


class ExecutionTrace:
    """Full per-stage instrumentation of one answered query.

    Attributes:
        stages: One entry per executed stage, in execution order.
        resolved_by: Resolver name -> partitions it resolved (resolver
            attribution; resolvers that ran but resolved nothing appear
            with 0).
        partitions_total: Partitions the query decomposed into.
        backend_pages: Total physical pages read while answering.
        modelled_time: The answer's total modelled execution time.
    """

    def __init__(
        self,
        stages: list[StageTrace] | None = None,
        resolved_by: dict[str, int] | None = None,
        partitions_total: int = 0,
        backend_pages: int = 0,
        modelled_time: float = 0.0,
    ) -> None:
        self.stages: list[StageTrace] = list(stages or [])
        self.resolved_by: dict[str, int] = dict(resolved_by or {})
        self.partitions_total = partitions_total
        self.backend_pages = backend_pages
        self.modelled_time = modelled_time

    def stage(self, name: str) -> StageTrace | None:
        """The first stage with the given name, or None."""
        for entry in self.stages:
            if entry.name == name:
                return entry
        return None

    @property
    def wall_seconds(self) -> float:
        """Total wall time across all stages."""
        return sum(entry.wall_seconds for entry in self.stages)

    @property
    def lock_wait_seconds(self) -> float:
        """Total time this query spent blocked on shared locks."""
        return sum(entry.lock_wait_seconds for entry in self.stages)

    def summary(self) -> dict[str, object]:
        """Compact dictionary form (for logs and reports)."""
        return {
            "wall_seconds": self.wall_seconds,
            "modelled_time": self.modelled_time,
            "partitions_total": self.partitions_total,
            "backend_pages": self.backend_pages,
            "resolved_by": dict(self.resolved_by),
            "stages": {
                entry.name: entry.wall_seconds for entry in self.stages
            },
        }


class StageTimer:
    """Context manager appending a timed :class:`StageTrace`.

    Example:
        >>> trace = ExecutionTrace()
        >>> with StageTimer(trace, "analyze") as stage:
        ...     stage.partitions = 4
        >>> trace.stages[0].name
        'analyze'
    """

    def __init__(self, trace: ExecutionTrace, name: str) -> None:
        self._trace = trace
        self.stage = StageTrace(name=name)
        self._start = 0.0

    def __enter__(self) -> StageTrace:
        # Waits accumulated between stages belong to no stage; zero the
        # blocked clock so this stage only absorbs its own waits.
        drain_blocked_wait()
        self._start = time.perf_counter()
        return self.stage

    def __exit__(self, *exc_info: object) -> None:
        self.stage.wall_seconds = time.perf_counter() - self._start
        self.stage.lock_wait_seconds = drain_blocked_wait()
        self._trace.stages.append(self.stage)


def aggregate_stage_traces(
    traces: Iterable[ExecutionTrace],
) -> dict[str, dict[str, float]]:
    """Aggregate many traces into per-stage totals.

    Returns a mapping ``stage name -> {"calls", "wall_seconds",
    "modelled_time", "partitions", "pages_read", "tuples_scanned",
    "lock_wait_seconds", "faults", "retries", "degraded",
    "backoff_seconds", "coalesce_seconds"}`` summed over all traces, in
    first-seen stage order.
    """
    totals: dict[str, dict[str, float]] = {}
    for trace in traces:
        for entry in trace.stages:
            bucket = totals.setdefault(
                entry.name,
                {
                    "calls": 0.0,
                    "wall_seconds": 0.0,
                    "modelled_time": 0.0,
                    "partitions": 0.0,
                    "pages_read": 0.0,
                    "tuples_scanned": 0.0,
                    "lock_wait_seconds": 0.0,
                    "faults": 0.0,
                    "retries": 0.0,
                    "degraded": 0.0,
                    "backoff_seconds": 0.0,
                    "coalesce_seconds": 0.0,
                },
            )
            bucket["calls"] += 1
            bucket["wall_seconds"] += entry.wall_seconds
            bucket["modelled_time"] += entry.modelled_time
            bucket["partitions"] += entry.partitions
            bucket["pages_read"] += entry.pages_read
            bucket["tuples_scanned"] += entry.tuples_scanned
            bucket["lock_wait_seconds"] += entry.lock_wait_seconds
            bucket["faults"] += entry.faults
            bucket["retries"] += entry.retries
            bucket["degraded"] += entry.degraded
            bucket["backoff_seconds"] += entry.backoff_seconds
            bucket["coalesce_seconds"] += entry.coalesce_seconds
    return totals


def aggregate_resolver_attribution(
    traces: Iterable[ExecutionTrace],
) -> dict[str, int]:
    """Sum resolver attribution maps over many traces."""
    totals: dict[str, int] = {}
    for trace in traces:
        for name, count in trace.resolved_by.items():
            totals[name] = totals.get(name, 0) + count
    return totals
