"""The resolver chain: composable strategies for filling partitions.

A :class:`PartitionResolver` is one link in the chain the pipeline walks
to fill a query's partitions.  Each link is offered the partitions still
outstanding and returns the subset it can produce; the chain for chunk
caching is

    cache-hit  →  in-cache derivation  →  drill-down prefetch  →  backend

where the middle two links are the paper's Section 7 future-work
extensions and can be toggled per experiment.  The backend link is total
(it resolves everything it is offered), so the chain always terminates.

Resolvers share a :class:`ChunkAdmitter`, which owns admission control:
pricing newly produced chunks (via the batched work estimator), entering
them into the cache, and maintaining the registry of group-bys ever
cached per compatibility shape that derivation searches.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping, Protocol, Sequence

import numpy as np

from repro.backend.aggregate import reaggregate
from repro.backend.engine import BackendEngine
from repro.backend.plans import CostReport
from repro.chunks.closure import source_chunk_numbers
from repro.chunks.grid import ChunkSpace
from repro.core.cache import ChunkStore
from repro.core.chunk import CachedChunk, CachedQuery
from repro.exceptions import InjectedFault, PipelineError
from repro.pipeline.stages import (
    AnalyzedQuery,
    ResolvedPart,
    ResolverOutcome,
)
from repro.pipeline.work import ChunkWorkEstimator
from repro.query.model import StarQuery
from repro.schema.star import GroupBy, StarSchema

if TYPE_CHECKING:  # flight.py imports us; runtime edge stays one-way
    from repro.pipeline.flight import FlightTable

__all__ = [
    "DERIVABLE_AGGREGATES",
    "WHOLE_RESULT",
    "PartitionResolver",
    "ChunkAdmitter",
    "CacheHitResolver",
    "DerivationResolver",
    "PrefetchResolver",
    "RetryPolicy",
    "BackendChunkResolver",
    "QueryResultStore",
    "QueryHitResolver",
    "QueryBackendResolver",
]

#: Aggregates whose chunk partials can be merged in the middle tier.
DERIVABLE_AGGREGATES = frozenset({"sum", "count", "min", "max"})

#: The single partition a whole-query answer decomposes into.
WHOLE_RESULT = 0


class PartitionResolver(ABC):
    """One link of the resolver chain.

    Attributes:
        name: Stable identifier used for trace attribution and plan
            classification (``"cache"`` and ``"derive"`` carry meaning in
            :meth:`repro.pipeline.stages.ChunkPlan.from_resolution`).
    """

    name: str = "resolver"

    @abstractmethod
    def resolve(
        self, analyzed: AnalyzedQuery, outstanding: Sequence[int]
    ) -> ResolverOutcome:
        """Produce rows for whichever outstanding partitions this
        strategy can serve; unreturned partitions flow down the chain."""


class ChunkAdmitter:
    """Admission control shared by the chain's producing resolvers.

    Prices each new chunk with the batched work estimator, inserts it
    under the benefit-weighted policy, and records the group-by in the
    per-shape registry that in-cache derivation searches.  The registry
    is guarded by its own lock so concurrent serving workers can admit
    chunks of the same shape simultaneously; cache insertion itself is
    delegated to the store, which owns its own synchronization.

    Args:
        space: Shared chunk geometry (for benefit weights).
        cache: The chunk cache entries are admitted to.
        estimator: Batched recomputation-work estimator.
    """

    def __init__(
        self,
        space: ChunkSpace,
        cache: ChunkStore,
        estimator: ChunkWorkEstimator,
    ) -> None:
        self.space = space
        self.cache = cache
        self.estimator = estimator
        self._seen_groupbys: dict[tuple[object, ...], set[GroupBy]] = {}
        self._registry_lock = threading.Lock()

    def admit(
        self, query: StarQuery, chunks: Mapping[int, np.ndarray]
    ) -> None:
        """Admit freshly produced chunks of ``query``'s shape."""
        if not chunks:
            return
        benefit = self.space.chunk_benefit(query.groupby)
        work = self.estimator.ensure(query.groupby, chunks.keys())
        keyed = AnalyzedQuery.from_query(query, ())
        for number, rows in chunks.items():
            pages, _ = work[number]
            key = keyed.chunk_key(number)
            self.cache.put(
                CachedChunk(
                    key=key, rows=rows, benefit=benefit,
                    compute_pages=float(pages),
                )
            )
        shape = (query.aggregates, query.fixed_predicates)
        with self._registry_lock:
            self._seen_groupbys.setdefault(shape, set()).add(
                query.groupby
            )

    def seen_groupbys(self, shape: tuple[object, ...]) -> Iterable[GroupBy]:
        """Group-bys ever cached under a compatibility shape (snapshot)."""
        with self._registry_lock:
            return tuple(self._seen_groupbys.get(shape, ()))


class CacheHitResolver(PartitionResolver):
    """Direct cache lookup — the paper's *query splitting* step.

    Splits the offered partitions into ``CNumsPresent`` (resolved here)
    and ``CNumsMissing`` (left outstanding); hits touch replacement
    state, misses count in the cache's statistics.

    When a :class:`~repro.pipeline.flight.FlightTable` is attached
    (only under the admission front door), chunks the table has marked
    as in-flight are skipped entirely — no lookup, no statistics — so
    they resolve through the flight path or the backend instead.
    """

    name = "cache"

    def __init__(
        self, cache: ChunkStore, flight: "FlightTable | None" = None
    ) -> None:
        self.cache = cache
        self.flight = flight

    def resolve(
        self, analyzed: AnalyzedQuery, outstanding: Sequence[int]
    ) -> ResolverOutcome:
        parts: dict[int, ResolvedPart] = {}
        masked: frozenset[int] = frozenset()
        if self.flight is not None:
            masked = self.flight.masked(analyzed, outstanding)
        for number in outstanding:
            if number in masked:
                continue
            entry = self.cache.get(analyzed.chunk_key(number))
            if entry is not None:
                parts[number] = ResolvedPart(
                    number=number,
                    rows=entry.rows,
                    resolver=self.name,
                    tuples_from_cache=entry.num_rows,
                    saved=True,
                )
        return ResolverOutcome(parts=parts)


class DerivationResolver(PartitionResolver):
    """In-cache derivation (Section 7): aggregate cached finer chunks.

    A missing chunk is derivable when *all* of its source chunks under
    some finer cached group-by are resident; the closure property
    guarantees the sources exactly tile the target.  Derived chunks are
    admitted so subsequent queries hit them directly.
    """

    name = "derive"

    def __init__(
        self,
        schema: StarSchema,
        space: ChunkSpace,
        cache: ChunkStore,
        backend: BackendEngine,
        admitter: ChunkAdmitter,
    ) -> None:
        self.schema = schema
        self.space = space
        self.cache = cache
        self.backend = backend
        self.admitter = admitter

    def resolve(
        self, analyzed: AnalyzedQuery, outstanding: Sequence[int]
    ) -> ResolverOutcome:
        query = analyzed.query
        if not all(
            a in DERIVABLE_AGGREGATES for _, a in analyzed.aggregates
        ):
            return ResolverOutcome()
        shape = (analyzed.aggregates, analyzed.fixed_predicates)
        candidates = [
            groupby
            for groupby in self.admitter.seen_groupbys(shape)
            if groupby != analyzed.groupby
            and self.schema.is_rollup_of(analyzed.groupby, groupby)
        ]
        if not candidates:
            return ResolverOutcome()
        parts: dict[int, ResolvedPart] = {}
        for number in outstanding:
            outcome = self._derive_one(analyzed, number, candidates)
            if outcome is not None:
                rows, source_tuples = outcome
                parts[number] = ResolvedPart(
                    number=number,
                    rows=rows,
                    resolver=self.name,
                    tuples_from_cache=source_tuples,
                    saved=True,
                )
        if parts:
            self.admitter.admit(
                query, {n: p.rows for n, p in parts.items()}
            )
        return ResolverOutcome(parts=parts)

    def _derive_one(
        self,
        analyzed: AnalyzedQuery,
        number: int,
        candidates: list[GroupBy],
    ) -> tuple[np.ndarray, int] | None:
        for source_groupby in candidates:
            source_numbers = source_chunk_numbers(
                self.space, analyzed.groupby, number, source_groupby
            )
            source_analyzed = AnalyzedQuery(
                query=analyzed.query,
                groupby=source_groupby,
                aggregates=analyzed.aggregates,
                fixed_predicates=analyzed.fixed_predicates,
                partitions=(),
            )
            entries = []
            for source_number in source_numbers:
                entry = self.cache.peek(
                    source_analyzed.chunk_key(source_number)
                )
                if entry is None:
                    entries = None
                    break
                entries.append(entry)
            if entries is None:
                continue
            # All sources resident: touch them (they earned their keep)
            # and merge.
            for entry in entries:
                self.cache.get(entry.key)
            source_rows = [e.rows for e in entries if len(e.rows)]
            if source_rows:
                stacked = np.concatenate(source_rows)
            else:
                stacked = entries[0].rows
            merged = reaggregate(
                self.schema,
                stacked,
                source_groupby,
                analyzed.groupby,
                analyzed.aggregates,
                self.backend.mapper,
            )
            return merged, len(stacked)
        return None


class PrefetchResolver(PartitionResolver):
    """Aggressive drill-down prefetch (the paper's second Section 7 idea).

    Missing chunks are computed one hierarchy level *finer* on every
    grouped dimension (same base I/O — the base chunks are identical),
    the detailed chunks are cached, and the requested level is derived in
    the middle tier; a subsequent drill-down then hits the cache.  Only
    engages for decomposable aggregates with a finer level available —
    otherwise it resolves nothing and the chain falls through to the
    backend.
    """

    name = "prefetch"

    def __init__(
        self,
        schema: StarSchema,
        space: ChunkSpace,
        backend: BackendEngine,
        admitter: ChunkAdmitter,
    ) -> None:
        self.schema = schema
        self.space = space
        self.backend = backend
        self.admitter = admitter

    def prefetch_groupby(self, groupby: GroupBy) -> GroupBy | None:
        """One level finer on every grouped dimension, or None if there
        is no finer level anywhere (already at full detail)."""
        finer = tuple(
            min(level + 1, dim.leaf_level) if level > 0 else 0
            for dim, level in zip(self.schema.dimensions, groupby)
        )
        return finer if finer != tuple(groupby) else None

    def resolve(
        self, analyzed: AnalyzedQuery, outstanding: Sequence[int]
    ) -> ResolverOutcome:
        query = analyzed.query
        if not all(
            a in DERIVABLE_AGGREGATES for _, a in analyzed.aggregates
        ):
            return ResolverOutcome()
        finer = self.prefetch_groupby(analyzed.groupby)
        if finer is None:
            return ResolverOutcome()
        # The fine chunks tiling each missing coarse chunk.
        fine_numbers: set[int] = set()
        sources: dict[int, list[int]] = {}
        for number in outstanding:
            numbers = source_chunk_numbers(
                self.space, analyzed.groupby, number, finer
            )
            sources[number] = numbers
            fine_numbers.update(numbers)
        fine_chunks, report = self.backend.compute_chunks(
            finer, sorted(fine_numbers), analyzed.aggregates,
            leaf_filters=query.effective_dim_filters(self.schema),
        )
        # Cache the detailed chunks (the aggressive part).
        fine_query = StarQuery(
            groupby=finer,
            selections=(None,) * self.schema.num_dimensions,
            aggregates=analyzed.aggregates,
            dim_filters=query.dim_filters,
            fixed_predicates=analyzed.fixed_predicates,
        )
        self.admitter.admit(fine_query, fine_chunks)
        # Derive the requested chunks in the middle tier.
        parts: dict[int, ResolvedPart] = {}
        for number in outstanding:
            chunk_parts = [
                fine_chunks[src] for src in sources[number]
                if len(fine_chunks[src])
            ]
            if chunk_parts:
                stacked = np.concatenate(chunk_parts)
                report.tuples_scanned += len(stacked)
                rows = reaggregate(
                    self.schema,
                    stacked,
                    finer,
                    analyzed.groupby,
                    analyzed.aggregates,
                    self.backend.mapper,
                )
            else:
                rows = query.result_format(self.schema).empty()
            parts[number] = ResolvedPart(
                number=number, rows=rows, resolver=self.name
            )
        self.admitter.admit(query, {n: p.rows for n, p in parts.items()})
        return ResolverOutcome(parts=parts, report=report)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with deterministic exponential backoff.

    Backoff is charged in *simulated* seconds (it lands in
    ``CostReport.backoff_time`` and from there in modelled query time);
    nothing ever sleeps, so retries are free in wall-clock terms and
    byte-for-byte reproducible.

    Attributes:
        max_attempts: Attempts per source level (>= 1); the degrade path
            gets a fresh budget.
        backoff_base: Simulated seconds before the first retry.
        backoff_factor: Multiplier applied per subsequent retry.
    """

    max_attempts: int = 3
    backoff_base: float = 0.5
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise PipelineError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0.0 or self.backoff_factor < 0.0:
            raise PipelineError(
                "backoff_base and backoff_factor must be >= 0, got "
                f"{self.backoff_base} and {self.backoff_factor}"
            )

    def backoff(self, attempt: int) -> float:
        """Simulated backoff before retry number ``attempt`` (0-based)."""
        return self.backoff_base * self.backoff_factor**attempt


class BackendChunkResolver(PartitionResolver):
    """Terminal link: compute missing chunks through the chunk interface.

    Total by construction — every partition it is offered comes back with
    rows — so a chain ending in this resolver always completes.

    Recovery (exercised only under :mod:`repro.faults` injection; the
    no-fault path is value-identical to a plain backend call):

    - a **transient** :class:`~repro.exceptions.InjectedFault` is
      retried up to ``retry.max_attempts`` times with deterministic
      backoff charged to the outcome's ``backoff_time``;
    - a fault that exhausts its retries (or is permanent) while reading
      a materialized **aggregate** table degrades: the chunks are
      recomputed from base chunks (``prefer_base=True``) under a fresh
      retry budget;
    - a fault that survives both paths is re-raised with the *combined*
      cost of every attempt attached, so even a failed query conserves
      global I/O accounting.

    Wasted I/O from failed attempts is merged into the final outcome
    report, keeping trace conservation exact under faults.
    """

    name = "backend"

    def __init__(
        self,
        schema: StarSchema,
        backend: BackendEngine,
        admitter: ChunkAdmitter,
        retry: RetryPolicy | None = None,
        flight: "FlightTable | None" = None,
    ) -> None:
        self.schema = schema
        self.backend = backend
        self.admitter = admitter
        self.retry = retry if retry is not None else RetryPolicy()
        self.flight = flight

    def resolve(
        self, analyzed: AnalyzedQuery, outstanding: Sequence[int]
    ) -> ResolverOutcome:
        query = analyzed.query
        leaf_filters = query.effective_dim_filters(self.schema)
        total = CostReport(access_path="chunk")
        attempts = 0
        prefer_base = False
        while True:
            try:
                computed, report = self.backend.compute_chunks(
                    analyzed.groupby,
                    list(outstanding),
                    analyzed.aggregates,
                    leaf_filters=leaf_filters,
                    prefer_base=prefer_base,
                )
            except InjectedFault as fault:
                attempts += 1
                total.faults += 1
                wasted = fault.cost_report
                if isinstance(wasted, CostReport):
                    total.merge(wasted)
                if fault.transient and attempts < self.retry.max_attempts:
                    total.retries += 1
                    total.backoff_time += self.retry.backoff(attempts - 1)
                    continue
                if not prefer_base and fault.source_level == "aggregate":
                    # Graceful degradation: the aggregate table is
                    # unreadable — recompute from base chunks with a
                    # fresh retry budget.
                    prefer_base = True
                    attempts = 0
                    total.degraded += 1
                    continue
                # Out of options: surface the typed fault carrying the
                # combined cost of every attempt.  Flights this fetch
                # was leading fail with it, so every coalesced waiter
                # sees the same typed error.
                if self.flight is not None:
                    self.flight.publish_failure(
                        analyzed, outstanding, fault
                    )
                fault.cost_report = total
                raise
            break
        total.merge(report)
        self.admitter.admit(query, computed)
        if self.flight is not None:
            # Publish to waiting flights; the returned credit (<= 0)
            # hands the waiters' fair shares back to this fetch.
            total.coalesce_time += self.flight.publish(
                analyzed, computed, total
            )
        parts = {
            number: ResolvedPart(
                number=number, rows=rows, resolver=self.name
            )
            for number, rows in computed.items()
        }
        return ResolverOutcome(parts=parts, report=total)


class QueryResultStore(Protocol):
    """What the whole-query resolver links need from their host cache.

    :class:`repro.core.query_cache.QueryCacheManager` is the one
    implementation; the protocol keeps the dependency pointing from the
    core layer into the pipeline layer (the resolvers never import the
    manager).
    """

    backend: BackendEngine
    miss_path: str

    def find_containing(self, query: StarQuery) -> CachedQuery | None:
        """A cached entry whose query contains ``query``, if any."""

    def note_hit(self, entry: CachedQuery) -> None:
        """Tell the replacement policy ``entry`` was referenced."""

    def admit(
        self, query: StarQuery, rows: np.ndarray, benefit: float
    ) -> None:
        """Admit a freshly computed whole result."""


class QueryHitResolver(PartitionResolver):
    """Containment lookup: serve the whole result from a cached superset.

    The query-caching baseline's first chain link — the degenerate
    analogue of :class:`CacheHitResolver`, with containment in place of
    chunk splitting.
    """

    name = "cache"

    def __init__(self, store: QueryResultStore) -> None:
        self.store = store

    def resolve(
        self, analyzed: AnalyzedQuery, outstanding: Sequence[int]
    ) -> ResolverOutcome:
        hit = self.store.find_containing(analyzed.query)
        if hit is None:
            return ResolverOutcome()
        self.store.note_hit(hit)
        part = ResolvedPart(
            number=WHOLE_RESULT,
            rows=hit.rows,
            resolver=self.name,
            tuples_from_cache=hit.num_rows,
            saved=True,
        )
        return ResolverOutcome(parts={WHOLE_RESULT: part})


class QueryBackendResolver(PartitionResolver):
    """Terminal link for query caching: evaluate at the backend and admit.

    Total like :class:`BackendChunkResolver` — the single whole-result
    partition always comes back with rows.
    """

    name = "backend"

    def __init__(self, store: QueryResultStore) -> None:
        self.store = store

    def resolve(
        self, analyzed: AnalyzedQuery, outstanding: Sequence[int]
    ) -> ResolverOutcome:
        rows, report = self.store.backend.answer(
            analyzed.query, self.store.miss_path
        )
        self.store.admit(
            analyzed.query, rows, benefit=analyzed.meta["full_cost"]
        )
        part = ResolvedPart(
            number=WHOLE_RESULT, rows=rows, resolver=self.name
        )
        return ResolverOutcome(
            parts={WHOLE_RESULT: part}, report=report
        )
