"""The simulated cost model.

The paper reports wall-clock execution times on a 1998 testbed; this
reproduction replaces wall-clock with a deterministic linear cost model
over the physical counters of :class:`~repro.backend.plans.CostReport`::

    time = io_page_cost * pages_read + cpu_tuple_cost * tuples_scanned
           + cache_tuple_cost * tuples_from_cache

The default constants approximate the era's ratios (a random page I/O of
~10 ms against a few microseconds of per-tuple CPU), but every figure the
paper reports is a *ratio between schemes* running under the same model,
so the conclusions are insensitive to the exact constants — we verify this
with a sensitivity test in ``tests/analysis/test_cost.py``.

Cost units are milliseconds-like: one page I/O is 1.0 unit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.exceptions import ExperimentError

if TYPE_CHECKING:  # avoid a package-level import cycle with repro.backend
    from repro.backend.plans import CostReport

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Linear cost model over physical work counters.

    Attributes:
        io_page_cost: Cost units per physical page read.
        cpu_tuple_cost: Cost units per tuple scanned/aggregated in the
            backend.
        cache_tuple_cost: Cost units per tuple served from the middle-tier
            cache (cache hits are cheap but not free).
    """

    io_page_cost: float = 1.0
    cpu_tuple_cost: float = 0.002
    cache_tuple_cost: float = 0.0005

    def __post_init__(self) -> None:
        if self.io_page_cost < 0 or self.cpu_tuple_cost < 0:
            raise ExperimentError("cost constants must be non-negative")
        if self.cache_tuple_cost < 0:
            raise ExperimentError("cost constants must be non-negative")

    def time(self, report: "CostReport", tuples_from_cache: int = 0) -> float:
        """Modelled execution time of one operation.

        Injected fault latency, retry backoff, and the single-flight
        coalescing adjustment (all exactly ``0.0`` on plain runs) are
        simulated seconds already, so they add directly without a
        constant.
        """
        return (
            self.io_page_cost * report.pages_read
            + self.cpu_tuple_cost * report.tuples_scanned
            + self.cache_tuple_cost * tuples_from_cache
            + report.fault_latency
            + report.backoff_time
            + report.coalesce_time
        )

    def backend_time(self, pages: float, tuples: float = 0.0) -> float:
        """Modelled time for an estimated page/tuple count (no report)."""
        return self.io_page_cost * pages + self.cpu_tuple_cost * tuples
