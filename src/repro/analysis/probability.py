"""Analytical models from Section 4.2 of the paper.

The paper explains the bitmap speedup of chunked files with a classic
occupancy result [Feller 1957]: drawing ``r`` elements uniformly at random
from ``k`` yields ``f(r, k) = k - k(1 - 1/k)^r`` distinct elements in
expectation.  For a randomly ordered file the qualifying tuples of a
selection land on ``f(n, P)`` of the ``P`` data pages, while a chunked file
confines them to the ~``sqrt(P)`` pages of the chunks that intersect the
selection.

These closed forms are used two ways: as estimates inside the cost
accounting, and as the analytic curves the ``feller`` benchmark compares
against measured page counts.
"""

from __future__ import annotations

import math

from repro.exceptions import ExperimentError

__all__ = [
    "expected_distinct",
    "expected_pages_random",
    "expected_pages_chunked",
    "bitmap_speedup_model",
]


def expected_distinct(r: float, k: float) -> float:
    """Feller's occupancy formula ``f(r, k) = k - k(1 - 1/k)^r``.

    Expected number of distinct values when drawing ``r`` times uniformly
    with replacement from ``k`` values.  Satisfies ``f <= min(r, k)``,
    ``f ~= r`` for ``r << k`` and ``f ~= k`` for ``r >> k``.
    """
    if k <= 0:
        raise ExperimentError(f"k must be positive, got {k}")
    if r < 0:
        raise ExperimentError(f"r must be non-negative, got {r}")
    if r == 0:
        return 0.0
    if k == 1:
        return 1.0
    return k - k * (1.0 - 1.0 / k) ** r


def expected_pages_random(qualifying_tuples: float, total_pages: float) -> float:
    """Expected data pages touched on a randomly ordered file.

    The paper's ``p = f(n, P)``: each qualifying tuple lands on a page
    chosen effectively at random.
    """
    return expected_distinct(qualifying_tuples, total_pages)


def expected_pages_chunked(
    qualifying_tuples: float,
    total_pages: float,
    selected_chunks: float | None = None,
    pages_per_chunk: float = 1.0,
) -> float:
    """Expected data pages touched on a chunked file.

    The paper's simplified analysis assumes one page per chunk and a point
    selection on one of two dimensions, confining qualifying tuples to
    ``sqrt(P)`` chunks: ``p_c = f(n, sqrt(P))``.  The general form caps the
    candidate page set at ``selected_chunks * pages_per_chunk`` when the
    caller knows the selection's chunk footprint.
    """
    if selected_chunks is None:
        candidate_pages = math.sqrt(total_pages)
    else:
        candidate_pages = min(total_pages, selected_chunks * pages_per_chunk)
    if candidate_pages <= 0:
        return 0.0
    return expected_distinct(qualifying_tuples, candidate_pages)


def bitmap_speedup_model(
    num_tuples: int,
    tuples_per_page: int,
    density: float,
) -> tuple[float, float]:
    """The paper's closed-form comparison for its simplified 2-D scenario.

    Given ``N`` tuples, ``T`` tuples/page and data density ``d`` with two
    dimensions of ``D = sqrt(N / d)`` distinct values each, a selection
    ``A = x`` qualifies ``n = sqrt(N * d)`` tuples; with ``P = N / T``
    pages the expected I/O is ``p = f(n, P)`` for a random file versus
    ``p_c = f(n, sqrt(P))`` for a chunked file.

    Returns:
        ``(pages_random, pages_chunked)`` under the model.
    """
    if num_tuples <= 0 or tuples_per_page <= 0:
        raise ExperimentError("num_tuples and tuples_per_page must be positive")
    if not 0 < density <= 1:
        raise ExperimentError(f"density must be in (0, 1], got {density}")
    pages = num_tuples / tuples_per_page
    qualifying = math.sqrt(num_tuples * density)
    return (
        expected_pages_random(qualifying, pages),
        expected_pages_chunked(qualifying, pages),
    )
