"""Analytical models: the simulated cost model and Feller occupancy math."""

from repro.analysis.cost import CostModel
from repro.analysis.probability import (
    bitmap_speedup_model,
    expected_distinct,
    expected_pages_chunked,
    expected_pages_random,
)

__all__ = [
    "CostModel",
    "expected_distinct",
    "expected_pages_random",
    "expected_pages_chunked",
    "bitmap_speedup_model",
]
