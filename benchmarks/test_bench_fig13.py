"""Figure 13 benchmark — replacement policies (EQPR, chunk caching).

Paper shape asserted: the benefit-weighted CLOCK policy beats simple
LRU (approximated by CLOCK, as in the paper) on both CSR and
steady-state execution time, because expensive highly-aggregated chunks
are retained.
"""

from conftest import rows_by

from repro.experiments import registry
from repro.experiments.configs import DEFAULT_SCALE


def test_bench_fig13(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: registry.run_experiment("fig13", DEFAULT_SCALE),
        rounds=1,
        iterations=1,
    )
    record_result(result)
    table = rows_by(result, "policy")
    benefit = table[("benefit",)]
    clock = table[("clock",)]
    assert benefit["csr"] > clock["csr"]
    assert benefit["mean_time_last"] < clock["mean_time_last"]
    # Replacement must actually have churned for the comparison to mean
    # anything.
    assert benefit["evictions"] > 0 and clock["evictions"] > 0
