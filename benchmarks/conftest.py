"""Shared helpers for the benchmark suite.

Each macro benchmark regenerates one of the paper's tables/figures via
``benchmark.pedantic(..., rounds=1)`` (a full experiment run is the unit
of measurement), asserts the paper's qualitative shape, and writes the
rendered table to ``benchmarks/results/<id>.txt`` so EXPERIMENTS.md can
be refreshed from the latest run.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.reporting import ExperimentResult

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent


@pytest.fixture(scope="session")
def record_result():
    """Write an experiment result under benchmarks/results/."""

    def _record(result: ExperimentResult) -> ExperimentResult:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{result.experiment_id}.txt"
        path.write_text(result.render() + "\n", encoding="utf-8")
        return result

    return _record


@pytest.fixture(scope="session")
def record_json():
    """Write a machine-readable benchmark payload at the repo root.

    ``record_json("serve", payload)`` produces ``BENCH_serve.json`` —
    the artifact CI and throughput-tracking dashboards consume.
    """

    def _record(name: str, payload: dict) -> Path:
        path = REPO_ROOT / f"BENCH_{name}.json"
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    return _record


def rows_by(result: ExperimentResult, *keys: str) -> dict:
    """Index result rows by a tuple of column values."""
    return {
        tuple(row[key] for key in keys): row for row in result.rows
    }
