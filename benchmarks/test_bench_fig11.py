"""Figure 11 benchmark — effect of cache size (EQPR, chunk caching).

Paper shape asserted: CSR rises and the steady-state execution time
falls (weakly) monotonically as the cache budget grows.
"""

from repro.experiments import registry
from repro.experiments.configs import DEFAULT_SCALE


def test_bench_fig11(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: registry.run_experiment("fig11", DEFAULT_SCALE),
        rounds=1,
        iterations=1,
    )
    record_result(result)
    csr = result.column("csr")
    times = result.column("mean_time_last")
    assert all(b >= a - 0.01 for a, b in zip(csr, csr[1:])), csr
    assert all(b <= a * 1.05 for a, b in zip(times, times[1:])), times
    # The sweep must actually span a meaningful range.
    assert csr[-1] - csr[0] > 0.03
    assert times[0] > times[-1]
