"""Figure 9 benchmark — chunk vs query caching under locality types.

Paper shape asserted: chunk caching achieves a higher CSR and a lower
steady-state execution time than query caching on every stream, and the
execution-time advantage grows with the locality of the stream.
"""

from conftest import rows_by

from repro.experiments import registry
from repro.experiments.configs import DEFAULT_SCALE


def test_bench_fig9(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: registry.run_experiment("fig9", DEFAULT_SCALE),
        rounds=1,
        iterations=1,
    )
    record_result(result)
    table = rows_by(result, "stream", "scheme")

    ratios = {}
    for stream in ("Random", "EQPR", "Proximity"):
        chunk = table[(stream, "chunk")]
        query = table[(stream, "query")]
        assert chunk["csr"] > query["csr"], stream
        assert chunk["mean_time_last"] < query["mean_time_last"], stream
        ratios[stream] = (
            query["mean_time_last"] / chunk["mean_time_last"]
        )
    # The gap widens with locality: Proximity's improvement factor tops
    # the Random stream's (paper: ~2x on average).
    assert ratios["Proximity"] > ratios["Random"]
    average = sum(ratios.values()) / len(ratios)
    assert average > 1.5, f"average improvement only {average:.2f}x"
