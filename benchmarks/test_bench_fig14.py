"""Figure 14 benchmark — bitmap performance on random vs chunked files.

Paper shape asserted: the chunked file needs fewer page I/Os than the
randomly ordered file at every selectivity, and the absolute I/O gap
grows with the width of the range selection (adjacent values share
chunks on the chunked file but scatter on the random one).
"""

from repro.experiments import registry


def test_bench_fig14(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: registry.run_experiment("fig14"), rounds=1, iterations=1
    )
    record_result(result)
    gaps = []
    for row in result.rows:
        assert row["pages_chunked"] < row["pages_random"], row
        assert row["speedup"] > 2.0, row
        gaps.append(row["pages_random"] - row["pages_chunked"])
    assert gaps[-1] > gaps[0], "absolute I/O gap should grow with width"


def test_bench_feller(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: registry.run_experiment("feller"), rounds=1, iterations=1
    )
    record_result(result)
    for row in result.rows:
        # Feller's model tracks the random-file measurement closely.
        assert row["model_random"] == __import__("pytest").approx(
            row["measured_random"], rel=0.25, abs=5
        ), row
        # The chunked file sits far below the random file.
        assert row["measured_chunked"] < 0.5 * row["measured_random"], row
