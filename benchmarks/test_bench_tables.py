"""Benchmarks for Table 1 and Table 2 (setup artifacts)."""

from repro.experiments import registry
from repro.experiments.configs import DEFAULT_SCALE


def test_bench_table1(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: registry.run_experiment("table1"), rounds=1, iterations=1
    )
    record_result(result)
    assert result.notes == "matches the paper exactly"


def test_bench_table2(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: registry.run_experiment("table2", DEFAULT_SCALE),
        rounds=1,
        iterations=1,
    )
    record_result(result)
    realized = result.column("realized_proximity")
    nominal = result.column("Proximity")
    for got, want in zip(realized, nominal):
        assert abs(got - want) < 0.12
