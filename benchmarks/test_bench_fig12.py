"""Figure 12 benchmark — effect of the chunk dimension range.

Paper shape asserted: performance as a function of chunk granularity is
U-shaped — both the finest geometry (too many chunks: per-chunk overhead
and a larger chunk index) and the coarsest one (boundary waste: whole
large chunks computed for small queries) are worse than a middle point.
"""

from repro.experiments import registry
from repro.experiments.configs import DEFAULT_SCALE


def test_bench_fig12(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: registry.run_experiment("fig12", DEFAULT_SCALE),
        rounds=1,
        iterations=1,
    )
    record_result(result)
    # Order points by actual granularity (number of base chunks), finest
    # first: the hierarchy makes the ratio -> chunk-count map non-monotone.
    points = sorted(
        result.rows, key=lambda row: row["base_chunks"], reverse=True
    )
    times = [row["mean_time"] for row in points]
    best = min(range(len(times)), key=times.__getitem__)
    assert 0 < best < len(times) - 1, (
        f"expected an interior optimum, got index {best} of {times}"
    )
    # The endpoints are measurably worse than the optimum.
    assert times[0] > times[best] * 1.05
    assert times[-1] > times[best] * 1.05
