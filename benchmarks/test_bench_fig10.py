"""Figure 10 benchmark — hot-region locality percentage.

Paper shape asserted: chunk caching beats query caching at every
locality percentage; the chunk scheme's CSR does not degrade as locality
rises while the query scheme suffers from redundant storage (the paper
measured query-scheme CSR dropping toward 0.42 at Q100).
"""

from conftest import rows_by

from repro.experiments import registry
from repro.experiments.configs import DEFAULT_SCALE


def test_bench_fig10(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: registry.run_experiment("fig10", DEFAULT_SCALE),
        rounds=1,
        iterations=1,
    )
    record_result(result)
    table = rows_by(result, "stream", "scheme")
    for stream in ("Q60", "Q80", "Q100"):
        chunk = table[(stream, "chunk")]
        query = table[(stream, "query")]
        assert chunk["csr"] > query["csr"], stream
        assert chunk["mean_time_last"] < query["mean_time_last"], stream
    # Chunk caching exploits rising locality; at Q100 it clearly leads.
    assert table[("Q100", "chunk")]["csr"] > 0.6
    assert (
        table[("Q100", "chunk")]["csr"]
        - table[("Q100", "query")]["csr"]
    ) > 0.2
