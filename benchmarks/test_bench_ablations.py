"""Ablation benchmarks for the design choices DESIGN.md §5 calls out.

1. **Middle-tier chunk aggregation** (the paper's Section 7 future work):
   deriving missing coarse chunks from cached finer chunks should reduce
   backend I/O on drill-down/roll-up heavy streams.
2. **Batched chunk-index probes**: ``search_many`` + run merging versus
   naive per-chunk reads (the optimization is internal, but its physical
   I/O benefit — shared boundary pages read once — is part of the
   chunked-file story).
3. **Buffer pool size**: the backend's miss cost sensitivity.
"""

import pytest

from conftest import RESULTS_DIR

from repro.experiments.configs import DEFAULT_SCALE
from repro.experiments.harness import (
    get_system,
    make_chunk_manager,
    make_mix_stream,
    run_stream,
)
from repro.experiments.reporting import ExperimentResult
from repro.workload.generator import EQPR


def test_bench_middle_tier_aggregation(benchmark, record_result):
    """Section 7 extension: aggregate cached chunks instead of the backend."""
    system = get_system(DEFAULT_SCALE)
    stream = make_mix_stream(system, EQPR)

    def run():
        result = ExperimentResult(
            experiment_id="ablation_derive",
            title="Ablation: middle-tier chunk aggregation (Sec 7)",
            columns=[
                "aggregate_in_cache", "csr", "mean_time_last",
                "pages_read", "derived_chunks",
            ],
            expectation=(
                "deriving coarse chunks from cached fine chunks cuts "
                "backend pages and raises CSR"
            ),
        )
        for enabled in (False, True):
            manager = make_chunk_manager(
                system, aggregate_in_cache=enabled
            )
            metrics = run_stream(manager, stream)
            derived = sum(
                r.chunks_derived for r in metrics.records
            )
            result.add(
                aggregate_in_cache=enabled,
                csr=metrics.cost_saving_ratio(),
                mean_time_last=metrics.mean_time_last(100),
                pages_read=metrics.total_pages_read(),
                derived_chunks=derived,
            )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(result)
    off, on = result.rows
    assert on["derived_chunks"] > 0, "extension never fired"
    assert on["pages_read"] < off["pages_read"]
    assert on["csr"] >= off["csr"] - 0.01


def test_bench_buffer_pool_sensitivity(benchmark, record_result):
    """Backend miss cost as the buffer pool shrinks/grows."""
    from repro.experiments.harness import build_system

    def run():
        result = ExperimentResult(
            experiment_id="ablation_bufferpool",
            title="Ablation: buffer pool fraction of the fact file",
            columns=["buffer_fraction", "mean_time_last", "pages_read"],
            expectation="larger pools absorb more backend I/O",
        )
        for fraction in (0.02, 0.1, 0.5):
            scale = DEFAULT_SCALE.with_overrides(
                buffer_fraction_of_fact=fraction,
                num_queries=300,
            )
            system = build_system(scale)
            stream = make_mix_stream(system, EQPR)
            manager = make_chunk_manager(system)
            metrics = run_stream(manager, stream)
            result.add(
                buffer_fraction=fraction,
                mean_time_last=metrics.mean_time_last(100),
                pages_read=metrics.total_pages_read(),
            )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(result)
    pages = result.column("pages_read")
    assert pages[0] > pages[-1], "bigger pool should cut physical reads"


def test_bench_prefetch_drilldown(benchmark, record_result):
    """Section 7 extension #2: fetch data at more detail than required.

    On a drill-down heavy (SESSION) stream, prefetching the next-finer
    level while computing missing chunks turns subsequent drill-downs
    into cache hits.
    """
    from repro.workload.generator import SESSION

    system = get_system(DEFAULT_SCALE)
    stream = make_mix_stream(system, SESSION)

    def run():
        result = ExperimentResult(
            experiment_id="ablation_prefetch",
            title="Ablation: aggressive drill-down prefetch (Sec 7)",
            columns=[
                "prefetch", "csr", "mean_time_last", "pages_read",
            ],
            expectation=(
                "prefetching detail cuts backend pages on drill-down "
                "heavy streams"
            ),
        )
        for enabled in (False, True):
            manager = make_chunk_manager(system)
            if enabled:
                manager.prefetch_drilldown = True
                manager.aggregate_in_cache = True
            metrics = run_stream(manager, stream)
            result.add(
                prefetch=enabled,
                csr=metrics.cost_saving_ratio(),
                mean_time_last=metrics.mean_time_last(100),
                pages_read=metrics.total_pages_read(),
            )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(result)
    off, on = result.rows
    assert on["pages_read"] < off["pages_read"]


def test_bench_materialized_aggregates(benchmark, record_result):
    """Section 2.4 adaptation: precomputed aggregate tables, chunked.

    Materializing a few coarse group-bys (as a static precomputation
    pass would) lets the chunk interface source coarse chunks from far
    smaller tables, cutting miss cost for highly aggregated queries.
    """
    from repro.experiments.harness import build_system

    # Coarse group-bys that genuinely reduce the data (HRU-style picks);
    # group-bys whose cell count rivals the tuple count would be larger
    # than the base table and are (correctly) never chosen as sources.
    materialize = [
        (1, 1, 1, 1), (1, 1, 0, 1), (1, 0, 1, 1),
        (0, 1, 1, 1), (1, 1, 1, 0),
    ]

    def run():
        result = ExperimentResult(
            experiment_id="ablation_materialized",
            title="Ablation: chunked precomputed aggregate tables (Sec 2.4)",
            columns=[
                "materialized", "csr", "mean_time_last", "pages_read",
            ],
            expectation=(
                "materialized sources cut backend pages for aggregated "
                "queries"
            ),
        )
        for enabled in (False, True):
            scale = DEFAULT_SCALE.with_overrides(num_queries=400)
            system = build_system(scale)
            if enabled:
                for groupby in materialize:
                    system.backend.materialize(groupby)
            stream = make_mix_stream(system, EQPR)
            manager = make_chunk_manager(system)
            metrics = run_stream(manager, stream)
            result.add(
                materialized=len(materialize) if enabled else 0,
                csr=metrics.cost_saving_ratio(),
                mean_time_last=metrics.mean_time_last(100),
                pages_read=metrics.total_pages_read(),
            )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(result)
    off, on = result.rows
    assert on["pages_read"] < off["pages_read"]


def test_bench_multiuser(benchmark, record_result):
    """Multi-user extension: shared vs partitioned chunk caches."""
    from repro.experiments import registry

    result = benchmark.pedantic(
        lambda: registry.run_experiment("multiuser", DEFAULT_SCALE),
        rounds=1,
        iterations=1,
    )
    record_result(result)
    shared, partitioned = result.rows
    assert shared["csr"] > partitioned["csr"]
    assert shared["pages_read"] < partitioned["pages_read"]
