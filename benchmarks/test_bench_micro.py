"""Micro-benchmarks of the core primitives.

These measure the library's own operators (not the paper's simulated
costs): chunk-number computation, the chunk interface, the B-tree, the
bitmap index, and hash aggregation.  Useful for tracking performance
regressions of the implementation itself.
"""

import numpy as np
import pytest

from repro.backend.aggregate import LevelMapper, aggregate_records
from repro.backend.engine import BackendEngine
from repro.chunks.grid import ChunkSpace
from repro.query.model import StarQuery
from repro.schema.builder import build_star_schema
from repro.storage.bitmap import BitmapIndex
from repro.storage.btree import BTree
from repro.storage.chunkedfile import tuple_chunk_numbers
from repro.storage.disk import SimulatedDisk
from repro.workload.data import generate_fact_table


@pytest.fixture(scope="module")
def system():
    schema = build_star_schema(
        [(25, 50, 100), (25, 50), (5, 25, 50), (10, 50)],
        measure_names=("sales",),
    )
    space = ChunkSpace(schema, 0.2)
    records = generate_fact_table(schema, 100_000, seed=3)
    engine = BackendEngine.build(
        schema, space, records, buffer_pool_pages=64
    )
    return schema, space, records, engine


def test_bench_compute_chunk_numbers(benchmark, system):
    """ComputeChunkNums for a typical 2-selection query."""
    schema, space, _, _ = system
    grid = space.grid((1, 1, 2, 0))
    query = StarQuery.build(
        schema, (1, 1, 2, 0), {"D0": (2, 8), "D2": (5, 15)}
    )
    numbers = benchmark(
        grid.chunk_numbers_for_selection, query.selections
    )
    assert numbers


def test_bench_tuple_chunk_numbers(benchmark, system):
    """Vectorized per-tuple chunk numbering of 100k records."""
    schema, space, records, _ = system
    grid = space.base_grid
    names = tuple(d.name for d in schema.dimensions)
    numbers = benchmark(tuple_chunk_numbers, grid, records, names)
    assert len(numbers) == len(records)


def test_bench_compute_chunks(benchmark, system):
    """Backend chunk interface: compute 25 chunks of a 2-D group-by."""
    schema, space, _, engine = system
    grid = space.grid((1, 0, 2, 0))
    numbers = list(range(min(25, grid.num_chunks)))

    def run():
        chunks, _ = engine.compute_chunks(
            (1, 0, 2, 0), numbers, (("sales", "sum"),)
        )
        return chunks

    chunks = benchmark(run)
    assert len(chunks) == len(numbers)


def test_bench_bitmap_selection(benchmark, system):
    """Bitmap-path evaluation of a selective star query."""
    schema, _, _, engine = system
    query = StarQuery.build(
        schema, (2, 0, 0, 1), {"D0": (10, 20), "D3": (2, 6)}
    )

    def run():
        rows, _ = engine.answer(query, "bitmap")
        return rows

    rows = benchmark(run)
    assert len(rows)


def test_bench_aggregation(benchmark, system):
    """Hash aggregation of 100k tuples to a 3-dimension group-by."""
    schema, _, records, engine = system
    rows = benchmark(
        aggregate_records,
        schema,
        records,
        (1, 1, 2, 0),
        (("sales", "sum"), ("sales", "count")),
        engine.mapper,
    )
    assert len(rows)


def test_bench_btree_search(benchmark):
    """Point lookups on a bulk-loaded B-tree of 100k keys."""
    tree = BTree(SimulatedDisk(4096), value_arity=2)
    tree.bulk_load([(i, (i, i + 1)) for i in range(100_000)])
    keys = list(range(0, 100_000, 997))

    def run():
        return [tree.search(k) for k in keys]

    found = benchmark(run)
    assert all(v is not None for v in found)


def test_bench_btree_search_many(benchmark):
    """Batched lookups (the chunk-read path) on the same tree."""
    tree = BTree(SimulatedDisk(4096), value_arity=2)
    tree.bulk_load([(i, (i, i + 1)) for i in range(100_000)])
    keys = list(range(0, 100_000, 13))
    found = benchmark(tree.search_many, keys)
    assert len(found) == len(keys)


def test_bench_bitmap_build(benchmark):
    """Bitmap index construction over a 100k-row column."""
    rng = np.random.default_rng(1)
    column = rng.integers(0, 50, 100_000)

    def run():
        return BitmapIndex.build(SimulatedDisk(4096), column, 50)

    index = benchmark(run)
    assert index.num_pages > 0
