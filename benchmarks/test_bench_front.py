"""Front-door coalescing benchmark — duplicate-heavy admission windows.

Runs the paired-duplicate multiuser workload (users 2k and 2k+1 issue
identical query sequences) through the async admission front door,
once with single-flight coalescing disabled and once enabled, at 1, 2
and 4 workers per window, and reports:

- **pages_read** — physical backend pages; the coalesced run must be
  strictly below the baseline (duplicate chunks in a window are fetched
  once and shared instead of refetched per requester);
- **coalesced_chunks / shared_pages** — how much of the workload the
  flight table absorbed;
- the determinism contract — the coalesced digest is identical at
  every worker count.

The full scan is written to ``BENCH_front.json`` at the repo root —
the artifact the nightly workflow archives next to ``BENCH_serve``.
"""

from dataclasses import replace

from repro.experiments.configs import DEFAULT_SCALE
from repro.experiments.frontjob import duplicate_streams
from repro.experiments.harness import get_system, make_chunk_manager
from repro.serve import FrontConfig, run_front

WORKER_COUNTS = (1, 2, 4)
NUM_STREAMS = 8
CONFIG = FrontConfig(window=8)


def test_bench_front(benchmark, record_json):
    system = get_system(DEFAULT_SCALE)
    streams = duplicate_streams(system, num_users=NUM_STREAMS)

    def scan():
        baseline = run_front(
            make_chunk_manager(system),
            streams,
            replace(CONFIG, coalesce=False),
        )
        coalesced = {
            workers: run_front(
                make_chunk_manager(system),
                streams,
                replace(CONFIG, max_workers=workers),
            )
            for workers in WORKER_COUNTS
        }
        return baseline, coalesced

    baseline, coalesced = benchmark.pedantic(scan, rounds=1, iterations=1)

    # The headline claim: coalescing strictly cuts physical backend
    # pages on a duplicate-heavy workload, with conservation intact on
    # both sides.
    report = coalesced[1]
    assert report.pages_read < baseline.pages_read, (
        f"coalescing saved nothing: {report.pages_read} vs "
        f"{baseline.pages_read} baseline pages"
    )
    assert report.flights > 0 and report.coalesced_chunks > 0
    assert baseline.pages_read == baseline.disk_read_delta
    assert report.pages_read == report.disk_read_delta

    # Determinism contract: worker count never changes the digest.
    for workers in WORKER_COUNTS[1:]:
        assert coalesced[workers].digest == report.digest, (
            f"{workers}-worker digest diverged"
        )

    record_json(
        "front",
        {
            "experiment": "front-coalescing",
            "scale": "default",
            "streams": NUM_STREAMS,
            "queries": report.queries,
            "window": CONFIG.window,
            "baseline_pages_read": baseline.pages_read,
            "pages_saved": baseline.pages_read - report.pages_read,
            "digest": report.digest,
            "runs": [
                {
                    "workers": workers,
                    "coalesce": True,
                    "pages_read": coalesced[workers].pages_read,
                    "flights": coalesced[workers].flights,
                    "coalesced_chunks": (
                        coalesced[workers].coalesced_chunks
                    ),
                    "shared_pages": coalesced[workers].shared_pages,
                    "wall_seconds": coalesced[workers].wall_seconds,
                    "simulated_throughput": (
                        coalesced[workers].simulated_throughput
                    ),
                }
                for workers in WORKER_COUNTS
            ],
        },
    )
