"""Section 6.1.4 simulation benchmark — redundant storage caps CSR.

Paper numbers: with a cache holding 20 % of the cube and a Q100 stream,
query-level caching saturated at CSR 0.42 while chunk caching reached
0.98.  Shape asserted: the chunk scheme's steady-state CSR approaches 1
and beats the query scheme by a wide margin; the query cache stores
overlapping results redundantly (redundancy ratio > 1).
"""

from conftest import rows_by

from repro.experiments import registry
from repro.experiments.configs import DEFAULT_SCALE


def test_bench_csr_sim(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: registry.run_experiment("csr_sim", DEFAULT_SCALE),
        rounds=1,
        iterations=1,
    )
    record_result(result)
    table = rows_by(result, "scheme")
    chunk = table[("chunk",)]
    query = table[("query",)]
    assert chunk["csr_tail"] > 0.9, "chunk scheme should approach CSR 1"
    assert chunk["csr"] - query["csr"] > 0.25
    assert query["redundancy"] > 1.0, "query cache should store redundantly"
