"""Serving-layer throughput benchmark — thread and process modes.

Runs the multiuser Q80 workload through the concurrent serving layer
and reports, per run:

- **wall_qps** — real queries/second of the whole session;
- **wall_speedup** — wall_qps relative to the same mode's 1-worker
  run — the honest number.  Thread mode is GIL-bound, so its
  wall_speedup hovers near (or below) 1.0 however many workers run;
  the benchmark warns whenever a run regresses below 1.0 so the
  artifact makes the gap visible;
- **simulated throughput/speedup** — queries per simulated second,
  what a multi-core deployment of the modelled architecture would
  observe.

Two arms:

1. **threads** (1, 2, 4, 8 workers) — the oracle.  Every worker count
   must produce bit-identical accounting totals, and simulated speedup
   must scale (>1.5x at 4 workers).
2. **processes** (1, 2, 4 pool workers) — the process-parallel engine
   of ``repro.serve.proc``.  Totals must equal the thread baseline
   bit-for-bit (the replay contract), and real wall-clock speedup must
   reach >= 1.5x at 4 workers over the mode's own 1-worker run — the
   assertion this whole refactor exists for.  It is gated on the
   machine actually having >= 4 usable cores; ``wall_speedup`` is
   recorded either way.

A third arm runs the same workload once with the persistent second
tier enabled (``cache_tiers=2``, ``docs/TIERING.md``) and records the
per-tier hit ratios and spill/promote page counts — deterministic
counters only, so the fields stay inside the R010 digest-taint fence.

The full scan is written to ``BENCH_serve.json`` at the repo root.
"""

import os
import warnings

from repro.api import PROCESSES, THREADS, StackConfig, build_cache
from repro.experiments.configs import DEFAULT_SCALE
from repro.experiments.harness import get_system
from repro.experiments.multiuser import run_shared_concurrent, user_streams

WORKER_COUNTS = (1, 2, 4, 8)
PROC_WORKER_COUNTS = (1, 2, 4)
NUM_STREAMS = 8

#: Real cores available to this process — the wall-clock speedup
#: assertion is only meaningful when the hardware can actually run
#: 4 workers in parallel.
USABLE_CORES = len(os.sched_getaffinity(0))


def totals(report):
    metrics = report.metrics
    return repr(
        (
            metrics.cost_saving_ratio(),
            metrics.mean_time(),
            metrics.total_pages_read(),
            len(metrics),
        )
    )


def wall_speedups(reports):
    """wall_qps of each run relative to the 1-worker run of its mode."""
    qps = {
        workers: reports[workers].queries / reports[workers].wall_seconds
        for workers in reports
    }
    return {workers: qps[workers] / qps[1] for workers in reports}


def run_row(mode, workers, report, wall_speedup, simulated_speedup):
    if wall_speedup < 1.0:
        warnings.warn(
            f"{mode} mode at {workers} workers regressed below the "
            f"1-worker wall clock: wall_speedup={wall_speedup:.2f}",
            stacklevel=2,
        )
    return {
        "mode": mode,
        "workers": workers,
        "wall_seconds": report.wall_seconds,
        "wall_qps": report.queries / report.wall_seconds,
        "wall_speedup": wall_speedup,
        "simulated_makespan": report.simulated_makespan,
        "simulated_throughput": report.simulated_throughput,
        "simulated_speedup": simulated_speedup,
        # The contention dict mixes wall-clock waits with deterministic
        # counters; this entry reads only the acquisition count.
        "backend_lock_acquisitions": (  # reprolint: ignore[R010] count, not wall time
            report.contention["backend"]["lock_acquisitions"]
        ),
    }


def tier_ratios(tiers):
    """Deterministic per-tier summary for the benchmark artifact."""
    l1, l2 = tiers["l1"], tiers["l2"]
    l1_lookups = l1["hits"] + l1["misses"]
    return {
        "l1_hit_ratio": l1["hits"] / l1_lookups if l1_lookups else 0.0,
        "l2_hit_ratio": l2["hit_ratio"],
        "l1_hits": l1["hits"],
        "l1_misses": l1["misses"],
        "l2_hits": l2["hits"],
        "l2_misses": l2["misses"],
        "spills": l2["spills"],
        "promotes": l2["promotes"],
        "l2_pages_written": l2["pages_written"],
        "l2_pages_read": l2["pages_read"],
    }


def test_bench_serve(benchmark, record_json, tmp_path):
    system = get_system(DEFAULT_SCALE)
    streams = user_streams(system, num_users=NUM_STREAMS)

    def scan():
        thread_reports = {
            workers: run_shared_concurrent(
                system, streams, max_workers=workers
            )
            for workers in WORKER_COUNTS
        }
        proc_reports = {
            workers: run_shared_concurrent(
                system,
                streams,
                max_workers=NUM_STREAMS,
                exec_mode=PROCESSES,
                proc_workers=workers,
            )
            for workers in PROC_WORKER_COUNTS
        }
        return thread_reports, proc_reports

    thread_reports, proc_reports = benchmark.pedantic(
        scan, rounds=1, iterations=1
    )

    # Determinism contract: neither the worker count nor the execution
    # mode changes a single accounting number.
    baseline = totals(thread_reports[1])
    for workers in WORKER_COUNTS[1:]:
        assert totals(thread_reports[workers]) == baseline, (
            f"{workers}-worker thread totals diverged from sequential"
        )
    for workers in PROC_WORKER_COUNTS:
        assert totals(proc_reports[workers]) == baseline, (
            f"{workers}-worker process totals diverged from thread mode"
        )

    sim_base = thread_reports[1].simulated_throughput
    sim_speedups = {
        workers: thread_reports[workers].simulated_throughput / sim_base
        for workers in WORKER_COUNTS
    }
    assert sim_speedups[4] > 1.5, (
        f"4-worker simulated speedup only {sim_speedups[4]:.2f}x"
    )
    assert (
        thread_reports[8].simulated_makespan
        <= thread_reports[1].simulated_makespan
    )

    # The tentpole number: real wall-clock scaling in process mode.
    thread_wall = wall_speedups(thread_reports)
    proc_wall = wall_speedups(proc_reports)
    if USABLE_CORES >= 4:
        assert proc_wall[4] >= 1.5, (
            f"4-worker process-mode wall speedup only "
            f"{proc_wall[4]:.2f}x on {USABLE_CORES} cores"
        )

    # The 2-tier arm: same workload, L1 over each persistent L2
    # backend in turn.  Untimed — the artifact entry is the per-tier
    # counter split, not a throughput number.  An eighth of the budget
    # forces L1 evictions so the demote/promote cycle actually runs.
    tier_split = {}
    for l2_backend, filename in (
        ("chunklog", "chunklog.bin"), ("sqlite", "chunkcache.db")
    ):
        tiered_cache = build_cache(
            StackConfig(
                cache_bytes=system.cache_bytes // 8,
                num_shards=1,
                cache_tiers=2,
                persist_path=str(tmp_path / filename),
                l2_backend=l2_backend,
            )
        )
        try:
            run_shared_concurrent(
                system, streams, max_workers=4, cache=tiered_cache
            )
            tiered_cache.check_conservation()
            tier_split[l2_backend] = tier_ratios(tiered_cache.tiers())
        finally:
            tiered_cache.close()
        assert tier_split[l2_backend]["spills"] > 0, (
            f"2-tier {l2_backend} arm never spilled"
        )
    # Canonical charging (ceil(record_length / page_size) pages per op,
    # both backends) makes the whole deterministic counter split
    # backend-identical — the artifact records both to prove it.
    assert tier_split["chunklog"] == tier_split["sqlite"], (
        "per-backend tier counters diverged; the canonical charging "
        "contract is broken"
    )

    proc_sim_base = proc_reports[1].simulated_throughput
    record_json(
        "serve",
        {
            "experiment": "serve-throughput",
            "scale": "default",
            "streams": NUM_STREAMS,
            "queries": thread_reports[1].queries,
            "schedule": "fair",
            "usable_cores": USABLE_CORES,
            "totals": baseline,
            "runs": [
                run_row(
                    THREADS,
                    workers,
                    thread_reports[workers],
                    thread_wall[workers],
                    sim_speedups[workers],
                )
                for workers in WORKER_COUNTS
            ]
            + [
                run_row(
                    PROCESSES,
                    workers,
                    proc_reports[workers],
                    proc_wall[workers],
                    (
                        proc_reports[workers].simulated_throughput
                        / proc_sim_base
                    ),
                )
                for workers in PROC_WORKER_COUNTS
            ],
            "tiers": tier_split,
        },
    )
