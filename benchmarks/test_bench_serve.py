"""Serving-layer throughput benchmark — 8 user streams, 1..8 workers.

Runs the multiuser Q80 workload through the concurrent serving layer at
1, 2, 4 and 8 worker threads under the fair schedule and reports:

- **wall_qps** — real queries/second of the whole session (GIL-bound,
  so roughly flat across worker counts on this simulation);
- **simulated throughput** — queries per simulated second, where each
  worker's makespan is the modelled execution time of the queries it
  ran; this is the number a multi-core deployment of the architecture
  would observe, and it must scale with the worker count.

Shape asserted: every worker count produces bit-identical accounting
totals (the fair schedule's determinism contract), and 4 workers beat
1 worker by more than 1.5x in simulated throughput.  The full scan is
written to ``BENCH_serve.json`` at the repo root.
"""

from repro.experiments.configs import DEFAULT_SCALE
from repro.experiments.harness import get_system
from repro.experiments.multiuser import run_shared_concurrent, user_streams

WORKER_COUNTS = (1, 2, 4, 8)
NUM_STREAMS = 8


def totals(report):
    metrics = report.metrics
    return repr(
        (
            metrics.cost_saving_ratio(),
            metrics.mean_time(),
            metrics.total_pages_read(),
            len(metrics),
        )
    )


def test_bench_serve(benchmark, record_json):
    system = get_system(DEFAULT_SCALE)
    streams = user_streams(system, num_users=NUM_STREAMS)

    def scan():
        return {
            workers: run_shared_concurrent(
                system, streams, max_workers=workers
            )
            for workers in WORKER_COUNTS
        }

    reports = benchmark.pedantic(scan, rounds=1, iterations=1)

    # Determinism contract: the worker count changes throughput only,
    # never a single accounting number.
    baseline = totals(reports[1])
    for workers in WORKER_COUNTS[1:]:
        assert totals(reports[workers]) == baseline, (
            f"{workers}-worker totals diverged from sequential"
        )

    base = reports[1].simulated_throughput
    speedups = {
        workers: reports[workers].simulated_throughput / base
        for workers in WORKER_COUNTS
    }
    assert speedups[4] > 1.5, (
        f"4-worker simulated speedup only {speedups[4]:.2f}x"
    )
    assert reports[8].simulated_makespan <= reports[1].simulated_makespan

    record_json(
        "serve",
        {
            "experiment": "serve-throughput",
            "scale": "default",
            "streams": NUM_STREAMS,
            "queries": reports[1].queries,
            "schedule": "fair",
            "totals": baseline,
            "runs": [
                {
                    "workers": workers,
                    "wall_seconds": reports[workers].wall_seconds,
                    "wall_qps": (
                        reports[workers].queries
                        / reports[workers].wall_seconds
                    ),
                    "simulated_makespan": (
                        reports[workers].simulated_makespan
                    ),
                    "simulated_throughput": (
                        reports[workers].simulated_throughput
                    ),
                    "simulated_speedup": speedups[workers],
                    "backend_lock_acquisitions": (
                        reports[workers].contention["backend"][
                            "lock_acquisitions"
                        ]
                    ),
                }
                for workers in WORKER_COUNTS
            ],
        },
    )
