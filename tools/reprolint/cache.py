"""Content-hash fact cache for warm ``make lint`` runs.

The expensive half of a lint run is phase 1: parsing every file and
extracting its facts (plus running the per-file rules over the AST).
Both depend only on the file's *content* and on the analyzer itself, so
they are cached under the SHA-256 of the source:

- ``facts`` — the JSON form of :class:`~tools.reprolint.facts.FileFacts`
  (:func:`facts_to_dict` / :func:`facts_from_dict` round-trip);
- ``violations`` — the per-file rule findings, post-suppression, with
  the rule codes they were computed under (a run selecting codes the
  entry doesn't cover recomputes).

Phase 2 (symbol table, call graph, R009/R010) is recomputed every run
from the cached facts — it is cross-file by nature and cheap once
parsing is skipped.

The cache file lives at the repo root (``.reprolint_cache.json``,
git-ignored) and is versioned by :data:`CACHE_VERSION`; bump it whenever
the fact schema or any per-file rule changes behavior, which invalidates
every entry at once.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from tools.reprolint.engine import Violation
from tools.reprolint.facts import FileFacts, facts_from_dict, facts_to_dict

__all__ = ["CACHE_VERSION", "DEFAULT_CACHE_PATH", "FactCache"]

#: Bump on any change to fact extraction or per-file rule behavior.
CACHE_VERSION = 1

DEFAULT_CACHE_PATH = ".reprolint_cache.json"


class FactCache:
    """SHA-256-keyed store of per-file facts and rule findings."""

    def __init__(self, path: str | Path | None) -> None:
        self.path = None if path is None else Path(path)
        self._entries: dict[str, dict[str, Any]] = {}
        self._dirty = False
        self.hits = 0
        self.misses = 0
        if self.path is not None and self.path.exists():
            try:
                raw = json.loads(self.path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                raw = None
            if (
                isinstance(raw, dict)
                and raw.get("version") == CACHE_VERSION
                and isinstance(raw.get("files"), dict)
            ):
                self._entries = raw["files"]

    def lookup(
        self, path: str, digest: str, codes: frozenset[str]
    ) -> tuple[FileFacts, list[Violation]] | None:
        """Cached (facts, violations) for ``path`` at ``digest``, or None.

        ``codes`` is the per-file rule set this run needs; an entry only
        hits when it was computed under a superset of those codes.
        """
        entry = self._entries.get(path)
        if entry is None or entry.get("sha256") != digest:
            self.misses += 1
            return None
        if not codes <= set(entry.get("codes", [])):
            self.misses += 1
            return None
        try:
            facts = facts_from_dict(entry["facts"])
            violations = [
                Violation(
                    path=path, line=v[0], col=v[1], code=v[2], message=v[3]
                )
                for v in entry["violations"]
                if v[2] in codes
            ]
        except (KeyError, TypeError, IndexError):
            self.misses += 1
            return None
        self.hits += 1
        return facts, violations

    def store(
        self,
        path: str,
        digest: str,
        codes: frozenset[str],
        facts: FileFacts,
        violations: list[Violation],
    ) -> None:
        self._entries[path] = {
            "sha256": digest,
            "codes": sorted(codes),
            "facts": facts_to_dict(facts),
            "violations": [
                [v.line, v.col, v.code, v.message] for v in violations
            ],
        }
        self._dirty = True

    def prune(self, live_paths: set[str]) -> None:
        """Drop entries for files no longer in the linted set."""
        stale = [p for p in self._entries if p not in live_paths]
        for p in stale:
            del self._entries[p]
            self._dirty = True

    def save(self) -> None:
        if self.path is None or not self._dirty:
            return
        payload = {"version": CACHE_VERSION, "files": self._entries}
        try:
            self.path.write_text(json.dumps(payload), encoding="utf-8")
        except OSError:
            pass  # a read-only checkout just runs cold every time
        self._dirty = False
