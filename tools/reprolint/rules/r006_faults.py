"""R006 — fault injection stays behind the ``repro.faults`` boundary.

The fault-injection layer is deliberately *pluggable, not pervasive*:
production modules expose passive hooks (``SimulatedDisk.read_hook``,
``BackendEngine.fault_hook``, ``ChunkCache.fault_hook``) and the only
code that builds a :class:`~repro.faults.FaultPlan` or
:class:`~repro.faults.FaultInjector` and wires it in is a *composition
root* — the experiments layer (``repro.experiments``) or a test.  That
keeps three properties machine-checkable:

- with no injector active, the production stack contains **zero**
  fault-injection code paths beyond a ``None`` hook check, so the
  faults-disabled bit-identity contract is structural, not accidental;
- no production module can "helpfully" inject faults into itself — the
  schedule of injected faults is always owned by the caller, which is
  what makes chaos runs reproducible;
- the serving layer consumes injectors duck-typed
  (:class:`repro.serve.soak.FaultSource`), so the layering DAG (R001)
  never grows a serve→faults edge.

Concretely: inside ``src/repro``, only ``repro.faults`` itself and
``repro.experiments`` may import ``repro.faults`` (or name its
``FaultPlan`` / ``FaultInjector`` types).  Tests and tools are exempt —
they are composition roots by definition.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.engine import FileContext, Violation

CODE = "R006"
SUMMARY = (
    "fault injection stays behind repro.faults: only the faults package "
    "itself and the experiments layer (composition roots) may import "
    "repro.faults or construct FaultPlan/FaultInjector"
)

#: Packages allowed to know about the fault-injection layer.
FAULT_COMPOSITION_ROOTS = ("repro.faults", "repro.experiments")

#: Names whose construction marks a module as a composition root.
_FAULT_TYPES = frozenset({"FaultPlan", "FaultInjector"})


def _is_fault_module(module: str) -> bool:
    return module == "repro.faults" or module.startswith("repro.faults.")


def check(ctx: FileContext) -> Iterator[Violation]:
    if ctx.module is None or not ctx.in_package("repro"):
        return
    if ctx.in_package(*FAULT_COMPOSITION_ROOTS):
        return

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if _is_fault_module(alias.name):
                    yield Violation(
                        ctx.path, node.lineno, node.col_offset, CODE,
                        f"{ctx.module} imports {alias.name}; only the "
                        "faults package and the experiments layer may "
                        "construct fault plans — accept hooks or a "
                        "duck-typed injector instead",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.level == 0 and _is_fault_module(
                node.module
            ):
                yield Violation(
                    ctx.path, node.lineno, node.col_offset, CODE,
                    f"{ctx.module} imports from {node.module}; only the "
                    "faults package and the experiments layer may "
                    "construct fault plans — accept hooks or a "
                    "duck-typed injector instead",
                )
        elif isinstance(node, ast.Call):
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None
            )
            if name in _FAULT_TYPES:
                yield Violation(
                    ctx.path, node.lineno, node.col_offset, CODE,
                    f"{ctx.module} constructs {name}; fault schedules "
                    "are owned by composition roots (experiments layer "
                    "or tests), never by the production stack itself",
                )
