"""R005 — stream accounting goes through ``metrics.account_answer``.

The Cost Saving Ratio is only meaningful if every answered query is
priced by the *same* formula.  PR 1 hoisted that formula into
:func:`repro.core.metrics.account_answer`; this rule keeps it the single
entry point:

- no module under ``src/repro`` other than ``repro.core.metrics`` may
  construct :class:`~repro.core.metrics.QueryRecord` directly — an
  accountant that hand-rolls a record can silently drift from the shared
  pricing;
- no module other than ``repro.core.metrics`` may *write through* a
  metrics object (``self.metrics.x = ...``, ``metrics._records += ...``)
  or touch ``StreamMetrics``' private stores (``_records`` / ``_traces``)
  — mutation happens via :meth:`StreamMetrics.record` only.

Binding a fresh ``self.metrics = StreamMetrics()`` is construction, not
mutation, and stays allowed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.engine import FileContext, Violation

CODE = "R005"
SUMMARY = (
    "StreamMetrics accounting flows through metrics.account_answer / "
    "StreamMetrics.record — no direct QueryRecord construction or "
    "counter writes outside core/metrics.py"
)

_OWNER_MODULE = "repro.core.metrics"
_PRIVATE_STORES = frozenset({"_records", "_traces"})


def _writes_through_metrics(target: ast.expr) -> bool:
    """True for attribute writes whose chain passes *through* `metrics`.

    ``self.metrics.x``, ``metrics._records``, ``manager.metrics.foo`` —
    but not ``self.metrics`` itself (that is binding the object).
    """
    if not isinstance(target, ast.Attribute):
        return False
    value = target.value
    if isinstance(value, ast.Name) and value.id == "metrics":
        return True
    if isinstance(value, ast.Attribute) and value.attr == "metrics":
        return True
    return False


def check(ctx: FileContext) -> Iterator[Violation]:
    if not ctx.in_package("repro") or ctx.module == _OWNER_MODULE:
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None
            )
            if name == "QueryRecord":
                yield Violation(
                    ctx.path, node.lineno, node.col_offset, CODE,
                    "QueryRecord constructed outside core/metrics.py; "
                    "price answers through metrics.account_answer so "
                    "schemes cannot drift in CSR accounting",
                )
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if _writes_through_metrics(target):
                yield Violation(
                    ctx.path, node.lineno, node.col_offset, CODE,
                    "direct write through a metrics object; mutate "
                    "stream accounting via StreamMetrics.record only",
                )
            elif (
                isinstance(target, ast.Attribute)
                and target.attr in _PRIVATE_STORES
            ):
                yield Violation(
                    ctx.path, node.lineno, node.col_offset, CODE,
                    f"write to StreamMetrics private store "
                    f"'{target.attr}' outside core/metrics.py",
                )
