"""R008 — process-parallelism stays behind ``repro.serve.proc``.

The process-parallel execution mode has exactly one implementation —
:mod:`repro.serve.proc` — and its determinism contract (digests are a
pure function of (workload, seed, config) at any worker count) depends
on every process boundary running through that module's staged
``WorkItem``/``WorkResult`` envelopes and the coordinator's accounting
replay.  A second, ad-hoc process pool anywhere else in the production
stack would reintroduce exactly the class of nondeterminism this PR
removed, invisibly.

So, mirroring the R006 faults-confinement pattern: inside ``src/repro``,
only ``repro.serve.proc`` itself and the composition roots — the
experiments layer and the CLI (``repro.__main__``) — may import
:mod:`multiprocessing` (or its submodules) or name
``ProcessPoolExecutor`` from :mod:`concurrent.futures`.  Tests and
tools are exempt — they are composition roots by definition.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.engine import FileContext, Violation

CODE = "R008"
SUMMARY = (
    "process-parallelism stays behind repro.serve.proc: only that "
    "module and the composition roots (experiments layer, CLI) may "
    "import multiprocessing or use ProcessPoolExecutor"
)

#: Modules/packages allowed to know about process-level parallelism.
PROCESS_COMPOSITION_ROOTS = (
    "repro.serve.proc",
    "repro.experiments",
    "repro.__main__",
)

#: The executor class whose construction marks a process boundary.
_EXECUTOR = "ProcessPoolExecutor"


def _is_mp_module(module: str) -> bool:
    return module == "multiprocessing" or module.startswith(
        "multiprocessing."
    )


def check(ctx: FileContext) -> Iterator[Violation]:
    if ctx.module is None or not ctx.in_package("repro"):
        return
    if ctx.module in PROCESS_COMPOSITION_ROOTS or ctx.in_package(
        "repro.experiments"
    ):
        return

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if _is_mp_module(alias.name):
                    yield Violation(
                        ctx.path, node.lineno, node.col_offset, CODE,
                        f"{ctx.module} imports {alias.name}; process "
                        "parallelism lives behind repro.serve.proc — "
                        "route work through ProcessComputeEngine (or "
                        "compose it from the experiments layer)",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.level == 0:
                if _is_mp_module(node.module):
                    yield Violation(
                        ctx.path, node.lineno, node.col_offset, CODE,
                        f"{ctx.module} imports from {node.module}; "
                        "process parallelism lives behind "
                        "repro.serve.proc — route work through "
                        "ProcessComputeEngine (or compose it from the "
                        "experiments layer)",
                    )
                elif node.module in (
                    "concurrent.futures",
                    "concurrent.futures.process",
                ) and any(
                    alias.name == _EXECUTOR for alias in node.names
                ):
                    yield Violation(
                        ctx.path, node.lineno, node.col_offset, CODE,
                        f"{ctx.module} imports {_EXECUTOR}; process "
                        "pools live behind repro.serve.proc — use the "
                        "staged WorkItem/WorkResult envelopes instead",
                    )
        elif isinstance(node, ast.Call):
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None
            )
            if name == _EXECUTOR:
                yield Violation(
                    ctx.path, node.lineno, node.col_offset, CODE,
                    f"{ctx.module} constructs {_EXECUTOR}; process "
                    "pools live behind repro.serve.proc — use the "
                    "staged WorkItem/WorkResult envelopes instead",
                )
