"""R002 — no ``==`` / ``!=`` between floats in cost/benefit code.

CSR accounting, benefit weights and modelled times are floats built by
summing many small contributions; exact equality on them is the classic
silent-drift bug (a benefit that should be "equal" after an evict/put
round-trip differs in the last ulp and replacement decisions flip).
Cost/benefit quantities must be compared with :func:`math.isclose`, an
ordering comparison, or kept in integer units (pages, tuples, bytes).

The rule flags ``==`` / ``!=`` where either operand is *float-ish*:

- a float literal (``x == 0.0``);
- a name or attribute whose identifier contains a cost/benefit
  vocabulary token (``full_cost``, ``benefit``, ``weight``, ``time``,
  ``saved``, ``csr``, ``ratio``, ``total``);
- a direct ``sum(...)`` call (sums of costs are the usual source).

Identifier vocabularies are a heuristic, so genuinely-integer uses can
waive a line with ``# reprolint: ignore[R002] <reason>``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.engine import FileContext, Violation

CODE = "R002"
SUMMARY = (
    "no ==/!= between floats in cost/benefit code — use math.isclose, "
    "an ordering comparison, or integer arithmetic"
)

#: Identifier tokens that mark a value as cost/benefit-flavoured.
FLOAT_VOCAB = frozenset(
    {"cost", "benefit", "weight", "time", "saved", "csr", "ratio", "total"}
)


def _identifier_of(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_floatish(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    ident = _identifier_of(node)
    if ident is not None:
        tokens = set(ident.lower().strip("_").split("_"))
        if tokens & FLOAT_VOCAB:
            return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id == "sum":
            return True
    return False


def check(ctx: FileContext) -> Iterator[Violation]:
    if not ctx.in_package("repro"):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            culprit = next(
                (o for o in (left, right) if _is_floatish(o)), None
            )
            if culprit is None:
                continue
            name = _identifier_of(culprit)
            what = f"'{name}'" if name else "a float expression"
            yield Violation(
                ctx.path, node.lineno, node.col_offset, CODE,
                f"float equality on {what} in cost/benefit code; use "
                "math.isclose, an ordering comparison, or integer units",
            )
