"""R010 — whole-program determinism taint.

The repo's reports promise that every digest is a **pure function of
(workload, seed, config)**: ``ChaosReport.digest`` / ``FrontReport``'s
digest must not move when worker counts, scheduling, or the wall clock
do.  This rule makes that promise static:

1. **Sources** — wall-clock reads (``time.perf_counter`` …), unseeded
   RNG use (``random.random``, bare ``np.random.default_rng()``),
   ``os.environ`` reads, ``id()`` / builtin ``hash()``, and
   unordered-``set`` iteration.  Seeded constructions
   (``random.Random(seed)``, ``np.random.default_rng(seed)``) are not
   sources.

2. **Propagation** — a *function* is tainted when a source (or a call
   to a tainted function, or a read of a tainted field) reaches its
   return value; a *field* is tainted when a tainted expression is
   assigned to it (``self.stage.wall_seconds = perf_counter() - t0``)
   or passed as its constructor keyword.  Both run to a joint fixpoint
   over the project call graph.  Fields are tracked by bare attribute
   name — coarse, but exactly right for the handful of wall-clock
   fields (``wall_seconds``, ``lock_wait_seconds``) that must never
   cross into a digest.  Values passed *into* a call carry
   ``arg:<callee>:``-tagged tokens; when the callee is itself a sink
   (audited internally), the call acts as a taint **barrier** — passing
   a partly-tainted report into ``_front_digest`` does not taint the
   hash, because the fields the hash actually reads are checked inside
   the sink's own body.

3. **Sinks** — functions whose name contains ``digest`` plus the serve
   totals surface (:data:`SINK_QUALNAMES`).  Inside a sink, any direct
   source use, any read of a tainted field, and any call into a tainted
   function is a violation.  Separately, every ``BENCH_*`` payload
   (string-keyed dict literals under ``benchmarks/``) may only carry
   taint in the explicit wall-clock whitelist
   (:data:`BENCH_WALL_WHITELIST`) — benchmarks *should* measure wall
   time, but only under names that say so.

Reporting surfaces that are allowed to show wall-clock numbers
(``stage_summary``'s latency buckets) are simply not sinks; the rule is
about the deterministic contract, not about banning clocks.
"""

from __future__ import annotations

from typing import Iterator

from tools.reprolint.callgraph import FuncRef, SymbolTable
from tools.reprolint.engine import Violation
from tools.reprolint.facts import FileFacts, FunctionFacts, split_arg_token
from tools.reprolint.project import Project

CODE = "R010"
SUMMARY = (
    "determinism taint: nondeterminism sources must not reach digest/"
    "totals sinks or non-whitelisted BENCH_* fields"
)

#: Exact qualnames that are sinks besides any ``*digest*`` function.
#: ``StreamMetrics.summary`` is the serve totals surface — the numbers
#: asserted bit-identical across worker counts and exec modes.
SINK_QUALNAMES = frozenset({"StreamMetrics.summary"})

#: BENCH_* payload keys allowed to carry wall-clock taint.  The name
#: must say "wall" — a reader of BENCH_serve.json can then tell at a
#: glance which numbers are machine-dependent.
BENCH_WALL_WHITELIST = frozenset({"wall_seconds", "wall_qps", "wall_speedup"})


def _is_sink(func: FunctionFacts) -> bool:
    return "digest" in func.name or func.qualname in SINK_QUALNAMES


class _Taint:
    """Joint tainted-functions / tainted-fields fixpoint."""

    def __init__(self, symbols: SymbolTable) -> None:
        self.symbols = symbols
        self.functions: set[FuncRef] = set()
        self.fields: set[str] = set()

    def _is_barrier(
        self, callee: str, func: FunctionFacts, path: str
    ) -> bool:
        """Audited sink functions stop argument taint at call sites.

        ``digest = _front_digest(report, ...)`` passes the whole (partly
        wall-clock-tainted) report in, but ``_front_digest`` projects
        only deterministic fields out — and because it *is* a sink, any
        tainted field it actually reads is flagged inside its own body
        by :func:`_check_sinks`.  Treating such calls as barriers keeps
        argument flow conservative everywhere else while not smearing
        whole-object taint over deliberately deterministic hashes.
        """
        refs = self.symbols.resolve_call(callee, func, path)
        return bool(refs) and all(
            _is_sink(self.symbols.functions[ref]) for ref in refs
        )

    def token_tainted(
        self, token: str, func: FunctionFacts, path: str
    ) -> bool:
        callees, base = split_arg_token(token)
        if any(self._is_barrier(c, func, path) for c in callees):
            return False
        if base == "nondet":
            return True
        if base.startswith("attr:"):
            return base[len("attr:") :] in self.fields
        if base.startswith("call:"):
            callee = base[len("call:") :]
            return any(
                ref in self.functions
                for ref in self.symbols.resolve_call(callee, func, path)
            )
        return False

    def any_tainted(
        self, tokens: tuple[str, ...], func: FunctionFacts, path: str
    ) -> bool:
        return any(self.token_tainted(t, func, path) for t in tokens)

    def run(self) -> None:
        changed = True
        while changed:
            changed = False
            for ref in sorted(self.symbols.functions):
                func = self.symbols.functions[ref]
                if ref not in self.functions and self.any_tainted(
                    func.return_tokens, func, ref.path
                ):
                    self.functions.add(ref)
                    changed = True
                for attr, tokens in func.attr_taints:
                    if attr not in self.fields and self.any_tainted(
                        tokens, func, ref.path
                    ):
                        self.fields.add(attr)
                        changed = True
                for kw in func.kw_taints:
                    # Constructor keyword -> dataclass field.  Only
                    # project classes count; f(timeout=...) on stdlib
                    # calls must not poison a field name.
                    if kw.keyword in self.fields:
                        continue
                    terminal = kw.callee.rsplit(".", 1)[-1]
                    if terminal not in self.symbols.classes:
                        continue
                    if self.any_tainted(kw.tokens, func, ref.path):
                        self.fields.add(kw.keyword)
                        changed = True


def _check_sinks(repro: Project, taint: _Taint) -> Iterator[Violation]:
    symbols = repro.symbols
    for ref in sorted(symbols.functions):
        func = symbols.functions[ref]
        if not _is_sink(func):
            continue
        for use in func.nondet:
            yield Violation(
                path=ref.path,
                line=use.line,
                col=0,
                code=CODE,
                message=(
                    f"nondeterminism source {use.detail} used directly in "
                    f"digest/totals sink {func.qualname}; digests must be "
                    f"pure functions of (workload, seed, config)"
                ),
            )
        for attr, line in func.attr_reads:
            if attr in taint.fields:
                yield Violation(
                    path=ref.path,
                    line=line,
                    col=0,
                    code=CODE,
                    message=(
                        f"wall-clock-tainted field '{attr}' read in "
                        f"digest/totals sink {func.qualname}; taint "
                        f"reaches the deterministic digest"
                    ),
                )
        for call in func.calls:
            tainted = [
                target
                for target in symbols.resolve_call(call.callee, func, ref.path)
                if target in taint.functions
            ]
            if tainted:
                names = ", ".join(
                    sorted(symbols.functions[t].qualname for t in tainted)
                )
                yield Violation(
                    path=ref.path,
                    line=call.line,
                    col=0,
                    code=CODE,
                    message=(
                        f"digest/totals sink {func.qualname} calls "
                        f"nondeterminism-tainted function(s) {names}"
                    ),
                )


def _is_benchmark(facts: FileFacts) -> bool:
    return "benchmarks" in facts.path.replace("\\", "/").split("/")


def _check_bench(project: Project, taint: _Taint) -> Iterator[Violation]:
    for facts in project.files:
        if not _is_benchmark(facts):
            continue
        for func in facts.functions:
            for entry in func.dict_taints:
                if entry.key in BENCH_WALL_WHITELIST:
                    continue
                if taint.any_tainted(entry.tokens, func, facts.path):
                    yield Violation(
                        path=facts.path,
                        line=entry.line,
                        col=0,
                        code=CODE,
                        message=(
                            f"benchmark field '{entry.key}' carries "
                            f"wall-clock/nondeterminism taint but is not in "
                            f"the wall-clock whitelist "
                            f"({', '.join(sorted(BENCH_WALL_WHITELIST))}); "
                            f"rename it wall_* or derive it from modelled "
                            f"costs"
                        ),
                    )


def check_project(project: Project) -> Iterator[Violation]:
    repro = project.repro_only()
    taint = _Taint(repro.symbols)
    taint.run()
    yield from _check_sinks(repro, taint)
    yield from _check_bench(project, taint)
