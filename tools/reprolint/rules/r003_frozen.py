"""R003 — pipeline/trace dataclasses are frozen, fully-annotated values.

The staged pipeline passes value objects between stages
(:mod:`repro.pipeline.stages`, :mod:`repro.pipeline.trace`,
:mod:`repro.pipeline.executor`).  A stage mutating another stage's
output is exactly the layer-boundary drift this PR's motivation warns
about, so the convention is machine-enforced:

- every ``@dataclass`` under ``repro.pipeline`` must declare
  ``frozen=True`` (accumulators that *must* mutate — ``Resolution``,
  ``ExecutionTrace`` — are plain classes with explicit methods, not
  dataclasses);
- every class-level assignment in such a dataclass must be annotated —
  a bare ``name = value`` inside a dataclass silently does *not* become
  a field, which is a latent bug, not a style choice.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.engine import FileContext, Violation

CODE = "R003"
SUMMARY = (
    "pipeline/trace dataclasses must be frozen=True and fully annotated "
    "(mutable accumulators are plain classes, not dataclasses)"
)

#: Packages whose dataclasses are required to be frozen value objects.
VALUE_PACKAGES = ("repro.pipeline",)


def _dataclass_decorator(node: ast.ClassDef) -> ast.expr | None:
    """The ``@dataclass`` / ``@dataclass(...)`` decorator, if present."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return decorator
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return decorator
    return None


def _is_frozen(decorator: ast.expr) -> bool:
    if not isinstance(decorator, ast.Call):
        return False
    for keyword in decorator.keywords:
        if keyword.arg == "frozen":
            value = keyword.value
            return isinstance(value, ast.Constant) and value.value is True
    return False


def check(ctx: FileContext) -> Iterator[Violation]:
    if not ctx.in_package(*VALUE_PACKAGES):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        decorator = _dataclass_decorator(node)
        if decorator is None:
            continue
        if not _is_frozen(decorator):
            yield Violation(
                ctx.path, node.lineno, node.col_offset, CODE,
                f"dataclass {node.name!r} in the pipeline layer is not "
                "frozen=True; pipeline values are immutable (make "
                "mutable accumulators plain classes instead)",
            )
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                yield Violation(
                    ctx.path, stmt.lineno, stmt.col_offset, CODE,
                    f"unannotated class-level assignment in dataclass "
                    f"{node.name!r}: it will silently not become a "
                    "field; annotate it (or mark it ClassVar)",
                )
