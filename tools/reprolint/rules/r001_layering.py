"""R001 — the import-layering DAG and backend-call discipline.

The repro codebase is layered::

    schema / query / analysis / exceptions      (leaves)
        ^
    storage  ->  chunks                          (physical + geometry)
        ^
    backend                                      (evaluation engine)
        ^
    pipeline  ->  core                           (staged answering, caches)
        ^
    serve                                        (concurrent serving)
        ^
    experiments                                  (harness, figures)

Five machine-checkable facets:

1. ``repro.chunks`` and ``repro.storage`` must not import ``repro.core``
   or ``repro.pipeline`` — geometry and the storage engine sit *below*
   the caching layers and must stay reusable without them.
2. Backend answer/estimate entry points (``answer``, ``compute_chunks``,
   ``estimate_chunk_work``, ``estimate_chunk_work_batch``,
   ``estimate_bitmap_pages``) may only be *called* from the pipeline's
   sanctioned modules: ``repro.pipeline.resolvers`` (the resolver chain)
   and ``repro.pipeline.work`` (the memoized estimator facade).  Every
   other physical probe bypasses tracing and accounting.  Ground-truth
   oracle uses in the experiment harness carry explicit
   ``# reprolint: ignore[R001]`` waivers.
3. ``repro.experiments`` may not reach into ``repro.storage`` submodules
   — it must import through the ``repro.storage`` facade, so storage
   internals can be reorganized without breaking experiment code.
4. ``repro.serve`` may import only the layers it composes — the core,
   pipeline and workload layers plus the leaves — never the backend,
   storage, chunks or experiments packages.  The serving layer adds
   concurrency *around* the pipeline; if it needs physical work it must
   go through a resolver, so the backend-call discipline (facet 2)
   survives threading.
5. Nothing below the experiments layer may import ``repro.serve`` —
   core, pipeline, backend, chunks and storage must all stay usable in
   single-threaded form without the serving machinery.

One module is carved out of facets 2 and 4: ``repro.serve.proc`` *is*
the process-parallel backend implementation — it subclasses
:class:`~repro.backend.engine.BackendEngine` so the resolver chain can
drive it unchanged, and each worker process builds its replica engine
through the :mod:`repro.api` facade.  It is still only ever *driven*
through the pipeline's resolvers (its entry points are the same ones
facet 2 guards), so the call discipline survives; the carve-out admits
the implementation, not new callers.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.engine import FileContext, Violation

CODE = "R001"
SUMMARY = (
    "import-layering DAG: chunks/storage below core/pipeline; backend "
    "entry points called only from pipeline resolvers/work; experiments "
    "import storage via its facade"
)

#: Packages that must stay below the caching layers.
_LOWER_LAYERS = ("repro.chunks", "repro.storage")
_UPPER_LAYERS = ("repro.core", "repro.pipeline")

#: The backend's answer/estimate entry points (physical work).
BACKEND_ENTRY_POINTS = frozenset(
    {
        "answer",
        "compute_chunks",
        "estimate_chunk_work",
        "estimate_chunk_work_batch",
        "estimate_bitmap_pages",
    }
)

#: Modules allowed to drive the backend's entry points.
BACKEND_CALLERS = ("repro.pipeline.resolvers", "repro.pipeline.work")

#: The process-parallel backend implementation (see the docstring): a
#: BackendEngine subclass living in the serving package, exempt from
#: facets 2 (it replays the engine's own accounting) and 4 (it imports
#: the backend/storage types it implements and the api facade its
#: workers compose replicas through).
SERVE_PROC = "repro.serve.proc"

#: Receiver names that denote "the backend engine" at a call site.
_BACKEND_RECEIVERS = frozenset({"backend", "engine", "_backend", "_engine"})

#: Package prefixes the serving layer may import (facet 4); the bare
#: ``repro`` facade (``from repro import invariants``) is also allowed.
SERVE_ALLOWED_IMPORTS = (
    "repro.serve",
    "repro.core",
    "repro.pipeline",
    "repro.workload",
    "repro.query",
    "repro.schema",
    "repro.analysis",
    "repro.exceptions",
    "repro.invariants",
    "repro.lockorder",
)

#: Layers that must not know about the serving layer (facet 5).
_BELOW_SERVE = (
    "repro.core",
    "repro.pipeline",
    "repro.backend",
    "repro.chunks",
    "repro.storage",
    "repro.workload",
    "repro.query",
    "repro.schema",
    "repro.analysis",
)


def _in_modules(module: str, prefixes: tuple[str, ...]) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in prefixes
    )


def _imported_modules(tree: ast.Module) -> Iterator[tuple[str, int, int]]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name, node.lineno, node.col_offset
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            yield node.module, node.lineno, node.col_offset


def _is_backend_receiver(node: ast.expr) -> bool:
    """Whether a call receiver looks like the backend engine.

    Matches ``backend``, ``engine``, ``self.backend``, ``manager.backend``,
    ``self._backend`` — i.e. the terminal identifier names an engine.
    """
    if isinstance(node, ast.Name):
        return node.id in _BACKEND_RECEIVERS
    if isinstance(node, ast.Attribute):
        return node.attr in _BACKEND_RECEIVERS
    return False


def check(ctx: FileContext) -> Iterator[Violation]:
    if ctx.module is None or not ctx.in_package("repro"):
        return

    # Facet 1: chunks/storage must not import core/pipeline.
    if ctx.in_package(*_LOWER_LAYERS):
        for module, line, col in _imported_modules(ctx.tree):
            if any(
                module == upper or module.startswith(upper + ".")
                for upper in _UPPER_LAYERS
            ):
                yield Violation(
                    ctx.path, line, col, CODE,
                    f"layer violation: {ctx.module} (geometry/storage "
                    f"layer) imports {module}; chunks/ and storage/ must "
                    "not depend on core/ or pipeline/",
                )

    # Facet 2: backend entry points called only from pipeline resolvers/work.
    if (
        ctx.module not in BACKEND_CALLERS
        and ctx.module != SERVE_PROC
        and not ctx.in_package("repro.backend")
    ):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in BACKEND_ENTRY_POINTS
                and _is_backend_receiver(func.value)
            ):
                yield Violation(
                    ctx.path, node.lineno, node.col_offset, CODE,
                    f"backend entry point .{func.attr}() called outside "
                    "the pipeline layer; route physical work through "
                    "pipeline/resolvers.py or pipeline/work.py (waiver: "
                    "'# reprolint: ignore[R001] <reason>' for oracles)",
                )

    # Facet 3: experiments import storage only through the facade.
    if ctx.in_package("repro.experiments"):
        for module, line, col in _imported_modules(ctx.tree):
            if module.startswith("repro.storage."):
                yield Violation(
                    ctx.path, line, col, CODE,
                    f"experiments reach into storage internals "
                    f"({module}); import through the repro.storage "
                    "facade instead",
                )

    # Facet 4: serve composes core/pipeline/workload + leaves, nothing
    # else — except repro.serve.proc, the process-parallel backend
    # implementation itself (see the docstring).
    if ctx.in_package("repro.serve") and ctx.module != SERVE_PROC:
        for module, line, col in _imported_modules(ctx.tree):
            if not module.startswith("repro"):
                continue
            if module == "repro" or _in_modules(
                module, SERVE_ALLOWED_IMPORTS
            ):
                continue
            yield Violation(
                ctx.path, line, col, CODE,
                f"layer violation: {ctx.module} (serving layer) imports "
                f"{module}; serve/ may only compose the core, pipeline "
                "and workload layers — backend access stays behind the "
                "pipeline's resolvers",
            )

    # Facet 5: layers below experiments must not import serve.
    if ctx.in_package(*_BELOW_SERVE):
        for module, line, col in _imported_modules(ctx.tree):
            if _in_modules(module, ("repro.serve",)):
                yield Violation(
                    ctx.path, line, col, CODE,
                    f"layer violation: {ctx.module} imports {module}; "
                    "only the experiments layer (and callers above it) "
                    "may depend on the serving machinery",
                )
