"""R000 — every suppression comment must carry a reason.

A waiver is a reviewed exception to a rule; a bare
``# reprolint: ignore[R002]`` records *that* a rule was silenced but
not *why*, which is exactly the information the next reader needs.
This rule makes the reason mandatory::

    total == used  # reprolint: ignore[R002] exact byte counts

Two findings:

- **bare waiver** — a well-formed ``ignore[...]`` with nothing after
  the closing bracket;
- **malformed waiver** — a comment that mentions ``reprolint`` and
  ``ignore`` but does not parse as ``# reprolint: ignore[CODES]``; it
  suppresses nothing, which is almost never what the author meant.

Comments are found with :mod:`tokenize`, so prose or string literals
that merely mention the waiver syntax (this docstring, the engine's
regex) cannot trigger it.  R000 findings are themselves exempt from
suppression (``SUPPRESSIBLE = False``) — a bare waiver naming R000
must not waive the finding about its own bareness.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Iterator

from tools.reprolint.engine import FileContext, Violation

CODE = "R000"
SUMMARY = "suppression comments must be well-formed and carry a reason"

#: The engine applies inline waivers to every rule but this one.
SUPPRESSIBLE = False

_WAIVER_RE = re.compile(r"#\s*reprolint:\s*ignore\[([A-Z0-9,\s]+)\](.*)$")


def check(ctx: FileContext) -> Iterator[Violation]:
    source = "\n".join(ctx.source_lines) + "\n"
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):
        return
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        text = tok.string
        if "reprolint" not in text:
            continue
        line, col = tok.start
        match = _WAIVER_RE.search(text)
        if match is None:
            if "ignore" in text:
                yield Violation(
                    path=ctx.path,
                    line=line,
                    col=col,
                    code=CODE,
                    message=(
                        "malformed reprolint waiver (expected "
                        "'# reprolint: ignore[CODE] reason'); this comment "
                        "suppresses nothing"
                    ),
                )
            continue
        if not match.group(2).strip():
            codes = ",".join(
                c.strip() for c in match.group(1).split(",") if c.strip()
            )
            yield Violation(
                path=ctx.path,
                line=line,
                col=col,
                code=CODE,
                message=(
                    f"bare waiver ignore[{codes}] without a reason; state "
                    f"why the finding is safe after the closing bracket"
                ),
            )
