"""The reprolint rule registry.

Per-file rule modules expose ``CODE``, ``SUMMARY`` and ``check(ctx)``;
whole-program rules expose ``check_project(project)`` instead (the
engine dispatches on the attribute).  This package collects them into
:data:`ALL_RULES` (sorted by code) for the engine and the CLI.  Adding
a rule = adding a module here and listing it in
``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

from tools.reprolint.rules import (
    r000_waiver,
    r001_layering,
    r002_float_eq,
    r003_frozen,
    r004_hygiene,
    r005_metrics,
    r006_faults,
    r007_facade,
    r008_process,
    r009_lockorder,
    r010_taint,
    r011_chunklog,
)

ALL_RULES = (
    r000_waiver,
    r001_layering,
    r002_float_eq,
    r003_frozen,
    r004_hygiene,
    r005_metrics,
    r006_faults,
    r007_facade,
    r008_process,
    r009_lockorder,
    r010_taint,
    r011_chunklog,
)

RULES_BY_CODE = {rule.CODE: rule for rule in ALL_RULES}

__all__ = ["ALL_RULES", "RULES_BY_CODE"]
