"""R009 — whole-program lock discipline for the serving stack.

Three checks, all over the statically derived **lock-order graph**:

1. **Cycles.**  Every lock object in ``src/repro`` is assigned a
   *level* (``shard``, ``accounting``, ``engine``, …).  An edge
   ``A -> B`` means some code path acquires a ``B``-level lock while
   holding an ``A``-level lock — directly (nested ``with`` /
   ``.acquire()``) or transitively (a call made under ``A`` reaches a
   function that acquires ``B``).  Any cycle in the level graph is a
   potential deadlock and fails the build.  Self-loops are allowed only
   where re-acquisition is safe by construction: re-entrant locks
   (``RLock``) and the ``shard`` level, whose multi-lock path
   (``ShardedChunkCache.check_conservation``) documents ascending
   shard-index order.

2. **Documented order.**  ``docs/SERVING.md`` and the ``sharded``
   module docstring fix shard → accounting (the accounting lock nests
   *inside* a shard lock) and estimator → engine.  Any derived edge
   contradicting a documented pair fails even without a full cycle.

3. **Guarded shared state.**  A serve-layer class that owns a lock
   (directly or via a base class) is presumed shared between threads;
   writing one of its attributes outside any lock-held region is a data
   race unless the attribute is *coordinator-only* state — mutated only
   by the single coordinator thread between parallel sections.  Such
   attributes are declared in the typed :data:`COORDINATOR_STATE`
   registry below (each entry carries its reasoning), or waived inline
   with a reasoned ``# reprolint: ignore[R009]``.

The derived graph is pinned as a golden artifact
(``tests/tools/lockorder.txt``) and cross-checked at runtime: the soak
harness records a lock-order witness (``repro.lockorder``) which the
tier-1 soak asserts is a subset of the static edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from tools.reprolint.callgraph import FuncRef, SymbolTable
from tools.reprolint.engine import Violation
from tools.reprolint.facts import FunctionFacts
from tools.reprolint.project import Project

CODE = "R009"
SUMMARY = (
    "lock discipline: acyclic lock-order graph, documented shard→accounting "
    "order, serve-layer shared state written under its lock"
)

#: Known lock objects mapped to named levels.  Locks created by classes
#: not listed here get an auto level ``"<Class>.<attr>"`` — they still
#: participate in cycle detection and show up in the golden graph, so a
#: new lock is always a reviewed diff.
LOCK_LEVELS: Mapping[tuple[str, str], str] = {
    ("CacheShard", "lock"): "shard",
    ("ShardedChunkCache", "_accounting_lock"): "accounting",
    ("BackendEngine", "_lock"): "engine",
    ("ProcessComputeEngine", "_lock"): "engine",
    ("WorkerPool", "_lock"): "pool",
    ("ServeSession", "_cond"): "turnstile",
    ("FrontSession", "_wcond"): "window",
    ("FrontSession", "_acond"): "admission",
    ("FaultInjector", "_lock"): "faults",
    ("ChunkAdmitter", "_registry_lock"): "admitter",
    ("ChunkWorkEstimator", "_lock"): "estimator",
    ("TieredChunkCache", "_lock"): "tiered",
    # Every L2 backend's internal lock shares one level: the tier
    # boundary is the contract, not the concrete store.
    ("ChunkLog", "_lock"): "l2",
    ("SqliteBackend", "_lock"): "l2",
}

#: Decorators that acquire a level around the wrapped function.  The
#: backend's ``@_synchronized`` methods take the engine big lock before
#: the body runs; the wrapper's ``self._lock`` is otherwise invisible to
#: per-callsite analysis.
DECORATOR_LOCKS: Mapping[str, str] = {
    "_synchronized": "engine",
}

#: Documented acquisition orders (outer, inner).  An edge in the
#: opposite direction is a violation even when no full cycle exists yet.
DOCUMENTED_ORDER: tuple[tuple[str, str], ...] = (
    ("shard", "accounting"),
    ("estimator", "engine"),
    ("shard", "tiered"),
    ("tiered", "l2"),
)


@dataclass(frozen=True)
class DeclaredEdge:
    """One lock-order edge the callgraph cannot derive, with the
    indirection that hides it recorded."""

    outer: str
    inner: str
    reason: str


#: Edges reached only through runtime indirection the name-based
#: callgraph cannot follow.  Each is pinned into the derived graph so
#: cycle detection, DOCUMENTED_ORDER and the golden file all see the
#: complete order; the runtime witness cross-checks them in the soak.
DECLARED_EDGES: tuple[DeclaredEdge, ...] = (
    DeclaredEdge(
        "shard",
        "tiered",
        "the tiered cache installs _on_evict as the L1 evict_hook; the "
        "hook fires inside CacheShard.held() but the installation is a "
        "set_evict_hook() call the callgraph cannot trace to the "
        "ChunkCache._evict_one call site",
    ),
    DeclaredEdge(
        "shard",
        "l2",
        "transitive continuation of shard -> tiered: the spill hook "
        "writes to the L2 backend while the shard lock is still held",
    ),
)

#: Levels where acquiring while already holding the same level is safe:
#: ``engine`` is an RLock; ``shard`` multi-lock paths take ascending
#: shard-index order (``check_conservation``'s docstring).
ALLOWED_SELF_LOOPS = frozenset({"engine", "shard"})


@dataclass(frozen=True)
class StateWaiver:
    """One coordinator-only attribute: written without the class lock on
    purpose, with the happens-before argument recorded."""

    cls: str
    attr: str
    reason: str


#: The typed waiver registry for check 3.  Every entry must argue a
#: happens-before edge that makes the unlocked write safe; "it hasn't
#: crashed" is not a reason.
COORDINATOR_STATE: tuple[StateWaiver, ...] = (
    StateWaiver(
        "ServeSession",
        "_next_seq",
        "reset by run() before worker threads start; turnstile-ordered after",
    ),
    StateWaiver(
        "ServeSession",
        "_completed",
        "reset by run() before worker threads start (pool not yet created)",
    ),
    StateWaiver(
        "ServeSession",
        "_checkpoints_fired",
        "reset by run() before worker threads start",
    ),
    StateWaiver(
        "ServeSession",
        "_failure",
        "reset by run() before worker threads start",
    ),
    StateWaiver(
        "ServeSession",
        "_failures",
        "rebound by run() before worker threads start",
    ),
    StateWaiver(
        "FrontSession",
        "_sim_seconds",
        "per-worker slot indexed by worker_index; window turnstile "
        "serializes all access to one slot",
    ),
    StateWaiver(
        "FrontSession",
        "_per_stream",
        "per-stream metrics written under the admission-order turnstile; "
        "one stream is never in flight twice",
    ),
    StateWaiver(
        "FrontSession",
        "_turn",
        "asyncio tick-protocol state: mutated only inside coroutines on "
        "the event-loop thread; window worker threads never touch it",
    ),
    StateWaiver(
        "FrontSession",
        "_phase",
        "asyncio tick-protocol state: event-loop-thread-confined, "
        "coroutine interleaving is serialized by _acond",
    ),
    StateWaiver(
        "FrontSession",
        "_seq",
        "asyncio tick-protocol state: stamped only by the producer whose "
        "turn it is, on the event-loop thread",
    ),
    StateWaiver(
        "FrontSession",
        "_backlog",
        "asyncio tick-protocol state: appended/drained only on the "
        "event-loop thread under the _acond phase protocol",
    ),
    StateWaiver(
        "FrontSession",
        "_active",
        "asyncio tick-protocol state: event-loop-thread-confined",
    ),
    StateWaiver(
        "FrontSession",
        "_shed",
        "rebound by run() before the event loop starts; appended only "
        "by producer coroutines on the event-loop thread",
    ),
    StateWaiver(
        "FrontSession",
        "_windows",
        "rebound by run() before the event loop starts; appended only "
        "by the dispatcher coroutine on the event-loop thread",
    ),
    StateWaiver(
        "FrontSession",
        "_merged",
        "rebound by run() before the event loop starts; worker appends "
        "go through _execute_one under _wcond",
    ),
    StateWaiver(
        "FrontSession",
        "_failures",
        "rebound by run() before the event loop starts; worker appends "
        "are under _wcond",
    ),
    StateWaiver(
        "FrontSession",
        "_failure",
        "reset by run() before the event loop starts; concurrent writes "
        "go through _abort under _wcond",
    ),
    StateWaiver(
        "FrontSession",
        "_completed",
        "reset by run() before the event loop starts; worker increments "
        "are under _wcond, dispatcher reads happen after "
        "run_in_executor has joined the window workers",
    ),
    StateWaiver(
        "FrontSession",
        "_checkpoints",
        "dispatcher-coroutine only: _maybe_checkpoint runs after "
        "run_in_executor has joined the window workers",
    ),
    StateWaiver(
        "FrontSession",
        "_last_boundary",
        "dispatcher-coroutine only: _maybe_checkpoint runs after "
        "run_in_executor has joined the window workers",
    ),
    StateWaiver(
        "FrontSession",
        "_deadline",
        "written once by run() before any thread starts; read-only "
        "afterwards",
    ),
    StateWaiver(
        "WorkerPool",
        "_started",
        "set by start(), called from the build() factory before the "
        "pool object is shared with any other thread",
    ),
    StateWaiver(
        "WorkerPool",
        "_collector",
        "written by start()/close() on the coordinator thread only",
    ),
)

_WAIVED_STATE = {(w.cls, w.attr): w.reason for w in COORDINATOR_STATE}


@dataclass(frozen=True)
class LockGraph:
    """The derived static lock-order graph.

    ``edges`` maps (outer level, inner level) to the first witness
    ``(path, line)`` in sorted file order; ``levels`` maps each level to
    the lock kinds behind it (``{"Lock"}``, ``{"RLock"}`` …).
    """

    edges: Mapping[tuple[str, str], tuple[str, int]]
    levels: Mapping[str, frozenset[str]]

    def edge_lines(self) -> tuple[str, ...]:
        """Sorted ``"outer -> inner"`` lines (the golden-file format)."""
        return tuple(f"{a} -> {b}" for a, b in sorted(self.edges))


def _level_map(symbols: SymbolTable) -> dict[tuple[str, str], str]:
    levels = dict(LOCK_LEVELS)
    for (cls, attr), _kind in symbols.class_lock_attrs().items():
        levels.setdefault((cls, attr), f"{cls}.{attr}")
    return levels


def _base_classes(symbols: SymbolTable, cls: str) -> tuple[str, ...]:
    """``cls`` plus every (transitively) named base defined in-project."""
    out: list[str] = []
    stack = [cls]
    while stack:
        name = stack.pop()
        if name in out:
            continue
        out.append(name)
        for _path, facts in symbols.classes.get(name, []):
            for base in facts.bases:
                stack.append(base.rsplit(".", 1)[-1])
    return tuple(out)


class _Deriver:
    """Shared state for one derivation pass over a project."""

    def __init__(self, project: Project) -> None:
        self.symbols = project.symbols
        self.callgraph = project.callgraph
        self.levels = _level_map(self.symbols)
        # (attr name -> levels) for non-self receivers like "shard.lock".
        self.attr_levels: dict[str, set[str]] = {}
        for (_cls, attr), level in self.levels.items():
            self.attr_levels.setdefault(attr, set()).add(level)
        self.trans: dict[FuncRef, frozenset[str]] = {}

    def _plausible_callees(
        self, callee: str, func: FunctionFacts, path: str, held: frozenset[str]
    ) -> tuple[FuncRef, ...]:
        """Resolution for edge derivation, minus would-deadlock readings.

        A name-based resolution of ``cache.snapshot()`` matches every
        class defining ``snapshot``.  When the resolution is ambiguous
        (non-``self``, several candidates) and one candidate's own class
        holds a lock we are *currently inside*, that reading would
        self-deadlock — the author necessarily meant another candidate,
        so it is dropped.  An unambiguous or ``self.`` call keeps the
        candidate: a genuine self-deadlock must still be reported as a
        cycle.
        """
        refs = self.symbols.resolve_call(callee, func, path)
        if len(refs) <= 1 or callee.startswith("self.") or not held:
            return refs
        deadlocking = held - self._reacquirable_levels()
        if not deadlocking:
            return refs
        return tuple(
            ref
            for ref in refs
            if not (self.trans.get(ref, frozenset()) & deadlocking)
        )

    def _reacquirable_levels(self) -> frozenset[str]:
        """Levels safe to re-acquire while held: RLock-backed only.

        Deliberately narrower than :data:`ALLOWED_SELF_LOOPS`: the
        ``shard`` self-loop is an ascending-order argument over
        *different* instances, but for call-site plausibility the
        question is whether the candidate would re-take a plain lock the
        caller already holds — which deadlocks regardless of ordering
        discipline.
        """
        kinds: dict[str, set[str]] = {}
        for (cls, attr), level in self.levels.items():
            kind = self.symbols.class_lock_attrs().get((cls, attr))
            if kind is not None:
                kinds.setdefault(level, set()).add(kind)
        return frozenset(
            level for level, kindset in kinds.items() if kindset == {"RLock"}
        )

    def _self_lock_level(self, cls: str, attr: str) -> str | None:
        for name in _base_classes(self.symbols, cls):
            level = self.levels.get((name, attr))
            if level is not None:
                return level
        return None

    def levels_for(
        self, text: str, func: FunctionFacts, path: str
    ) -> frozenset[str]:
        """Levels a raw region text denotes (empty: not a known lock)."""
        if text.endswith("()"):
            refs = self.symbols.resolve_call(text[:-2], func, path)
            out: set[str] = set()
            for ref in refs:
                out |= self.trans.get(ref, frozenset())
            return frozenset(out)
        terminal = text.rsplit(".", 1)[-1]
        if not terminal.isidentifier():
            return frozenset()
        if func.cls is not None and text == f"self.{terminal}":
            level = self._self_lock_level(func.cls, terminal)
            return frozenset() if level is None else frozenset({level})
        if "." in text:
            return frozenset(self.attr_levels.get(terminal, set()))
        return frozenset()

    def direct_levels(self, func: FunctionFacts, path: str) -> frozenset[str]:
        """Levels ``func`` acquires in its own body (with/acquire/decorator)."""
        out: set[str] = set()
        for dec in func.decorators:
            level = DECORATOR_LOCKS.get(dec.rsplit(".", 1)[-1])
            if level is not None:
                out.add(level)
        for event in func.lock_events:
            if event.kind in ("with", "acquire"):
                out |= self.levels_for(event.target, func, path)
        return frozenset(out)

    def fixpoint(self) -> None:
        """``trans[f]`` = levels acquired by ``f`` or anything it calls."""
        functions = sorted(self.symbols.functions)
        self.trans = {ref: frozenset() for ref in functions}
        changed = True
        while changed:
            changed = False
            for ref in functions:
                func = self.symbols.functions[ref]
                acquired = set(self.direct_levels(func, ref.path))
                for callee in self.callgraph.callees(ref):
                    acquired |= self.trans.get(callee, frozenset())
                frozen = frozenset(acquired)
                if frozen != self.trans[ref]:
                    self.trans[ref] = frozen
                    changed = True

    def held_levels(
        self, held: tuple[str, ...], func: FunctionFacts, path: str
    ) -> frozenset[str]:
        out: set[str] = set()
        for text in held:
            out |= self.levels_for(text, func, path)
        return frozenset(out)

    def edges(self) -> dict[tuple[str, str], tuple[str, int]]:
        """(outer, inner) -> first witness, in deterministic order."""
        found: dict[tuple[str, str], tuple[str, int]] = {}

        def record(outer: str, inner: str, path: str, line: int) -> None:
            key = (outer, inner)
            if key not in found:
                found[key] = (path, line)

        for ref in sorted(self.symbols.functions):
            func = self.symbols.functions[ref]
            decorator_held = frozenset(
                DECORATOR_LOCKS[d.rsplit(".", 1)[-1]]
                for d in func.decorators
                if d.rsplit(".", 1)[-1] in DECORATOR_LOCKS
            )
            for event in func.lock_events:
                if event.kind not in ("with", "acquire"):
                    continue
                new_levels = self.levels_for(event.target, func, ref.path)
                if not new_levels:
                    continue
                held = (
                    self.held_levels(event.held, func, ref.path)
                    | decorator_held
                )
                for outer in held:
                    for inner in new_levels:
                        record(outer, inner, ref.path, event.line)
            for call in func.calls:
                held = (
                    self.held_levels(call.held, func, ref.path)
                    | decorator_held
                )
                if not held:
                    continue
                acquired: set[str] = set()
                for callee in self._plausible_callees(
                    call.callee, func, ref.path, held
                ):
                    acquired |= self.trans.get(callee, frozenset())
                for outer in held:
                    for inner in acquired:
                        record(outer, inner, ref.path, call.line)
        return found


def derive_lock_graph(project: Project) -> LockGraph:
    """Derive the static lock-order graph over ``src/repro`` files."""
    repro = project.repro_only()
    deriver = _Deriver(repro)
    deriver.fixpoint()
    return _graph_from(deriver, repro)


def _graph_from(deriver: _Deriver, repro: Project) -> LockGraph:
    edges = deriver.edges()
    # Allowed self-loops are part of the contract (RLock re-entry,
    # ascending shard order): pin them explicitly so the runtime witness
    # check and the golden file always cover them.
    levels: dict[str, set[str]] = {}
    for (cls, attr), level in deriver.levels.items():
        kind = repro.symbols.class_lock_attrs().get((cls, attr))
        if kind is not None:
            levels.setdefault(level, set()).add(kind)
    for level, kinds in levels.items():
        if level in ALLOWED_SELF_LOOPS or kinds == {"RLock"}:
            edges.setdefault((level, level), ("<allowed self-loop>", 0))
    # Edges hidden behind hook indirection are part of the contract:
    # pin them so cycle detection and the golden file stay complete.
    for declared in DECLARED_EDGES:
        edges.setdefault(
            (declared.outer, declared.inner), ("<declared edge>", 0)
        )
    return LockGraph(
        edges=edges,
        levels={lvl: frozenset(kinds) for lvl, kinds in levels.items()},
    )


def _self_loop_allowed(level: str, graph: LockGraph) -> bool:
    if level in ALLOWED_SELF_LOOPS:
        return True
    return graph.levels.get(level) == frozenset({"RLock"})


def _find_cycle(
    edges: Mapping[tuple[str, str], tuple[str, int]],
    skip_self_loop: frozenset[str],
) -> list[str] | None:
    """One cycle in the level digraph (as a node list), or None."""
    adjacency: dict[str, list[str]] = {}
    for outer, inner in sorted(edges):
        if outer == inner and outer in skip_self_loop:
            continue
        adjacency.setdefault(outer, []).append(inner)
        adjacency.setdefault(inner, [])
    state: dict[str, int] = {}  # 0 unvisited / 1 on stack / 2 done
    parent: dict[str, str] = {}

    for start in sorted(adjacency):
        if state.get(start, 0) != 0:
            continue
        stack: list[tuple[str, int]] = [(start, 0)]
        state[start] = 1
        while stack:
            node, i = stack[-1]
            if i < len(adjacency[node]):
                stack[-1] = (node, i + 1)
                nxt = adjacency[node][i]
                if state.get(nxt, 0) == 1:
                    cycle = [nxt]
                    cur = node
                    while cur != nxt:
                        cycle.append(cur)
                        cur = parent[cur]
                    cycle.append(nxt)
                    cycle.reverse()
                    return cycle
                if state.get(nxt, 0) == 0:
                    state[nxt] = 1
                    parent[nxt] = node
                    stack.append((nxt, 0))
            else:
                state[node] = 2
                stack.pop()
    return None


def _check_graph(graph: LockGraph) -> Iterator[Violation]:
    for outer, inner in DOCUMENTED_ORDER:
        witness = graph.edges.get((inner, outer))
        if witness is not None:
            path, line = witness
            yield Violation(
                path=path,
                line=line,
                col=0,
                code=CODE,
                message=(
                    f"lock order violation: acquires '{outer}' while "
                    f"holding '{inner}', contradicting the documented "
                    f"{outer} -> {inner} order"
                ),
            )
    skip = frozenset(
        level
        for level in graph.levels
        if _self_loop_allowed(level, graph)
    ) | frozenset(ALLOWED_SELF_LOOPS)
    cycle = _find_cycle(graph.edges, skip)
    if cycle is not None:
        first_edge = (cycle[0], cycle[1]) if len(cycle) > 1 else (cycle[0],) * 2
        path, line = graph.edges.get(first_edge, ("<derived>", 0))
        yield Violation(
            path=path,
            line=line,
            col=0,
            code=CODE,
            message=(
                "lock-order cycle: " + " -> ".join(cycle) + " (a thread "
                "holding one of these can deadlock against another; break "
                "the cycle or document and enforce a single order)"
            ),
        )


def _check_guarded_state(repro: Project, deriver: _Deriver) -> Iterator[Violation]:
    symbols = repro.symbols
    locked_classes: set[str] = set()
    for entries in symbols.classes.values():
        for path, cls in entries:
            facts = repro.by_path[path]
            if facts.module is None or not facts.module.startswith("repro.serve"):
                continue
            for name in _base_classes(symbols, cls.name):
                for _cand_path, cand in symbols.classes.get(name, []):
                    if cand.lock_attrs:
                        locked_classes.add(cls.name)
    for ref in sorted(symbols.functions):
        func = symbols.functions[ref]
        if func.cls is None or func.cls not in locked_classes:
            continue
        if func.name == "__init__":
            continue
        facts = repro.by_path[ref.path]
        if facts.module is None or not facts.module.startswith("repro.serve"):
            continue
        lock_attrs = {
            attr
            for name in _base_classes(symbols, func.cls)
            for (cls_name, attr) in symbols.class_lock_attrs()
            if cls_name == name
        }
        for write in func.attr_writes:
            if write.attr in lock_attrs:
                continue
            if deriver.held_levels(write.held, func, ref.path):
                continue
            waived = _WAIVED_STATE.get((func.cls, write.attr))
            if waived is None:
                for base in _base_classes(symbols, func.cls):
                    waived = _WAIVED_STATE.get((base, write.attr))
                    if waived is not None:
                        break
            if waived is not None:
                continue
            yield Violation(
                path=ref.path,
                line=write.line,
                col=0,
                code=CODE,
                message=(
                    f"unlocked write to shared state: {func.cls}."
                    f"{write.attr} is written in {func.qualname} outside "
                    f"any lock-held region; hold the class lock, register "
                    f"the attribute in COORDINATOR_STATE with a "
                    f"happens-before argument, or waive with a reason"
                ),
            )


def check_project(project: Project) -> Iterator[Violation]:
    repro = project.repro_only()
    deriver = _Deriver(repro)
    deriver.fixpoint()
    yield from _check_graph(_graph_from(deriver, repro))
    yield from _check_guarded_state(repro, deriver)
