"""R011 — the persistent tier is wired through the ``repro.api`` facade.

An L2 backend (:class:`ChunkLog`, :class:`SqliteBackend`) owns a file
on disk, and a :class:`TieredChunkCache` owns a backend.  Constructing
any of them outside a composition root invites two quiet failure
modes:

- two backends opened on the same path corrupt each other's state —
  both are single-writer by design and have no cross-process locking;
- a hand-rolled tier skips the facade's validation (``cache_tiers``,
  ``persist_path`` coupling, ``l2_backend`` dispatch, the warm-start
  ``reopen()`` call), so the stack silently diverges from what
  :class:`repro.api.StackConfig` describes and what the API-manifest
  test pins.

Concretely: inside ``src/repro``, calls to ``ChunkLog(...)``,
``SqliteBackend(...)`` and ``TieredChunkCache(...)`` are allowed only
in ``repro.api`` and in the modules that define them.  Tests and tools
are exempt — they exercise the storage layer directly by design.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.engine import FileContext, Violation

CODE = "R011"
SUMMARY = (
    "the persistent tier is wired through the repro.api facade: only "
    "the facade and the defining modules may call ChunkLog/"
    "SqliteBackend/TieredChunkCache"
)

#: Modules allowed to call the tier constructors: the facade plus the
#: modules that define them.
COMPOSITION_ROOTS = (
    "repro.api",
    "repro.storage.chunklog",
    "repro.storage.sqlitelog",
    "repro.core.tiered",
)

#: Constructor names whose direct call marks a hand-rolled tier.
_TIER_TYPES = frozenset({"ChunkLog", "SqliteBackend", "TieredChunkCache"})


def check(ctx: FileContext) -> Iterator[Violation]:
    if ctx.module is None or not ctx.in_package("repro"):
        return
    if ctx.in_package(*COMPOSITION_ROOTS):
        return

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        if name in _TIER_TYPES:
            yield Violation(
                ctx.path, node.lineno, node.col_offset, CODE,
                f"{ctx.module} constructs {name} directly; wire the "
                "persistent tier through repro.api (cache_tiers=2 + "
                "persist_path) so single-writer ownership and warm-start "
                "live in one place",
            )
