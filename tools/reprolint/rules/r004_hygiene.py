"""R004 — exception and default-argument hygiene.

Two classes of silent-failure bug, banned everywhere (``src/`` and
``tests/``):

- **swallowed exceptions** — a bare ``except:`` clause, or an
  ``except Exception`` / ``except BaseException`` handler whose body is
  only ``pass`` / ``...``.  The repro library has a dedicated exception
  hierarchy (:mod:`repro.exceptions`); catch the narrow type and handle
  it, or let it propagate.
- **mutable default arguments** — ``def f(x=[])`` / ``={}`` / ``=set()``
  (literal or constructor call) shares one object across calls; with
  accumulating caches and registries all over this codebase that is a
  cross-query state leak waiting to happen.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.engine import FileContext, Violation

CODE = "R004"
SUMMARY = (
    "no bare except / swallowed broad except, and no mutable default "
    "arguments"
)

_BROAD = frozenset({"Exception", "BaseException"})
_MUTABLE_CALLS = frozenset({"list", "dict", "set"})


def _is_noop_body(body: list[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or `...`
        return False
    return True


def _mutable_default(node: ast.expr) -> str | None:
    if isinstance(node, ast.List):
        return "[]"
    if isinstance(node, ast.Dict):
        return "{}"
    if isinstance(node, ast.Set):
        return "set literal"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in _MUTABLE_CALLS and not node.args and not node.keywords:
            return f"{node.func.id}()"
    return None


def _defaults(args: ast.arguments) -> Iterator[ast.expr]:
    yield from args.defaults
    for default in args.kw_defaults:
        if default is not None:
            yield default


def check(ctx: FileContext) -> Iterator[Violation]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ExceptHandler):
            if node.type is None:
                yield Violation(
                    ctx.path, node.lineno, node.col_offset, CODE,
                    "bare 'except:' catches everything including "
                    "KeyboardInterrupt; catch a repro.exceptions type",
                )
            elif (
                isinstance(node.type, ast.Name)
                and node.type.id in _BROAD
                and _is_noop_body(node.body)
            ):
                yield Violation(
                    ctx.path, node.lineno, node.col_offset, CODE,
                    f"'except {node.type.id}: pass' silently swallows "
                    "all errors; narrow the type or handle the failure",
                )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for default in _defaults(node.args):
                shape = _mutable_default(default)
                if shape is not None:
                    yield Violation(
                        ctx.path, default.lineno, default.col_offset, CODE,
                        f"mutable default argument {shape} in "
                        f"{node.name}(); default to None and build "
                        "inside the function",
                    )
