"""R007 — stacks are composed through the ``repro.api`` facade.

:mod:`repro.api` is the one supported way to wire a caching middle
tier: schema → chunk geometry → loaded backend → cache → manager.  The
underlying constructors stay importable (they are the implementation),
but *composition* — actually calling them — is the facade's job.  Two
properties stay machine-checkable that way:

- every in-tree stack is wired identically, so a change to the wiring
  (a new manager argument, a different default) happens in exactly one
  place instead of drifting across experiment scripts;
- the public API surface stays honest: anything a composition root
  needs must be expressible through :class:`repro.api.StackConfig`,
  which is what the API-manifest test pins.

Concretely: inside ``src/repro``, calls to ``ChunkCacheManager(...)``,
``QueryCacheManager(...)``, ``ShardedChunkCache(...)`` and
``BackendEngine.build(...)`` are allowed only in the facade itself and
in the modules that *define* those constructors.  Tests and tools are
exempt — they exercise the layers directly by design.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.engine import FileContext, Violation

CODE = "R007"
SUMMARY = (
    "stacks are composed through the repro.api facade: only the facade "
    "and the defining modules may call ChunkCacheManager/"
    "QueryCacheManager/ShardedChunkCache/BackendEngine.build"
)

#: Modules allowed to call the wrapped constructors: the facade plus
#: the modules that define them (each constructs its own parts).
FACADE_MODULES = (
    "repro.api",
    "repro.core.manager",
    "repro.core.query_cache",
    "repro.serve.sharded",
    "repro.backend.engine",
)

#: Constructor names whose direct call marks a hand-rolled stack.
_WRAPPED_TYPES = frozenset(
    {"ChunkCacheManager", "QueryCacheManager", "ShardedChunkCache"}
)


def _is_engine_build(func: ast.expr) -> bool:
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "build"
        and isinstance(func.value, ast.Name)
        and func.value.id == "BackendEngine"
    )


def check(ctx: FileContext) -> Iterator[Violation]:
    if ctx.module is None or not ctx.in_package("repro"):
        return
    if ctx.in_package(*FACADE_MODULES):
        return

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        if name in _WRAPPED_TYPES:
            yield Violation(
                ctx.path, node.lineno, node.col_offset, CODE,
                f"{ctx.module} constructs {name} directly; compose "
                "stacks through repro.api (build_stack/build_cache) so "
                "wiring lives in one place",
            )
        elif _is_engine_build(func):
            yield Violation(
                ctx.path, node.lineno, node.col_offset, CODE,
                f"{ctx.module} calls BackendEngine.build directly; use "
                "repro.api.build_backend so engine composition lives "
                "in one place",
            )
